//! Recursive routing: the control-plane computation the paper says
//! classical IVM cannot express (§2.2 — "graph reachability for routing
//! tables ... can be implemented using recursive queries").
//!
//! A three-router triangle (r0, r1, r2) each owns a /24 subnet. The
//! control plane computes reachability *recursively* over the link
//! relation and derives per-router LPM routes. Killing a link through
//! the management plane re-routes traffic incrementally — no route
//! recomputation code anywhere.
//!
//! Run with: `cargo run --example routing`

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use netsim::{ethertype, EthFrame, Ip4, Ipv4, Mac, Network};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;

/// A minimal IPv4 router: parse Ethernet + IPv4, LPM on the destination.
const ROUTER_P4: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> ether_type; }
header ipv4_t {
    bit<4> version; bit<4> ihl; bit<8> tos; bit<16> total_len;
    bit<16> identification; bit<16> flags_frag;
    bit<8> ttl; bit<8> protocol; bit<16> checksum;
    bit<32> src; bit<32> dst;
}
struct headers_t { ethernet_t eth; ipv4_t ip; }
struct metadata_t { bit<1> routed; }

parser RParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
               inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            0x0800: parse_ip;
            default: accept;
        }
    }
    state parse_ip { pkt.extract(hdr.ip); transition accept; }
}

control RIngress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t std_meta) {
    action fwd(bit<16> port) { std_meta.egress_spec = port; }
    action unreachable() { mark_to_drop(); }
    table Route {
        key = { hdr.ip.dst: lpm; }
        actions = { fwd; }
        default_action = unreachable();
        size = 1024;
    }
    apply {
        if (hdr.ip.isValid()) {
            Route.apply();
        } else {
            unreachable();
        }
    }
}

control REgress(inout headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t std_meta) { apply { } }

V1Switch(RParser(), RIngress(), REgress()) main;
"#;

/// The management plane: routers, links between them, and owned subnets.
const SCHEMA: &str = r#"
{
    "name": "routing",
    "tables": {
        "Router": {
            "columns": {"idx": {"type": {"key": {"type": "integer",
                "minInteger": 0, "maxInteger": 255}}}},
            "isRoot": true, "indexes": [["idx"]]
        },
        "Link": {
            "columns": {
                "a": {"type": "integer"},
                "a_port": {"type": "integer"},
                "b": {"type": "integer"},
                "b_port": {"type": "integer"}
            },
            "isRoot": true
        },
        "Subnet": {
            "columns": {
                "router": {"type": "integer"},
                "prefix": {"type": "integer"},
                "plen": {"type": "integer"},
                "host_port": {"type": "integer"}
            },
            "isRoot": true
        }
    }
}
"#;

/// The control plane. Relations generated for us:
/// `Router(_uuid, idx)`, `Link(_uuid, a, a_port, b, b_port)`,
/// `Subnet(_uuid, host_port, plen, prefix, router)` (columns
/// alphabetical), and `Route(switch_id, hdr_ip_dst, hdr_ip_dst_prefix_len,
/// action, fwd_port)` from the P4 table.
const RULES: &str = r#"
// Links are symmetric: Adj(a, b, out-port-on-a).
relation Adj(a: bigint, b: bigint, port: bigint)
Adj(a, b, p) :- Link(_, a, p, b, _).
Adj(b, a, p) :- Link(_, a, _, b, p).

// RECURSIVE reachability with hop counts (bounded at 4 hops), keeping
// the first hop taken — the query shape classical incremental view
// maintenance cannot handle.
relation Reach(src: bigint, dst: bigint, first_port: bigint, hops: bigint)
Reach(a, b, p, 1) :- Adj(a, b, p).
Reach(a, c, p, h + 1) :- Reach(a, b, p, h), Adj(b, c, _), c != a, h < 4.

// Local delivery: a router sends traffic for its own subnet to the host
// port.
Route(r, prefix as bit<32>, plen, "fwd", hp as bit<16>) :-
    Subnet(_, hp, plen, prefix, r).

// Remote subnets: shortest path (fewest hops, lowest port as the tie
// break), encoded into one metric so a single min() picks the winner.
// Aggregation over the recursive result is fine — it sits in a higher
// stratum.
Route(r, prefix as bit<32>, plen, "fwd", p as bit<16>) :-
    Subnet(_, _, plen, prefix, dst),
    Reach(r, dst, fp, h),
    var metric = h * 65536 + fp,
    var best = min(metric) group_by (r, prefix, plen),
    var p = best % 65536.
"#;

fn ip(r: u8, h: u8) -> Ip4 {
    Ip4::new(10, 0, r, h)
}

fn main() {
    let program = NerpaProgram {
        schema: ovsdb::Schema::parse(SCHEMA).expect("schema"),
        p4info: p4sim::P4Info::from_program(&p4sim::parse_p4(ROUTER_P4).expect("p4")),
        rules: RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&program).expect("controller");

    // Three routers in a triangle; port 1 faces the hosts, ports 2/3 the
    // other routers.
    let p4 = p4sim::parse_p4(ROUTER_P4).unwrap();
    let mut net = Network::new();
    let mut devices = Vec::new();
    for _ in 0..3 {
        let d = SwitchDevice::new(Switch::new(p4.clone()));
        controller.add_switch(Box::new(d.clone()));
        net.add_switch(d.clone());
        devices.push(d);
    }
    // Hosts: h_r on router r, subnet 10.0.r.0/24.
    let hosts: Vec<_> = (0..3u32)
        .map(|r| net.add_host(Mac::host(r + 1), ip(r as u8, 1), r as usize, 1))
        .collect();
    // Triangle wiring: r0.2—r1.2, r1.3—r2.2, r2.3—r0.3.
    net.connect(0, 2, 1, 2);
    net.connect(1, 3, 2, 2);
    net.connect(2, 3, 0, 3);

    // Management plane.
    let mut db = ovsdb::Database::new(ovsdb::Schema::parse(SCHEMA).unwrap());
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Router", "row": {"idx": 0}},
        {"op": "insert", "table": "Router", "row": {"idx": 1}},
        {"op": "insert", "table": "Router", "row": {"idx": 2}},
        {"op": "insert", "table": "Link", "row": {"a": 0, "a_port": 2, "b": 1, "b_port": 2}},
        {"op": "insert", "table": "Link", "row": {"a": 1, "a_port": 3, "b": 2, "b_port": 2}},
        {"op": "insert", "table": "Link", "row": {"a": 2, "a_port": 3, "b": 0, "b_port": 3}},
        {"op": "insert", "table": "Subnet", "row":
            {"router": 0, "prefix": 0x0a000000u32, "plen": 24, "host_port": 1}},
        {"op": "insert", "table": "Subnet", "row":
            {"router": 1, "prefix": 0x0a000100u32, "plen": 24, "host_port": 1}},
        {"op": "insert", "table": "Subnet", "row":
            {"router": 2, "prefix": 0x0a000200u32, "plen": 24, "host_port": 1}}
    ]));
    controller.handle_row_changes(&changes).expect("propagate");

    let routes = controller.engine().dump("Route").unwrap();
    println!("computed {} routes across 3 routers:", routes.len());
    for r in &routes {
        println!("  {r:?}");
    }

    let send = |net: &Network, from: usize, dst: Ip4, label: &str| {
        let pkt = Ipv4 {
            src: ip(from as u8, 1),
            dst,
            protocol: 17,
            ttl: 64,
            payload: b"ping".to_vec(),
        };
        let frame = EthFrame::new(
            Mac::BROADCAST,
            Mac::host(from as u32 + 1),
            ethertype::IPV4,
            pkt.encode(),
        );
        let d = net.send_raw(hosts[from], frame.encode());
        println!(
            "{label}: h{from} -> {dst}: {} delivery(ies) to {:?}",
            d.len(),
            d.iter().map(|x| x.host).collect::<Vec<_>>()
        );
        d
    };

    // h0 pings h2: direct link r0—r2 exists.
    let d = send(&net, 0, ip(2, 1), "\nbefore failure");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].host, hosts[2]);

    // Link failure: the operator deletes the r0—r2 link row. The
    // recursive Reach view and the routes repair themselves.
    let (_, changes) = db.transact(&json!([
        {"op": "delete", "table": "Link", "where": [["a", "==", 2], ["b", "==", 0]]}
    ]));
    let delta = controller.handle_row_changes(&changes).expect("repair");
    println!("\nlink r2--r0 failed; incremental route changes:");
    for (rel, rows) in &delta.changes {
        for (row, w) in rows {
            println!("  {} {rel} {row:?}", if *w > 0 { "+" } else { "-" });
        }
    }

    // Traffic now detours via r1.
    let d = send(&net, 0, ip(2, 1), "after failure");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].host, hosts[2]);
    println!("\nre-routed through r1 — no routing code was written, only rules. done.");
}
