//! Quickstart: the paper's Fig. 5 VLAN-assignment example, end to end.
//!
//! A Nerpa programmer supplies three artifacts — an OVSDB schema, a P4
//! program, and DDlog rules — and the framework generates the relations
//! that tie them together. This example builds the tiny program from
//! Fig. 5, shows the generated declarations, pushes one management-plane
//! row, and watches the corresponding table entry land in the data
//! plane.
//!
//! Run with: `cargo run --example quickstart`

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;

/// Fig. 5(a): a P4 match-action table assigning VLANs by ingress port.
const P4: &str = r#"
header ethernet_t { bit<48> dst; bit<48> src; bit<16> ether_type; }
struct headers_t { ethernet_t eth; }
struct metadata_t { bit<12> vlan; }

parser QParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
               inout standard_metadata_t std_meta) {
    state start { pkt.extract(hdr.eth); transition accept; }
}

control QIngress(inout headers_t hdr, inout metadata_t meta,
                 inout standard_metadata_t std_meta) {
    action set_vlan(bit<12> vid) { meta.vlan = vid; }
    action drop_packet() { mark_to_drop(); }
    table InVlan {
        key = { std_meta.ingress_port: exact; }
        actions = { set_vlan; drop_packet; }
        default_action = drop_packet();
    }
    apply { InVlan.apply(); }
}

control QEgress(inout headers_t hdr, inout metadata_t meta,
                inout standard_metadata_t std_meta) { apply { } }

V1Switch(QParser(), QIngress(), QEgress()) main;
"#;

/// Fig. 5(b): an OVSDB table describing ports.
const SCHEMA: &str = r#"
{
    "name": "quickstart",
    "tables": {
        "Port": {
            "columns": {
                "id": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 65535}}},
                "tag": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 4095},
                        "min": 0, "max": 1}}
            },
            "isRoot": true
        }
    }
}
"#;

/// Fig. 5(c): the one hand-written rule connecting them.
/// Generated relations: `Port(_uuid, id, tag)` (input, from OVSDB) and
/// `InVlan(ingress_port, action, set_vlan_vid)` (output, from P4).
const RULES: &str = r#"
InVlan(p as bit<16>, "set_vlan", t as bit<12>) :-
    Port(_, p, tags),
    var t = FlatMap(tags).
"#;

fn main() {
    // 1. Assemble the program. Everything is type-checked together here:
    //    a wrong width or a misspelled column is a compile error.
    let program = NerpaProgram {
        schema: ovsdb::Schema::parse(SCHEMA).expect("schema"),
        p4info: p4sim::P4Info::from_program(&p4sim::parse_p4(P4).expect("p4")),
        rules: RULES.to_string(),
        options: CodegenOptions::default(),
    };
    let (src, _, _) = program.generate();
    println!("--- generated + hand-written control plane ---\n{src}");

    let mut controller = Controller::new(&program).expect("controller");

    // 2. A data plane.
    let device = SwitchDevice::new(Switch::from_source(P4).expect("switch"));
    controller.add_switch(Box::new(device.clone()));

    // 3. The management plane.
    let mut db = ovsdb::Database::new(ovsdb::Schema::parse(SCHEMA).unwrap());

    // 4. The administrator adds a port on VLAN 100...
    let (results, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"id": 7, "tag": 100}}
    ]));
    println!("--- OVSDB insert result ---\n{results}");

    // ...the controller reacts incrementally...
    let delta = controller.handle_row_changes(&changes).expect("propagate");
    println!("--- control-plane output delta ---\n{delta:?}");

    // ...and the entry is now in the P4 table.
    let entries = device.with_switch(|sw| sw.read_table("InVlan").unwrap().to_vec());
    println!("--- data-plane InVlan contents ---");
    for e in &entries {
        println!("{e:?}");
    }
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].params, vec![100]);

    // 5. Removing the row retracts the entry — no cleanup code needed.
    let (_, changes) = db.transact(&json!([
        {"op": "delete", "table": "Port", "where": [["id", "==", 7]]}
    ]));
    controller.handle_row_changes(&changes).expect("propagate");
    let remaining = device.with_switch(|sw| sw.read_table("InVlan").unwrap().len());
    assert_eq!(remaining, 0);
    println!("\nrow deleted -> entry retracted automatically. done.");
}
