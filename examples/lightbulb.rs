//! The paper's Fig. 1 analogy: management, control, and data planes of a
//! dimmable light bulb — rendered as an actual Nerpa program.
//!
//! * management plane: the desired ambiance (a `Scene` table: which room,
//!   how bright);
//! * control plane: rules deciding the duty cycle for each bulb;
//! * data plane: a "bulb" P4 pipeline whose match-action table maps the
//!   bulb id to a PWM level (packets are the photons, if you squint).
//!
//! It is deliberately tiny — run it to see the three-plane pipeline with
//! almost no code: `cargo run --example lightbulb`

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;

const BULB_P4: &str = r#"
header photon_t { bit<16> bulb; bit<16> intensity; }
struct headers_t { photon_t photon; }
struct metadata_t { bit<8> pwm; }

parser BulbParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t std_meta) {
    state start { pkt.extract(hdr.photon); transition accept; }
}

control BulbIngress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t std_meta) {
    action shine(bit<8> duty) {
        meta.pwm = duty;
        // Dim the photon according to the duty cycle and emit it.
        hdr.photon.intensity = (hdr.photon.intensity >> 8) * (bit<16>) duty;
        std_meta.egress_spec = 1;
    }
    action dark() { mark_to_drop(); }
    table Dimmer {
        key = { hdr.photon.bulb: exact; }
        actions = { shine; }
        default_action = dark();
    }
    apply { Dimmer.apply(); }
}

control BulbEgress(inout headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t std_meta) { apply { } }

V1Switch(BulbParser(), BulbIngress(), BulbEgress()) main;
"#;

const SCHEMA: &str = r#"
{
    "name": "home",
    "tables": {
        "Scene": {
            "columns": {
                "bulb": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 65535}}},
                "mood": {"type": {"key": {"type": "string",
                        "enum": ["set", ["cozy", "work", "party"]]}}}
            },
            "isRoot": true
        }
    }
}
"#;

/// The whole control plane: how moods become duty cycles.
const RULES: &str = r#"
Dimmer(b as bit<16>, "shine", duty as bit<8>) :-
    Scene(_, b, mood),
    var duty = if (mood == "cozy") 64
               else if (mood == "work") 255
               else 180.
"#;

fn main() {
    let program = NerpaProgram {
        schema: ovsdb::Schema::parse(SCHEMA).expect("schema"),
        p4info: p4sim::P4Info::from_program(&p4sim::parse_p4(BULB_P4).expect("p4")),
        rules: RULES.to_string(),
        options: CodegenOptions::default(),
    };
    let mut controller = Controller::new(&program).expect("controller");
    let bulb = SwitchDevice::new(Switch::from_source(BULB_P4).unwrap());
    controller.add_switch(Box::new(bulb.clone()));
    let mut db = ovsdb::Database::new(ovsdb::Schema::parse(SCHEMA).unwrap());

    // The management plane sets the scene.
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Scene", "row": {"bulb": 1, "mood": "cozy"}},
        {"op": "insert", "table": "Scene", "row": {"bulb": 2, "mood": "work"}}
    ]));
    controller.handle_row_changes(&changes).unwrap();

    // A photon (bulb 1, full intensity) passes through the data plane.
    let photon = |bulb: u16| {
        let mut p = Vec::new();
        p.extend_from_slice(&bulb.to_be_bytes());
        p.extend_from_slice(&0xFF00u16.to_be_bytes());
        p
    };
    let out = bulb.inject(0, &photon(1));
    let intensity = u16::from_be_bytes([out.outputs[0].1[2], out.outputs[0].1[3]]);
    println!("bulb 1 (cozy): photon intensity {intensity} (dimmed from 65280)");
    assert_eq!(intensity, 255 * 64);

    let out = bulb.inject(0, &photon(2));
    let intensity = u16::from_be_bytes([out.outputs[0].1[2], out.outputs[0].1[3]]);
    println!("bulb 2 (work): photon intensity {intensity}");
    assert_eq!(intensity, 255 * 255);

    // Changing the mood re-dims instantly.
    let (_, changes) = db.transact(&json!([
        {"op": "update", "table": "Scene", "where": [["bulb", "==", 1]],
         "row": {"mood": "party"}}
    ]));
    controller.handle_row_changes(&changes).unwrap();
    let out = bulb.inject(0, &photon(1));
    let intensity = u16::from_be_bytes([out.outputs[0].1[2], out.outputs[0].1[3]]);
    println!("bulb 1 (party): photon intensity {intensity}");
    assert_eq!(intensity, 255 * 180);

    // An unknown bulb stays dark (default action).
    let out = bulb.inject(0, &photon(9));
    assert!(out.dropped);
    println!("bulb 9 (unconfigured): dark. done.");
}
