//! Watch the stack heal itself, live.
//!
//! Runs the full TCP deployment — an OVSDB server, a P4 switch service,
//! and a supervised controller dialing the database through a chaos
//! proxy — then churns the management plane forever while periodically
//! partitioning the OVSDB link. The introspection endpoint stays up the
//! whole time:
//!
//! ```text
//! cargo run --example chaos_watch
//! curl http://127.0.0.1:9090/metrics    # Prometheus text
//! curl http://127.0.0.1:9090/traces     # recent cross-plane span trees
//! curl http://127.0.0.1:9090/health     # 503 while the link is down
//! ```
//!
//! Stop with Ctrl-C. Set `NERPA_LOG=info` to narrate reconnects and
//! resyncs on stderr.

use std::thread;
use std::time::Duration;

use chaos::{FaultProxy, FaultSchedule, Framing};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use nerpa::resync::{BackoffPolicy, MonitorConfig, OvsdbSupervisor};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;

fn main() {
    // Management plane.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).expect("schema");
    let db_server =
        ovsdb::Server::start(ovsdb::Database::new(schema.clone()), "127.0.0.1:0").expect("ovsdb");
    let admin = ovsdb::Client::connect(db_server.local_addr()).expect("admin");
    admin
        .transact(
            "snvs",
            json!([{"op": "insert", "table": "Switch", "row": {"idx": 0}}]),
        )
        .expect("seed switch");

    // The chaos proxy sits on the OVSDB link; faults are injected from
    // the main loop below rather than scripted per connection.
    let schedule = FaultSchedule::transparent(0xC0FFEE, Framing::Ndjson);
    let proxy = FaultProxy::start(db_server.local_addr(), schedule).expect("proxy");

    // Data plane + controller.
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).expect("p4");
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service = ControlService::start(device.clone(), "127.0.0.1:0").expect("p4 service");
    let nerpa_program = NerpaProgram {
        schema,
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).expect("controller");
    controller.add_switch(Box::new(
        ControlClient::connect(p4_service.local_addr()).expect("p4 client"),
    ));

    // Live introspection, on a stable port for curl.
    let endpoint = controller
        .serve_introspection("127.0.0.1:9090")
        .expect("introspection endpoint");
    println!("introspection: http://{}/metrics", endpoint.local_addr());
    println!("               http://{}/traces", endpoint.local_addr());
    println!("               http://{}/health", endpoint.local_addr());
    println!("               http://{}/dataflow", endpoint.local_addr());

    // The supervised controller runs on its own thread, dialing through
    // the proxy, reconnecting and resyncing whenever we cut the link.
    let mut supervisor = OvsdbSupervisor::new(
        proxy.local_addr(),
        MonitorConfig::all_columns("snvs", &["Port", "Switch"]),
        BackoffPolicy {
            base: Duration::from_millis(100),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            max_attempts: 10_000,
            jitter: 0.2,
            seed: 7,
        },
    )
    .expect("supervisor");
    let (_stop_tx, stop_rx) = crossbeam_channel::bounded::<()>(0);
    thread::spawn(move || {
        if let Err(e) = controller.run_supervised(&mut supervisor, Vec::new(), stop_rx) {
            eprintln!("controller exited: {e}");
        }
    });

    // Churn the management plane forever; every 8th round, cut the link
    // mid-churn so /health flips and the resync series move.
    let mut round: u64 = 0;
    loop {
        round += 1;
        let id = 1 + (round % 32) as u16;
        let vlan = 10 + (round % 4) as u16;
        admin
            .transact(
                "snvs",
                json!([
                    {"op": "delete", "table": "Port", "where": [["id", "==", id]]},
                    {"op": "insert", "table": "Port",
                     "row": {"id": id, "vlan_mode": "access", "tag": vlan}}
                ]),
            )
            .expect("churn");
        if round.is_multiple_of(8) {
            println!("round {round}: partitioning the OVSDB link for 3s");
            proxy.partition_for(Duration::from_secs(3));
            proxy.sever_all();
        }
        thread::sleep(Duration::from_millis(500));
    }
}
