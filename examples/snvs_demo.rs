//! snvs demo: the paper's §4.3 example application in action.
//!
//! Builds a two-switch network (a trunk between them), configures access
//! and trunk ports through the management plane, sends traffic, and
//! narrates what the stack does: VLAN-scoped flooding, MAC learning via
//! the digest feedback loop, convergence to unicast, port mirroring, and
//! incremental retraction when a port is removed.
//!
//! Run with: `cargo run --example snvs_demo`

use netsim::{ethertype, EthFrame, Mac};
use snvs::{PortMode, SnvsStack};

fn frame(dst: Mac, src: Mac, text: &str) -> EthFrame {
    EthFrame::new(dst, src, ethertype::IPV4, text.as_bytes().to_vec())
}

fn main() {
    let mut stack = SnvsStack::new(2).expect("stack");

    // Management plane: ports 1-2 are access ports (VLANs 10 and 20),
    // port 3 is the inter-switch trunk.
    stack.add_port(1, PortMode::Access(10), None).unwrap();
    stack.add_port(2, PortMode::Access(20), None).unwrap();
    stack
        .add_port(3, PortMode::Trunk(vec![10, 20]), None)
        .unwrap();
    println!("configured: port1=access vlan10, port2=access vlan20, port3=trunk 10+20");

    // Hosts: a1/b1 on VLAN 10 (one per switch), a2/b2 on VLAN 20.
    let a1 = stack.add_host(1, 0, 1);
    let a2 = stack.add_host(2, 0, 2);
    let b1 = stack.add_host(3, 1, 1);
    let b2 = stack.add_host(4, 1, 2);
    stack.net.connect(0, 3, 1, 3);
    println!("hosts: a1(sw0/vlan10) a2(sw0/vlan20) b1(sw1/vlan10) b2(sw1/vlan20)\n");

    // 1. Unknown destination: flood, scoped to VLAN 10, across the trunk.
    let d = stack
        .send(a1, &frame(Mac::host(3), Mac::host(1), "hello b1"))
        .unwrap();
    let who: Vec<_> = d.iter().map(|x| x.host).collect();
    println!("a1 -> b1 (unknown): delivered to hosts {who:?} (flooded VLAN 10 only)");
    assert_eq!(who, vec![b1]);
    assert!(!who.contains(&a2) && !who.contains(&b2), "VLAN isolation");

    // 2. The digest taught the controller a1's location; reply is unicast.
    let d = stack
        .send(b1, &frame(Mac::host(1), Mac::host(3), "hi a1"))
        .unwrap();
    println!(
        "b1 -> a1: {} delivery(ies), learned-unicast across the trunk",
        d.len()
    );
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].host, a1);

    // 3. Now a1 -> b1 is unicast too.
    let d = stack
        .send(a1, &frame(Mac::host(3), Mac::host(1), "again"))
        .unwrap();
    assert_eq!(d.len(), 1);
    println!("a1 -> b1 (learned): unicast, {} delivery", d.len());

    // Inspect the MAC table the control plane computed.
    let macs = stack.controller.engine().dump("MacLearned").unwrap();
    println!("\ncontrol-plane MacLearned relation ({} rows):", macs.len());
    for m in &macs {
        println!("  {m:?}");
    }

    // 4. Mirroring: mirror port 1's ingress to port 5.
    stack.add_port(5, PortMode::Access(10), None).unwrap();
    stack.remove_port(1).unwrap();
    stack.add_port(1, PortMode::Access(10), Some(5)).unwrap();
    let monitor = stack.add_host(9, 0, 5);
    let d = stack
        .send(a1, &frame(Mac::host(3), Mac::host(1), "mirrored"))
        .unwrap();
    let who: Vec<_> = d.iter().map(|x| x.host).collect();
    println!("\nafter enabling mirroring: a1 -> b1 delivered to {who:?} (monitor={monitor})");
    assert!(who.contains(&monitor));

    // 5. Incremental retraction: removing port 3 (the trunk) cuts the
    // switches apart; a1's traffic no longer reaches b1.
    stack.remove_port(3).unwrap();
    let d = stack
        .send(a1, &frame(Mac::host(3), Mac::host(1), "cut off"))
        .unwrap();
    let who: Vec<_> = d.iter().map(|x| x.host).collect();
    println!("after removing the trunk: a1 -> b1 delivered to {who:?} (b1 unreachable)");
    assert!(!who.contains(&b1));

    println!(
        "\ncontroller metrics: {} transactions, {} entries pushed",
        stack.controller.metrics.transactions.get(),
        stack.controller.metrics.entries_pushed.get()
    );
    println!("done.");
}
