#!/usr/bin/env bash
# Bench-regression harness: regenerate the paper experiments and write
# their measurements as machine-readable BENCH_*.json reports in the
# repo root. Pass --quick for the CI smoke variant (same entry names,
# fewer commits/ports, ~seconds instead of minutes).
#
#   scripts/bench.sh             # full runs -> BENCH_fig3.json, BENCH_port_scaling.json
#   scripts/bench.sh --quick     # CI smoke
#
# Gate a change against the checked-in baselines with:
#
#   cargo run --release -q -p bench --bin compare -- \
#       crates/bench/baselines/BENCH_fig3.json BENCH_fig3.json
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=()
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=(--quick) ;;
    *)
        echo "usage: scripts/bench.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

cargo build --release -q -p bench

cargo run --release -q -p bench --bin report_fig3 -- \
    --out BENCH_fig3.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_port_scaling -- \
    --out BENCH_port_scaling.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_wal -- \
    --out BENCH_wal.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_shard_scaling -- \
    --out BENCH_shard_scaling.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_recorder_overhead -- \
    --out BENCH_recorder.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_provenance_overhead -- \
    --out BENCH_provenance.json "${QUICK[@]}"
cargo run --release -q -p bench --bin report_overload -- \
    --out BENCH_overload.json "${QUICK[@]}"

echo
echo "bench reports written: BENCH_fig3.json BENCH_port_scaling.json BENCH_wal.json BENCH_shard_scaling.json BENCH_recorder.json BENCH_provenance.json BENCH_overload.json"
