#!/usr/bin/env bash
# The repo's CI gate, runnable locally: build, tests, formatting, lints,
# and an oracle smoke run (differential fuzz of the incremental pipeline
# against the full-recompute baseline, fault-free and under chaos).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Telemetry: the equivalence suite and the cross-plane e2e test run
# with debug logging wide open (every hot-path log site formats), and
# the e2e test scrapes the live introspection endpoint over HTTP,
# failing on malformed Prometheus exposition.
NERPA_LOG=debug cargo test -q --test equivalence
NERPA_LOG=debug cargo test -q --test telemetry_e2e

# Oracle smoke: 8 seeds fault-free, then the same seeds with a chaos
# schedule injecting management-link outages and switch restarts.
cargo run --release -q -p oracle --bin oracle -- --seed 1..8 --steps 200
cargo run --release -q -p oracle --bin oracle -- --seed 1..8 --steps 200 --chaos 7

# Durability: crash-recovery e2e (torn WAL tail, server restart, epoch
# reset, controller reconvergence), then an oracle sweep that kills the
# durable OVSDB server mid-WAL-write and checks crash-equivalence — the
# recovered state must equal the pre-crash committed prefix.
cargo test -q --test durability_e2e
cargo run --release -q -p oracle --bin oracle -- --seed 1..8 --steps 200 --chaos-crash 7

# Sharded control plane: the sockets e2e (kill one shard's switch, the
# others keep committing), then the cross-shard equivalence oracle —
# union of 4 shard engines vs one unsharded engine vs the
# full-recompute spec, fault-free and with chaos faults targeted at a
# single shard.
cargo test -q --test shard_e2e
cargo run --release -q -p oracle --bin oracle -- --seed 1..8 --steps 200 --shards 4
cargo run --release -q -p oracle --bin oracle -- --seed 1..8 --steps 200 --chaos 7 --shards 4

# Flight recorder: the black-box e2e (an oracle failure must ship a
# causally ordered .nfr dump; convergence lag is recorded under chaos
# reconnects), then a seeded chaos oracle run armed with --flight-dir:
# it must leave a .nfr dump that the nerpa-flight CLI parses back into
# a timeline containing the injected chaos faults.
cargo test -q --test flight_e2e
rm -rf target/flight-ci
cargo build --release -q --bin nerpa-flight
cargo run --release -q -p oracle --bin oracle -- \
    --seed 1..4 --steps 200 --chaos 7 --flight-dir target/flight-ci
dump=$(ls target/flight-ci/*.nfr | head -n 1)
test -n "$dump"
target/release/nerpa-flight show --json "$dump" >target/flight-ci/timeline.json
grep -q '"kind":"chaos.fault"' target/flight-ci/timeline.json
echo "flight-recorder: OK ($dump replays the injected faults)"

# Provenance: the why/why-not e2e (every installed P4 entry and mcast
# member on a live snvs stack resolves to a base-rooted derivation
# tree; retraction prunes the ledger), then the nerpa-why CLI against
# its built-in demo stack — exit 0 means every entry explained and the
# ledger validated against a from-scratch reference. (The oracle smokes
# above already run with provenance armed: the harness enables the
# ledger on every run and dumps the first diverging tuple's derivation
# on failure.)
cargo test -q --test why_e2e
cargo run --release -q --bin nerpa-why -- demo >/dev/null
echo "provenance: OK (nerpa-why demo explains every installed entry)"

# Overload robustness: the e2e suite (watchdog supersede + replace +
# reconcile against a fault-free reference; slow-monitor eviction with
# streamed-view/reconnect-snapshot equivalence; the full --chaos-stall
# oracle), then an oracle sweep that freezes a live switch connection
# mid-churn and wedges a slow OVSDB monitor on every seed — each run
# must converge to the fault-free state with queue depths inside their
# caps, at least one watchdog restart, and the slow monitor evicted.
cargo test -q -p oracle --test overload_e2e
cargo test -q -p shard --test coalesce_props
cargo run --release -q -p oracle --bin oracle -- \
    --seed 1..4 --steps 150 --chaos-stall 7
echo "overload: OK (stall + slow consumer survived on every seed)"

# Bench smoke: regenerate the paper experiments in --quick mode (the
# incrementality audit is armed inside report_fig3) and gate the
# deterministic tuples-per-commit measurements against the checked-in
# baselines. Wall time is reported but not enforced — tuple counts are
# machine-independent, nanoseconds are not.
scripts/bench.sh --quick
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_fig3.json BENCH_fig3.json
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_port_scaling.json BENCH_port_scaling.json
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_shard_scaling.json BENCH_shard_scaling.json
# The recorder report's wall budget (recorder-on ≤ 1.05x recorder-off,
# measured in one process) is enforced by compare even without
# --enforce-time — it is the always-on flight recorder's overhead gate.
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_recorder.json BENCH_recorder.json
# Same in-process wall-budget mechanism for the provenance ledger:
# provenance-on churn commits must stay ≤ 1.15x provenance-off.
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_provenance.json BENCH_provenance.json
# Overload: sustained churn with one switch frozen must stay within
# 2.5x of healthy wall (same process), fan-out with one slow monitor
# within 3x, and the wedged subscriber costs exactly one eviction.
cargo run --release -q -p bench --bin compare -- \
    crates/bench/baselines/BENCH_overload.json BENCH_overload.json

# Bench-cliff: the churn-scaling wall-time gate. Runs the reachability
# churn pair (n=200 / n=2000) with the work audit armed and fails if
# wall/op at n=2000 exceeds 2x wall/op at n=200 — the ratio is measured
# within one process, so it is machine-independent. Guards the
# arrangement-backed evaluator against regressing to per-commit cost
# proportional to total state (the pre-arrangement cliff was ~10x).
cargo run --release -q -p bench --bin report_fig3 -- \
    --cliff --out BENCH_fig3_cliff.json
