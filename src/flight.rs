//! Reading the black box: parsing, merging, and rendering of
//! flight-recorder `.nfr` dumps (see `telemetry::recorder`).
//!
//! A `.nfr` dump is NDJSON: one header line, then one line per
//! recorded event, sequence-ordered. This module loads one or more
//! dumps into a single causally ordered [`Timeline`] — within one
//! process the recorder's monotonic sequence number is the causal
//! order; across processes events interleave by absolute time
//! (`start_unix_ms` anchor plus the event's relative timestamp).

use std::path::Path;

use serde_json::Value as Json;

/// The header line of one `.nfr` dump.
#[derive(Debug, Clone)]
pub struct DumpHeader {
    /// The dump's source file name (for provenance in merged output).
    pub source: String,
    /// The `.nfr` format version.
    pub version: u64,
    /// Why the dump was written ("oracle-failure: ...", "chaos run
    /// end", "health: ...").
    pub reason: String,
    /// Wall-clock anchor: unix milliseconds when the recorder started.
    pub start_unix_ms: u64,
    /// Events in the dump.
    pub events: u64,
}

/// One event parsed back out of a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Index into [`Timeline::dumps`] of the dump this event came from.
    pub dump: usize,
    /// Process-wide monotonic sequence number (causal order within the
    /// source process).
    pub seq: u64,
    /// Nanoseconds since the source recorder started.
    pub ts_ns: u64,
    /// The recording plane ("management", "control", "data", "stack",
    /// "chaos").
    pub plane: String,
    /// Event kind ("ovsdb.commit", "ddlog.apply", "shard.write", ...).
    pub kind: String,
    /// Causal trace id; 0 = untraced.
    pub trace: u64,
    /// Named numeric payload fields, in recorded order.
    pub fields: Vec<(String, u64)>,
    /// Optional free-form detail.
    pub note: Option<String>,
}

impl FlightEvent {
    /// Absolute wall-clock nanoseconds (for cross-process interleaving).
    fn abs_ns(&self, headers: &[DumpHeader]) -> u128 {
        headers[self.dump].start_unix_ms as u128 * 1_000_000 + self.ts_ns as u128
    }

    /// One rendered timeline line.
    pub fn render_line(&self, multi_dump: bool) -> String {
        let ms = self.ts_ns as f64 / 1e6;
        let mut out = String::new();
        if multi_dump {
            out.push_str(&format!("[{}] ", self.dump));
        }
        out.push_str(&format!(
            "{:>6}  +{ms:>10.3}ms  {:<10}  {:<20}",
            self.seq, self.plane, self.kind
        ));
        if self.trace != 0 {
            out.push_str(&format!("  trace={:x}", self.trace));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!("  {k}={v}"));
        }
        if let Some(note) = &self.note {
            out.push_str(&format!("  -- {note}"));
        }
        out
    }

    fn to_json(&self) -> Json {
        let fields: serde_json::Map<String, Json> = self
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect();
        let mut obj = serde_json::Map::new();
        obj.insert("dump".into(), Json::from(self.dump));
        obj.insert("seq".into(), Json::from(self.seq));
        obj.insert("ts_ns".into(), Json::from(self.ts_ns));
        obj.insert("plane".into(), Json::String(self.plane.clone()));
        obj.insert("kind".into(), Json::String(self.kind.clone()));
        obj.insert("trace".into(), Json::from(self.trace));
        obj.insert("fields".into(), Json::Object(fields));
        if let Some(note) = &self.note {
            obj.insert("note".into(), Json::String(note.clone()));
        }
        Json::Object(obj)
    }
}

/// One or more dumps merged into a causally ordered event stream.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// The source dump headers, in load order.
    pub dumps: Vec<DumpHeader>,
    /// All events, causally ordered.
    pub events: Vec<FlightEvent>,
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn get_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn parse_dump(
    dump: usize,
    source: &str,
    text: &str,
) -> Result<(DumpHeader, Vec<FlightEvent>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("empty dump")?;
    let header: Json =
        serde_json::from_str(header_line).map_err(|e| format!("bad header line: {e}"))?;
    let version = get_u64(&header, "nfr")?;
    if version != telemetry::NFR_VERSION as u64 {
        return Err(format!(
            "unsupported .nfr version {version} (this tool reads version {})",
            telemetry::NFR_VERSION
        ));
    }
    let head = DumpHeader {
        source: source.to_string(),
        version,
        reason: get_str(&header, "reason")?,
        start_unix_ms: get_u64(&header, "start_unix_ms")?,
        events: get_u64(&header, "events")?,
    };
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let ev: Json =
            serde_json::from_str(line).map_err(|e| format!("bad event line {}: {e}", i + 2))?;
        let fields = match ev.get("fields") {
            Some(Json::Object(map)) => map
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("event line {}: non-numeric field {k:?}", i + 2))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        events.push(FlightEvent {
            dump,
            seq: get_u64(&ev, "seq")?,
            ts_ns: get_u64(&ev, "ts_ns")?,
            plane: get_str(&ev, "plane")?,
            kind: get_str(&ev, "kind")?,
            trace: get_u64(&ev, "trace")?,
            fields,
            note: ev.get("note").and_then(Json::as_str).map(str::to_string),
        });
    }
    Ok((head, events))
}

impl Timeline {
    /// Load and merge one or more `.nfr` dump files.
    pub fn load(paths: &[impl AsRef<Path>]) -> Result<Timeline, String> {
        let mut timeline = Timeline::default();
        for path in paths {
            let path = path.as_ref();
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            timeline
                .push_dump(&path.display().to_string(), &text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        timeline.sort();
        Ok(timeline)
    }

    /// Parse one dump's text and append it (callers should [`sort`]
    /// once all dumps are in).
    ///
    /// [`sort`]: Timeline::sort
    pub fn push_dump(&mut self, source: &str, text: &str) -> Result<(), String> {
        let (head, events) = parse_dump(self.dumps.len(), source, text)?;
        self.dumps.push(head);
        self.events.extend(events);
        Ok(())
    }

    /// Causally order the merged stream: absolute wall-clock time
    /// interleaves processes; within one dump the sequence number (the
    /// true causal order there) breaks ties.
    pub fn sort(&mut self) {
        let headers = self.dumps.clone();
        self.events
            .sort_by_key(|e| (e.abs_ns(&headers), e.dump, e.seq));
    }

    /// The timeline restricted to one trace id (header set unchanged).
    pub fn filter_trace(&self, trace: u64) -> Timeline {
        Timeline {
            dumps: self.dumps.clone(),
            events: self
                .events
                .iter()
                .filter(|e| e.trace == trace)
                .cloned()
                .collect(),
        }
    }

    /// The convergence lag recorded in this timeline, if any: the
    /// largest `lag_ns` field among `convergence.settled` events (a
    /// trace with several switch writes settles more than once; the
    /// last write bounds convergence).
    pub fn convergence_lag_ns(&self) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.kind == "convergence.settled")
            .flat_map(|e| {
                e.fields
                    .iter()
                    .filter(|(k, _)| k == "lag_ns")
                    .map(|(_, v)| *v)
            })
            .max()
    }

    /// The plane names crossed by this timeline, in event order
    /// (deduplicated to first occurrence).
    pub fn planes_crossed(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.plane) {
                out.push(e.plane.clone());
            }
        }
        out
    }

    /// Human-readable timeline: dump provenance, then one line per
    /// event.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let multi = self.dumps.len() > 1;
        for (i, d) in self.dumps.iter().enumerate() {
            out.push_str(&format!(
                "dump [{i}] {} — {} events, reason: {}\n",
                d.source, d.events, d.reason
            ));
        }
        out.push_str(&format!("{} events:\n", self.events.len()));
        for e in &self.events {
            out.push_str(&e.render_line(multi));
            out.push('\n');
        }
        out
    }

    /// The machine-readable form: `{"dumps":[...],"events":[...]}`.
    pub fn render_json(&self) -> String {
        let dumps: Vec<Json> = self
            .dumps
            .iter()
            .map(|d| {
                serde_json::json!({
                    "source": d.source,
                    "version": d.version,
                    "reason": d.reason,
                    "start_unix_ms": d.start_unix_ms,
                    "events": d.events,
                })
            })
            .collect();
        let events: Vec<Json> = self.events.iter().map(|e| e.to_json()).collect();
        serde_json::json!({ "dumps": dumps, "events": events }).to_string()
    }

    /// Per-(plane, kind) event counts.
    fn kind_counts(&self) -> std::collections::BTreeMap<(String, String), u64> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts
                .entry((e.plane.clone(), e.kind.clone()))
                .or_insert(0u64) += 1;
        }
        counts
    }

    /// Compare against a healthy baseline dump: which event kinds
    /// appear only here (the anomalies — audit trips, write errors,
    /// faults), which only there, and how the shared counts shifted.
    pub fn diff(&self, healthy: &Timeline) -> String {
        let ours = self.kind_counts();
        let theirs = healthy.kind_counts();
        let mut out = String::new();
        for ((plane, kind), n) in &ours {
            match theirs.get(&(plane.clone(), kind.clone())) {
                None => out.push_str(&format!("+ {plane}/{kind}: {n} (absent in baseline)\n")),
                Some(m) if m != n => {
                    out.push_str(&format!("~ {plane}/{kind}: {n} here, {m} in baseline\n"))
                }
                Some(_) => {}
            }
        }
        for ((plane, kind), m) in &theirs {
            if !ours.contains_key(&(plane.clone(), kind.clone())) {
                out.push_str(&format!("- {plane}/{kind}: 0 here, {m} in baseline\n"));
            }
        }
        if out.is_empty() {
            out.push_str("no differences in event kinds or counts\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(start_ms: u64, events: &[(u64, u64, &str, &str, u64)]) -> String {
        let mut out = format!(
            "{{\"nfr\":1,\"reason\":\"test\",\"start_unix_ms\":{start_ms},\"events\":{}}}\n",
            events.len()
        );
        for (seq, ts, plane, kind, trace) in events {
            out.push_str(&format!(
                "{{\"seq\":{seq},\"ts_ns\":{ts},\"plane\":\"{plane}\",\"kind\":\"{kind}\",\"trace\":{trace},\"fields\":{{\"n\":1}}}}\n"
            ));
        }
        out
    }

    #[test]
    fn parse_and_order_single_dump() {
        let text = sample(
            1000,
            &[
                (3, 30, "data", "p4.write", 7),
                (1, 10, "management", "ovsdb.commit", 7),
                (2, 20, "control", "ddlog.apply", 7),
            ],
        );
        let mut t = Timeline::default();
        t.push_dump("a.nfr", &text).unwrap();
        t.sort();
        let kinds: Vec<&str> = t.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["ovsdb.commit", "ddlog.apply", "p4.write"]);
        assert_eq!(t.planes_crossed(), ["management", "control", "data"]);
    }

    #[test]
    fn merge_interleaves_by_wall_clock() {
        // Process B started 1ms after process A; its first event lands
        // between A's two events in absolute time.
        let a = sample(
            1000,
            &[
                (1, 100_000, "management", "ovsdb.commit", 1),
                (2, 3_000_000, "data", "p4.write", 1),
            ],
        );
        let b = sample(1001, &[(1, 500_000, "chaos", "chaos.fault", 0)]);
        let mut t = Timeline::default();
        t.push_dump("a.nfr", &a).unwrap();
        t.push_dump("b.nfr", &b).unwrap();
        t.sort();
        let kinds: Vec<&str> = t.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["ovsdb.commit", "chaos.fault", "p4.write"]);
    }

    #[test]
    fn trace_filter_and_json_round_trip() {
        let text = sample(
            1000,
            &[
                (1, 10, "management", "ovsdb.commit", 7),
                (2, 20, "management", "ovsdb.commit", 9),
            ],
        );
        let mut t = Timeline::default();
        t.push_dump("a.nfr", &text).unwrap();
        t.sort();
        let only7 = t.filter_trace(7);
        assert_eq!(only7.events.len(), 1);
        assert_eq!(only7.events[0].trace, 7);

        let parsed: Json = serde_json::from_str(&t.render_json()).unwrap();
        assert_eq!(parsed["events"].as_array().unwrap().len(), 2);
        assert_eq!(parsed["dumps"][0]["reason"].as_str(), Some("test"));
    }

    #[test]
    fn diff_reports_new_and_shifted_kinds() {
        let healthy = sample(1000, &[(1, 10, "management", "ovsdb.commit", 1)]);
        let failing = sample(
            1000,
            &[
                (1, 10, "management", "ovsdb.commit", 1),
                (2, 20, "control", "ddlog.audit_trip", 1),
            ],
        );
        let mut h = Timeline::default();
        h.push_dump("h.nfr", &healthy).unwrap();
        let mut f = Timeline::default();
        f.push_dump("f.nfr", &failing).unwrap();
        let d = f.diff(&h);
        assert!(d.contains("+ control/ddlog.audit_trip"), "{d}");
        assert!(!d.contains("ovsdb.commit"), "{d}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = "{\"nfr\":99,\"reason\":\"x\",\"start_unix_ms\":0,\"events\":0}\n";
        let mut t = Timeline::default();
        let err = t.push_dump("a.nfr", text).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }
}
