//! `nerpa-why`: answer "why is this rule installed?" (and "why not?")
//! from OVSDB row to P4 entry.
//!
//! ```text
//! nerpa-why demo                        # explain every installed entry
//! nerpa-why demo --table MacLearned     # one table only
//! nerpa-why demo --json                 # machine-readable trees
//! nerpa-why demo --not MacLearned 0 10 33 output 2
//! ```
//!
//! `demo` builds the built-in snvs stack (one switch, three access
//! ports on VLAN 10, one on VLAN 20, a trunk, and learned MACs from a
//! few frames), then resolves every installed P4 table entry and every
//! multicast group member back through the controller's table mappings
//! to a derivation tree rooted in the OVSDB-mirrored base facts. Each
//! supporting fact is annotated with the flight-recorder trace id that
//! last touched it.
//!
//! `--not <Relation> <value>...` instead asks why the given row is
//! absent: for every candidate rule the first failing literal is
//! reported. Values are parsed against the relation's declared column
//! types.
//!
//! Exit codes: 0 = all queried trees rooted in base facts,
//! 1 = a query failed or a tree was incomplete, 2 = usage error.

use ddlog::{ProvenanceConfig, Type, Value};
use p4sim::runtime::{FieldMatch, TableEntry};
use snvs::{PortMode, SnvsStack};

struct Args {
    table: Option<String>,
    json: bool,
    not: Option<(String, Vec<String>)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: nerpa-why demo [--table NAME] [--json] [--not RELATION VALUE...]\n\
         \n\
         demo     build the snvs demo stack and explain its installed state\n\
         --table  only entries of this P4 table / output relation\n\
         --json   machine-readable derivation trees\n\
         --not    ask why RELATION does *not* contain the given row\n\
         \u{20}         (values are parsed per the relation's column types)"
    );
    std::process::exit(2);
}

fn parse_args() -> Option<Args> {
    let mut it = std::env::args().skip(1);
    if it.next()?.as_str() != "demo" {
        return None;
    }
    let mut args = Args {
        table: None,
        json: false,
        not: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => args.table = Some(it.next()?),
            "--json" => args.json = true,
            "--not" => {
                let rel = it.next()?;
                args.not = Some((rel, it.by_ref().collect()));
            }
            "--help" | "-h" => usage(),
            _ => return None,
        }
    }
    Some(args)
}

/// Parse a textual column literal against its declared type.
fn parse_value(text: &str, ty: &Type) -> Result<Value, String> {
    let bad = |what: &str| format!("cannot parse `{text}` as {what}");
    match ty {
        Type::Bool => text.parse().map(Value::Bool).map_err(|_| bad("bool")),
        Type::Int => text.parse().map(Value::Int).map_err(|_| bad("bigint")),
        Type::Bit(w) => {
            let val: u128 = text.parse().map_err(|_| bad(&format!("bit<{w}>")))?;
            Ok(Value::Bit { width: *w, val })
        }
        Type::Str => Ok(Value::str(text)),
        other => Err(format!("unsupported column type {other:?} in --not row")),
    }
}

fn fmt_match(m: &FieldMatch) -> String {
    match m {
        FieldMatch::Exact { value } => format!("{value}"),
        FieldMatch::Lpm { value, prefix_len } => format!("{value}/{prefix_len}"),
        FieldMatch::Ternary { value, mask } => format!("{value}&{mask:#x}"),
    }
}

fn fmt_entry(e: &TableEntry) -> String {
    let keys: Vec<String> = e.matches.iter().map(fmt_match).collect();
    let params: Vec<String> = e.params.iter().map(|p| p.to_string()).collect();
    format!(
        "{}({}) -> {}({})",
        e.table,
        keys.join(", "),
        e.action,
        params.join(", ")
    )
}

/// The demo workload: one switch, access ports 1-3 on VLAN 10, port 4
/// on VLAN 20, a trunk on port 5, and enough traffic to learn two MACs.
fn demo_stack() -> Result<SnvsStack, String> {
    let mut stack = SnvsStack::new_with(1, ProvenanceConfig::on())?;
    for port in [1u16, 2, 3] {
        stack.add_port(port, PortMode::Access(10), None)?;
    }
    stack.add_port(4, PortMode::Access(20), None)?;
    stack.add_port(5, PortMode::Trunk(vec![10, 20]), None)?;
    let h1 = stack.add_host(1, 0, 1);
    let h2 = stack.add_host(2, 0, 2);
    let frame = |dst, src| {
        netsim::EthFrame::new(
            netsim::Mac::host(dst),
            netsim::Mac::host(src),
            netsim::ethertype::IPV4,
            b"nerpa-why".to_vec(),
        )
    };
    // h1 -> h2 floods and teaches h1's port; h2 -> h1 teaches h2's.
    stack.send(h1, &frame(2, 1))?;
    stack.send(h2, &frame(1, 2))?;
    Ok(stack)
}

fn run() -> Result<bool, String> {
    let Some(args) = parse_args() else { usage() };
    let stack = demo_stack()?;
    let controller = &stack.controller;

    if let Some((relation, texts)) = &args.not {
        let schema = controller
            .engine()
            .relation_schema(relation)
            .map_err(|e| e.to_string())?;
        if texts.len() != schema.len() {
            return Err(format!(
                "`{relation}` has {} columns ({}), got {} values",
                schema.len(),
                schema
                    .iter()
                    .map(|(n, t)| format!("{n}: {t:?}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                texts.len()
            ));
        }
        let row: Vec<Value> = texts
            .iter()
            .zip(&schema)
            .map(|(t, (_, ty))| parse_value(t, ty))
            .collect::<Result<_, _>>()?;
        let report = controller
            .engine()
            .why_not(relation, row)
            .map_err(|e| e.to_string())?;
        if args.json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
        }
        return Ok(true);
    }

    let mut all_rooted = true;
    let mut json_trees = Vec::new();
    for sw in 0..stack.devices.len() {
        for entry in controller.desired_entries(sw)? {
            if args.table.as_deref().is_some_and(|t| t != entry.table) {
                continue;
            }
            let tree = controller.why_entry(sw, &entry)?;
            all_rooted &= tree.rooted_in_base();
            if args.json {
                json_trees.push(format!(
                    "{{\"switch\":{sw},\"entry\":{:?},\"why\":{}}}",
                    fmt_entry(&entry),
                    tree.render_json()
                ));
            } else {
                println!("switch {sw}: {}", fmt_entry(&entry));
                print!("{}", indent(&tree.render_text()));
                println!();
            }
        }
        if args.table.is_none() {
            for (group, ports) in controller.mcast_snapshot(sw) {
                for port in ports {
                    let tree = controller.why_mcast(sw, group, port)?;
                    all_rooted &= tree.rooted_in_base();
                    if args.json {
                        json_trees.push(format!(
                            "{{\"switch\":{sw},\"mcast\":[{group},{port}],\"why\":{}}}",
                            tree.render_json()
                        ));
                    } else {
                        println!("switch {sw}: mcast group {group} includes port {port}");
                        print!("{}", indent(&tree.render_text()));
                        println!();
                    }
                }
            }
        }
    }
    if args.json {
        println!("[{}]", json_trees.join(",\n "));
    }
    controller
        .engine()
        .validate_provenance()
        .map_err(|e| format!("provenance self-check failed: {e}"))?;
    Ok(all_rooted)
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}\n"))
        .collect::<Vec<_>>()
        .join("")
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => {
            eprintln!("nerpa-why: some derivation trees are not rooted in base facts");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("nerpa-why: {e}");
            std::process::exit(1);
        }
    }
}
