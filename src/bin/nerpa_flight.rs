//! `nerpa-flight`: read the stack's black box.
//!
//! ```text
//! nerpa-flight show crash.nfr                    # merged timeline
//! nerpa-flight show a.nfr b.nfr --trace 1a2b     # one trace, across dumps
//! nerpa-flight show crash.nfr --json             # machine-readable
//! nerpa-flight show crash.nfr --diff healthy.nfr # what changed vs a good run
//! ```
//!
//! Exit codes: 0 = rendered, 1 = unreadable or malformed dump,
//! 2 = usage error.

use std::path::PathBuf;

use fullstack_sdn::flight::Timeline;

struct Args {
    dumps: Vec<PathBuf>,
    trace: Option<u64>,
    json: bool,
    diff: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: nerpa-flight show <dump.nfr>... [--trace ID] [--json] [--diff healthy.nfr]\n\
         \n\
         show     merge the dumps into one causally ordered timeline\n\
         --trace  only events of one trace id (hex or decimal)\n\
         --json   machine-readable output ({{\"dumps\":[..],\"events\":[..]}})\n\
         --diff   compare event kinds/counts against a healthy baseline dump"
    );
    std::process::exit(2);
}

fn parse_trace(s: &str) -> Option<u64> {
    s.parse()
        .ok()
        .or_else(|| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
}

fn parse_args() -> Option<Args> {
    let mut it = std::env::args().skip(1);
    if it.next()?.as_str() != "show" {
        return None;
    }
    let mut args = Args {
        dumps: Vec::new(),
        trace: None,
        json: false,
        diff: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => args.trace = Some(parse_trace(&it.next()?)?),
            "--json" => args.json = true,
            "--diff" => args.diff = Some(PathBuf::from(it.next()?)),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => return None,
            path => args.dumps.push(PathBuf::from(path)),
        }
    }
    (!args.dumps.is_empty()).then_some(args)
}

fn main() {
    let Some(args) = parse_args() else { usage() };
    let timeline = match Timeline::load(&args.dumps) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("nerpa-flight: {e}");
            std::process::exit(1);
        }
    };
    let timeline = match args.trace {
        Some(id) => timeline.filter_trace(id),
        None => timeline,
    };
    if let Some(healthy_path) = &args.diff {
        let healthy = match Timeline::load(std::slice::from_ref(healthy_path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nerpa-flight: {e}");
                std::process::exit(1);
            }
        };
        print!("{}", timeline.diff(&healthy));
        return;
    }
    if args.json {
        println!("{}", timeline.render_json());
    } else {
        print!("{}", timeline.render_text());
        // A trace that settled carries its commit-to-data-plane lag.
        if args.trace.is_some() {
            if let Some(lag_ns) = timeline.convergence_lag_ns() {
                println!(
                    "convergence lag: {:.3} ms (OVSDB ack to last switch write)",
                    lag_ns as f64 / 1e6
                );
            }
        }
    }
}
