//! Full-Stack SDN (Nerpa, HotNets '22) — a complete reproduction in Rust.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`ovsdb`] — the management plane: a transactional, monitorable
//!   database (RFC 7047 subset) with a JSON-RPC TCP protocol;
//! * [`ddlog`] — the control plane substrate: an incremental Datalog
//!   engine (typed dialect, joins/negation/recursion/aggregation,
//!   transactional change streams);
//! * [`p4sim`] — the data plane: a P4-16-subset compiler, BMv2-style
//!   behavioral switch, and P4Runtime-style control protocol;
//! * [`netsim`] — packet substrate: frame codecs, hosts, links,
//!   deterministic topologies;
//! * [`nerpa`] — the paper's contribution: cross-plane code generation,
//!   unified type checking, and the incremental controller runtime;
//! * [`snvs`] — the paper's example application (VLANs, MAC learning,
//!   mirroring) built on the framework;
//! * [`baselines`] — the comparators used by the evaluation.
//!
//! See `examples/` for runnable walkthroughs and DESIGN.md /
//! EXPERIMENTS.md for the experiment index.

pub mod flight;

pub use baselines;
pub use ddlog;
pub use nerpa;
pub use netsim;
pub use ovsdb;
pub use p4sim;
pub use snvs;
