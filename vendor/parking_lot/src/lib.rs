//! Vendored `parking_lot` subset over `std::sync` primitives: the
//! no-poison `lock()`/`read()`/`write()` API the workspace uses. A
//! panicked holder does not poison the lock — the next locker simply
//! proceeds, matching parking_lot semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no poison propagation
        *m.lock() = 2;
        assert_eq!(*m.lock(), 2);
    }
}
