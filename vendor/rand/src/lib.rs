//! Vendored `rand` subset: a deterministic, seedable RNG with uniform
//! range sampling. The workspace's chaos schedules, workload generators,
//! and jittered backoff all rely on `StdRng::seed_from_u64` producing
//! the same sequence on every platform, so the generator is a fixed,
//! self-contained algorithm (splitmix64-seeded xoshiro256**), not a
//! wrapper around platform entropy.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed. The full internal state
    /// is expanded from the seed with splitmix64, so nearby seeds give
    /// unrelated sequences.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Standard RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**, seeded via splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)`; `hi > lo`.
    fn sample_exclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Draw uniformly from `[lo, hi]`; `hi >= lo`.
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let v = ((rng)() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u64 (or wider) domain: take the raw word.
                    return ((rng)() as i128) as $t;
                }
                let v = ((rng)() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty random_range");
        let unit = ((rng)() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        lo + (hi - lo) * unit
    }
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty random_range");
        let unit = ((rng)() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        lo + (hi - lo) * unit
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// Draw a bool that is true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1000)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1000)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3u16..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
        }
        // Inclusive ranges can hit both endpoints.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..200 {
            match rng.random_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }
}
