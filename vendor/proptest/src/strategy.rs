//! Strategies: composable random-value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> MapFn<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapFn { inner: self, f }
    }

    /// Chain a value-dependent strategy.
    fn prop_flat_map<U, F, S2>(self, f: F) -> FlatMapFn<Self, F>
    where
        Self: Sized,
        S2: Strategy<Value = U>,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapFn { inner: self, f }
    }

    /// Filter generated values (rejected values are regenerated, up to a
    /// cap, then the last one is returned regardless — callers pair this
    /// with `prop_assume!` when the predicate must hold).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> FilterFn<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterFn { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}
impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<Value = T>>,
}
impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}
impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct MapFn<S, F> {
    inner: S,
    f: F,
}
impl<S, F, U> Strategy for MapFn<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Clone)]
pub struct FlatMapFn<S, F> {
    inner: S,
    f: F,
}
impl<S, F, S2> Strategy for FlatMapFn<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Clone)]
pub struct FilterFn<S, F> {
    inner: S,
    f: F,
}
impl<S, F> Strategy for FilterFn<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);
impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}
impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}
impl<T> Union<T> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}
impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// -------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.below128(span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = rng.below128(span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*}
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start + rng.below128(span) as i128
    }
}
impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        let span = hi.wrapping_sub(lo) as u128;
        if span == u128::MAX {
            return rng.next_u128() as i128;
        }
        lo + rng.below128(span + 1) as i128
    }
}
impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below128(self.end - self.start)
    }
}
impl Strategy for RangeInclusive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        let span = hi - lo;
        if span == u128::MAX {
            return rng.next_u128();
        }
        lo + rng.below128(span + 1)
    }
}

// -------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ----------------------------------------------------------- arbitrary

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate a uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);
impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}
impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*}
}
arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// -------------------------------------------------------------- string

/// `&str` strategies are interpreted as a small regex subset: `X{a,b}`
/// repetition where `X` is `.` (printable ASCII) or a `[c-d]` class; a
/// pattern without metacharacters is a literal. Anything else falls back
/// to printable ASCII of length 0..=16.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = match parse_simple_pattern(self) {
            Some(parsed) => parsed,
            None if !self.contains(['.', '{', '[', '*', '+', '?', '\\']) => {
                return (*self).to_string();
            }
            None => (CharClass::Printable, 0, 16),
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| class.pick(rng)).collect()
    }
}

#[derive(Clone, Copy)]
enum CharClass {
    Printable,
    Range(char, char),
}
impl CharClass {
    fn pick(self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Printable => (0x20 + rng.below(0x5f) as u8) as char,
            CharClass::Range(a, b) => {
                char::from_u32(a as u32 + rng.below((b as u32 - a as u32 + 1) as u64) as u32)
                    .unwrap_or(a)
            }
        }
    }
}

fn parse_simple_pattern(p: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(rest) = p.strip_prefix('.') {
        (CharClass::Printable, rest)
    } else if p.starts_with('[') {
        let end = p.find(']')?;
        let inner: Vec<char> = p[1..end].chars().collect();
        if inner.len() == 3 && inner[1] == '-' {
            (CharClass::Range(inner[0], inner[2]), &p[end + 1..])
        } else {
            return None;
        }
    } else {
        return None;
    };
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    Some((class, a.trim().parse().ok()?, b.trim().parse().ok()?))
}
