//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` with probability 1/2, else `None` (upstream default weight).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}
impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
