//! The case runner: deterministic seed schedule, regression-corpus
//! replay and persistence, reject accounting, and failure reporting.

use std::cell::RefCell;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ------------------------------------------------------------------ rng

/// A small, fast, deterministic RNG (splitmix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; the whole case derives from this one seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.below128(bound as u128) as u64
    }

    /// Uniform value in `[0, bound)` for 128-bit bounds (debiased by
    /// rejection).
    pub fn below128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        if bound.is_power_of_two() {
            return self.next_u128() & (bound - 1);
        }
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let v = self.next_u128();
            if v < zone {
                return v % bound;
            }
        }
    }
}

// --------------------------------------------------------------- config

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up if this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------- error

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

// --------------------------------------------------------------- runner

/// FNV-1a, used to derive the per-test base seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn case_seed(base: u64, idx: u64) -> u64 {
    // splitmix the pair so consecutive cases are uncorrelated.
    let mut z = base ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn corpus_path(tests_dir: &str, source_file: &str) -> std::path::PathBuf {
    let base = std::path::Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    std::path::Path::new(tests_dir).join(format!("{base}.proptest-regressions"))
}

fn load_corpus(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex = rest.split_whitespace().next()?;
            u64::from_str_radix(hex.get(0..16)?, 16).ok()
        })
        .collect()
}

fn persist_seed(path: &std::path::Path, seed: u64, test_name: &str, desc: &str) {
    if load_corpus(path).contains(&seed) {
        return;
    }
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let mut short: String = desc.chars().take(160).collect();
    short.retain(|c| c != '\n' && c != '\r');
    let _ = writeln!(f, "cc {seed:016x}{:048x} # {test_name}: {short}", 0);
}

/// Execute one property test: replay the persisted corpus, then run
/// `cfg.cases` fresh cases from the deterministic schedule.
pub fn run(
    tests_dir: &str,
    source_file: &str,
    test_name: &str,
    cfg: &ProptestConfig,
    desc: &Rc<RefCell<String>>,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let path = corpus_path(tests_dir, source_file);
    let base = match std::env::var("PROPTEST_RNG_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(&s)),
        Err(_) => fnv1a(test_name),
    };
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(cfg.cases);

    let fail = |seed: u64, origin: &str, msg: String, desc: &str, persist: bool| -> ! {
        if persist {
            persist_seed(&path, seed, test_name, desc);
        }
        panic!(
            "proptest case failed ({origin}, seed {seed:#018x}): {msg}\n\
             minimal-known input: {desc}\n\
             replay: PROPTEST_RNG_SEED={seed} PROPTEST_CASES=1 (corpus: {})",
            path.display()
        );
    };

    // 1. Persisted regressions first.
    for seed in load_corpus(&path) {
        let mut rng = TestRng::new(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                let d = desc.borrow().clone();
                fail(seed, "persisted regression", msg, &d, false)
            }
            Err(p) => {
                let d = desc.borrow().clone();
                fail(seed, "persisted regression", panic_msg(p), &d, false)
            }
        }
    }

    // 2. Fresh cases.
    let mut rejects: u32 = 0;
    let mut idx: u64 = 0;
    let mut passed: u32 = 0;
    while passed < cases {
        let seed = case_seed(base, idx);
        idx += 1;
        let mut rng = TestRng::new(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!("proptest: too many prop_assume! rejections ({rejects}) in {test_name}");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                let d = desc.borrow().clone();
                fail(seed, "new case", msg, &d, true)
            }
            Err(p) => {
                let d = desc.borrow().clone();
                fail(seed, "new case", panic_msg(p), &d, true)
            }
        }
    }
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_below_is_in_range() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_roundtrip() {
        let dir = std::env::temp_dir().join("proptest-vendor-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sample.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        persist_seed(&path, 0xDEAD_BEEF, "t", "x = 3;");
        persist_seed(&path, 0xDEAD_BEEF, "t", "x = 3;"); // dedup
        persist_seed(&path, 0x1234, "t", "y = 9;");
        assert_eq!(load_corpus(&path), vec![0xDEAD_BEEF, 0x1234]);
        let _ = std::fs::remove_file(&path);
    }
}
