//! A self-contained property-testing library exposing the subset of the
//! `proptest` API this workspace uses. Vendored so the property suites
//! compile and *run* offline.
//!
//! Semantics: each `proptest!` test runs `cases` random cases from a
//! deterministic per-test seed schedule. Failures persist their seed to
//! the sibling `<file>.proptest-regressions` corpus (same location and
//! `cc <hex>` line format as upstream proptest); persisted seeds are
//! replayed before new cases on every run. Unlike upstream there is no
//! value-tree shrinking — the failure report instead carries the fully
//! generated inputs, and the deterministic seed makes the case
//! replayable as-is.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs (mirror of
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ------------------------------------------------------------- macros

/// Define property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __desc: ::std::rc::Rc<::std::cell::RefCell<String>> =
                    ::std::default::Default::default();
                let __desc_in = ::std::rc::Rc::clone(&__desc);
                let __strats = ($($strat,)+);
                let __case = move |__rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strats, __rng);
                    *__desc_in.borrow_mut() = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                $crate::test_runner::run(
                    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/"),
                    file!(),
                    stringify!($name),
                    &__cfg,
                    &__desc,
                    __case,
                );
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
