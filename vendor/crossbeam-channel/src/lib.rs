//! A self-contained MPMC channel implementing the subset of the
//! `crossbeam-channel` API this workspace uses. Vendored so the
//! workspace *runs* offline: the controller event loops, the OVSDB/P4
//! TCP services, and the chaos tests all move data through these
//! channels, so a typecheck-only stub is not enough.
//!
//! Implementation notes:
//!
//! * channels are a `Mutex<VecDeque>` + `Condvar` shared by all clones;
//!   "bounded" capacity is accepted but not enforced (every workload in
//!   this repo treats bounded channels as small mailboxes);
//! * `Select` is poll-based: it scans its registered receivers and
//!   parks briefly between scans. Latency is a few hundred
//!   microseconds, which is well inside what the tests and the chaos
//!   timing assumptions tolerate.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

/// The sending half of a channel. Clonable; the channel disconnects
/// when every sender is dropped.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Clonable (MPMC); the channel
/// disconnects for senders when every receiver is dropped.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] on an empty, disconnected
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing received.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}
impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}
impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel receive timed out")
    }
}
impl<T: fmt::Debug> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cond: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Create a "bounded" channel. Capacity is accepted for API parity but
/// not enforced; see the module docs.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.inner.state.lock().unwrap();
        s.senders -= 1;
        if s.senders == 0 {
            self.inner.cond.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.inner.state.lock().unwrap();
        s.receivers -= 1;
        if s.receivers == 0 {
            self.inner.cond.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send a message, failing if every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut s = self.inner.state.lock().unwrap();
        if s.receivers == 0 {
            return Err(SendError(msg));
        }
        s.queue.push_back(msg);
        self.inner.cond.notify_one();
        Ok(())
    }

    /// Non-blocking send (never full here, so this is [`Sender::send`]).
    pub fn try_send(&self, msg: T) -> Result<(), SendError<T>> {
        self.send(msg)
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = s.queue.pop_front() {
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self.inner.cond.wait(s).unwrap();
        }
    }

    /// Pop a buffered message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = self.inner.state.lock().unwrap();
        match s.queue.pop_front() {
            Some(v) => Ok(v),
            None if s.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Block until `deadline`.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = s.queue.pop_front() {
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.inner.cond.wait_timeout(s, deadline - now).unwrap();
            s = guard;
            if res.timed_out() && s.queue.is_empty() {
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Buffered message count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { r: self }
    }

    /// Iterator over currently-buffered messages only.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { r: self }
    }

    /// Whether a `recv` would return immediately (message buffered or
    /// channel disconnected). Used by [`Select`].
    fn recv_ready(&self) -> bool {
        let s = self.inner.state.lock().unwrap();
        !s.queue.is_empty() || s.senders == 0
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    r: &'a Receiver<T>,
}
impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.recv().ok()
    }
}

/// Non-blocking iterator over buffered messages.
pub struct TryIter<'a, T> {
    r: &'a Receiver<T>,
}
impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator.
pub struct IntoIter<T> {
    r: Receiver<T>,
}
impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.recv().ok()
    }
}
impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { r: self }
    }
}

/// Poll-based replacement for crossbeam's `Select`, covering the
/// receive-side API the controller event loops use.
pub struct Select<'a> {
    ready_fns: Vec<Box<dyn Fn() -> bool + 'a>>,
    /// Rotates the scan start so a busy low-index channel cannot starve
    /// the others.
    rotor: usize,
}

/// A selected operation: the index of a ready receiver.
pub struct SelectedOperation<'a> {
    index: usize,
    _m: std::marker::PhantomData<&'a ()>,
}

impl<'a> Select<'a> {
    /// An empty selector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Select<'a> {
        Select {
            ready_fns: Vec::new(),
            rotor: 0,
        }
    }

    /// Register a receive operation; returns its index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        self.ready_fns.push(Box::new(move || r.recv_ready()));
        self.ready_fns.len() - 1
    }

    /// Register a send operation; returns its index. Sends never block
    /// here (unbounded queues), so the operation is always ready.
    pub fn send<T>(&mut self, _s: &'a Sender<T>) -> usize {
        self.ready_fns.push(Box::new(|| true));
        self.ready_fns.len() - 1
    }

    /// Block until some registered operation is ready.
    pub fn select(&mut self) -> SelectedOperation<'a> {
        let index = self.wait_ready();
        SelectedOperation {
            index,
            _m: std::marker::PhantomData,
        }
    }

    /// Block until some registered operation is ready; returns its
    /// index.
    pub fn ready(&mut self) -> usize {
        self.wait_ready()
    }

    fn wait_ready(&mut self) -> usize {
        assert!(!self.ready_fns.is_empty(), "empty Select");
        loop {
            let n = self.ready_fns.len();
            for k in 0..n {
                let i = (self.rotor + k) % n;
                if (self.ready_fns[i])() {
                    self.rotor = (i + 1) % n;
                    return i;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl SelectedOperation<'_> {
    /// The index of the ready operation.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete a selected receive. The caller must pass the receiver
    /// registered at [`SelectedOperation::index`]; if another consumer
    /// raced us to the message, this falls back to a blocking receive
    /// (the workspace never shares a selected receiver across threads).
    pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
        match r.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            Err(TryRecvError::Empty) => r.recv(),
        }
    }

    /// Complete a selected send.
    pub fn send<T>(self, s: &Sender<T>, msg: T) -> Result<(), SendError<T>> {
        s.send(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // buffered survives disconnect
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn select_picks_ready_channel_and_disconnect() {
        let (tx1, rx1) = unbounded::<u8>();
        let (tx2, rx2) = unbounded::<u8>();
        tx2.send(42).unwrap();
        let mut sel = Select::new();
        let _i1 = sel.recv(&rx1);
        let i2 = sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), i2);
        assert_eq!(op.recv(&rx2), Ok(42));
        // Disconnect counts as ready and yields RecvError.
        drop(tx1);
        let mut sel = Select::new();
        let j1 = sel.recv(&rx1);
        let _j2 = sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), j1);
        assert_eq!(op.recv(&rx1), Err(RecvError));
        drop(tx2);
    }

    #[test]
    fn iterators_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![3]);
    }
}
