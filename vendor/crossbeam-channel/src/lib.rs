//! A self-contained MPMC channel implementing the subset of the
//! `crossbeam-channel` API this workspace uses. Vendored so the
//! workspace *runs* offline: the controller event loops, the OVSDB/P4
//! TCP services, and the chaos tests all move data through these
//! channels, so a typecheck-only stub is not enough.
//!
//! Implementation notes:
//!
//! * channels are a `Mutex<VecDeque>` + two `Condvar`s (receive-side
//!   and send-side) shared by all clones;
//! * `bounded(cap)` channels enforce their capacity: `send` blocks
//!   while the queue is full, `send_timeout`/`send_deadline` bound the
//!   wait, and `try_send` fails fast with [`TrySendError::Full`]. The
//!   shard runtime and the OVSDB monitor fan-out rely on this for
//!   backpressure — a stalled consumer must translate into blocked (or
//!   shed) producers, not unbounded memory growth;
//! * `Select` is poll-based: it scans its registered receivers and
//!   parks briefly between scans. Latency is a few hundred
//!   microseconds, which is well inside what the tests and the chaos
//!   timing assumptions tolerate.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Capacity for bounded channels; `None` means unbounded.
    cap: Option<usize>,
    /// Signalled when a message is pushed (or the channel disconnects):
    /// wakes blocked receivers.
    cond: Condvar,
    /// Signalled when a message is popped (or the channel disconnects):
    /// wakes senders blocked on a full bounded queue.
    send_cond: Condvar,
}

/// The sending half of a channel. Clonable; the channel disconnects
/// when every sender is dropped.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Clonable (MPMC); the channel
/// disconnects for senders when every receiver is dropped.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`]; carries the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity right now.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`]; carries the unsent
/// message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The timeout elapsed with the bounded queue still full.
    Timeout(T),
    /// All receivers dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] on an empty, disconnected
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing received.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}
impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}
impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("channel send timed out"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}
impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}
impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel receive timed out")
    }
}
impl<T: fmt::Debug> std::error::Error for SendError<T> {}
impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}
impl<T: fmt::Debug> std::error::Error for SendTimeoutError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}

impl<T> TrySendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True for the [`TrySendError::Full`] case.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> SendTimeoutError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Disconnected(v) => v,
        }
    }

    /// True for the [`SendTimeoutError::Timeout`] case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SendTimeoutError::Timeout(_))
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        cond: Condvar::new(),
        send_cond: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded channel: at most `cap` messages buffered. A full
/// queue blocks `send`, fails `try_send` with [`TrySendError::Full`],
/// and bounds `send_timeout` waits. A zero capacity is rounded up to 1
/// (this implementation has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.inner.state.lock().unwrap();
        s.senders -= 1;
        if s.senders == 0 {
            self.inner.cond.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.inner.state.lock().unwrap();
        s.receivers -= 1;
        if s.receivers == 0 {
            self.inner.cond.notify_all();
            self.inner.send_cond.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send a message, failing if every receiver is gone. On a full
    /// bounded channel this blocks until space frees up.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if s.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.cap {
                Some(cap) if s.queue.len() >= cap => {
                    s = self.inner.send_cond.wait(s).unwrap();
                }
                _ => {
                    s.queue.push_back(msg);
                    self.inner.cond.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Non-blocking send: fails fast with [`TrySendError::Full`] on a
    /// full bounded channel instead of waiting.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut s = self.inner.state.lock().unwrap();
        if s.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.cap {
            if s.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        s.queue.push_back(msg);
        self.inner.cond.notify_one();
        Ok(())
    }

    /// Send with a bounded wait on a full channel.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        self.send_deadline(msg, Instant::now() + timeout)
    }

    /// Send, waiting until `deadline` at most for queue space.
    pub fn send_deadline(&self, msg: T, deadline: Instant) -> Result<(), SendTimeoutError<T>> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if s.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            let full = matches!(self.inner.cap, Some(cap) if s.queue.len() >= cap);
            if !full {
                s.queue.push_back(msg);
                self.inner.cond.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, _res) = self
                .inner
                .send_cond
                .wait_timeout(s, deadline - now)
                .unwrap();
            s = guard;
        }
    }

    /// Buffered message count (snapshot).
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.cap
    }

    /// Whether a `send` would complete without blocking (space free or
    /// channel disconnected). Used by [`Select`].
    fn send_ready(&self) -> bool {
        let s = self.inner.state.lock().unwrap();
        if s.receivers == 0 {
            return true;
        }
        match self.inner.cap {
            Some(cap) => s.queue.len() < cap,
            None => true,
        }
    }
}

impl<T> Receiver<T> {
    /// Pop under an already-held lock, waking one blocked sender.
    fn notify_pop(&self) {
        self.inner.send_cond.notify_one();
    }

    /// Block until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.notify_pop();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self.inner.cond.wait(s).unwrap();
        }
    }

    /// Pop a buffered message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = self.inner.state.lock().unwrap();
        match s.queue.pop_front() {
            Some(v) => {
                drop(s);
                self.notify_pop();
                Ok(v)
            }
            None if s.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Block until `deadline`.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut s = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.notify_pop();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.inner.cond.wait_timeout(s, deadline - now).unwrap();
            s = guard;
            if res.timed_out() && s.queue.is_empty() {
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Buffered message count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// The channel's capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.cap
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { r: self }
    }

    /// Iterator over currently-buffered messages only.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { r: self }
    }

    /// Whether a `recv` would return immediately (message buffered or
    /// channel disconnected). Used by [`Select`].
    fn recv_ready(&self) -> bool {
        let s = self.inner.state.lock().unwrap();
        !s.queue.is_empty() || s.senders == 0
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    r: &'a Receiver<T>,
}
impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.recv().ok()
    }
}

/// Non-blocking iterator over buffered messages.
pub struct TryIter<'a, T> {
    r: &'a Receiver<T>,
}
impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator.
pub struct IntoIter<T> {
    r: Receiver<T>,
}
impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.r.recv().ok()
    }
}
impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { r: self }
    }
}

/// Poll-based replacement for crossbeam's `Select`, covering the
/// receive-side API the controller event loops use.
pub struct Select<'a> {
    ready_fns: Vec<Box<dyn Fn() -> bool + 'a>>,
    /// Rotates the scan start so a busy low-index channel cannot starve
    /// the others.
    rotor: usize,
}

/// A selected operation: the index of a ready receiver.
pub struct SelectedOperation<'a> {
    index: usize,
    _m: std::marker::PhantomData<&'a ()>,
}

impl<'a> Select<'a> {
    /// An empty selector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Select<'a> {
        Select {
            ready_fns: Vec::new(),
            rotor: 0,
        }
    }

    /// Register a receive operation; returns its index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        self.ready_fns.push(Box::new(move || r.recv_ready()));
        self.ready_fns.len() - 1
    }

    /// Register a send operation; returns its index. Ready when the
    /// channel has queue space (or is disconnected).
    pub fn send<T>(&mut self, s: &'a Sender<T>) -> usize {
        self.ready_fns.push(Box::new(move || s.send_ready()));
        self.ready_fns.len() - 1
    }

    /// Block until some registered operation is ready.
    pub fn select(&mut self) -> SelectedOperation<'a> {
        let index = self.wait_ready();
        SelectedOperation {
            index,
            _m: std::marker::PhantomData,
        }
    }

    /// Block until some registered operation is ready; returns its
    /// index.
    pub fn ready(&mut self) -> usize {
        self.wait_ready()
    }

    fn wait_ready(&mut self) -> usize {
        assert!(!self.ready_fns.is_empty(), "empty Select");
        loop {
            let n = self.ready_fns.len();
            for k in 0..n {
                let i = (self.rotor + k) % n;
                if (self.ready_fns[i])() {
                    self.rotor = (i + 1) % n;
                    return i;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl SelectedOperation<'_> {
    /// The index of the ready operation.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete a selected receive. The caller must pass the receiver
    /// registered at [`SelectedOperation::index`]; if another consumer
    /// raced us to the message, this falls back to a blocking receive
    /// (the workspace never shares a selected receiver across threads).
    pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
        match r.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            Err(TryRecvError::Empty) => r.recv(),
        }
    }

    /// Complete a selected send.
    pub fn send<T>(self, s: &Sender<T>, msg: T) -> Result<(), SendError<T>> {
        s.send(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // buffered survives disconnect
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_fails_fast_when_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_send_timeout_and_unblock() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let err = tx.send_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(err.into_inner(), 2);
        // A pop frees space for a blocked send_timeout.
        let tx2 = tx.clone();
        let t = thread::spawn(move || tx2.send_timeout(2, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        // Receiver drop unblocks a waiting sender with Disconnected.
        tx.send(3).unwrap();
        let tx3 = tx.clone();
        let t = thread::spawn(move || tx3.send_timeout(4, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(matches!(
            t.join().unwrap(),
            Err(SendTimeoutError::Disconnected(4))
        ));
    }

    #[test]
    fn bounded_blocking_send_applies_backpressure() {
        let (tx, rx) = bounded(4);
        let t = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        // The producer cannot run ahead: depth stays within capacity.
        let mut got = Vec::new();
        loop {
            assert!(rx.len() <= 4);
            match rx.recv() {
                Ok(v) => got.push(v),
                Err(_) => break,
            }
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_is_reported() {
        let (tx, rx) = bounded::<u8>(3);
        assert_eq!(tx.capacity(), Some(3));
        assert_eq!(rx.capacity(), Some(3));
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(tx.capacity(), None);
        assert_eq!(rx.capacity(), None);
    }

    #[test]
    fn select_picks_ready_channel_and_disconnect() {
        let (tx1, rx1) = unbounded::<u8>();
        let (tx2, rx2) = unbounded::<u8>();
        tx2.send(42).unwrap();
        let mut sel = Select::new();
        let _i1 = sel.recv(&rx1);
        let i2 = sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), i2);
        assert_eq!(op.recv(&rx2), Ok(42));
        // Disconnect counts as ready and yields RecvError.
        drop(tx1);
        let mut sel = Select::new();
        let j1 = sel.recv(&rx1);
        let _j2 = sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), j1);
        assert_eq!(op.recv(&rx1), Err(RecvError));
        drop(tx2);
    }

    #[test]
    fn iterators_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![3]);
    }
}
