//! A self-contained JSON library exposing the subset of the `serde_json`
//! API this workspace uses. Vendored so the workspace builds and *runs*
//! offline: the wire protocols (OVSDB JSON-RPC, the P4Runtime-style
//! control protocol) and the `json!`-driven tests need a real parser and
//! serializer, not a typecheck stub.
//!
//! Differences from upstream `serde_json`:
//! - no serde data model: instead of `Serialize`/`Deserialize`, the
//!   entry points are generic over the local [`ToJson`] / [`FromJson`]
//!   traits (implemented by `Value` itself and by workspace wire types);
//! - `Map` is ordered (BTreeMap) so serialization is deterministic.

mod parse;
mod ser;

use std::collections::BTreeMap;
use std::fmt;

pub use parse::from_str_value;

// ---------------------------------------------------------------- error

/// A JSON error (parse or convert).
pub struct Error(pub(crate) String);

impl Error {
    /// Construct an error from any message.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}
impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}
impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------- number

#[derive(Clone, Copy, Debug)]
enum N {
    Int(i64),
    UInt(u64),
    Float(f64),
}

/// A JSON number. Integers are kept exact; floats are `f64`.
#[derive(Clone, Copy, Debug)]
pub struct Number(N);

impl Number {
    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::Int(i) => Some(i),
            N::UInt(u) => i64::try_from(u).ok(),
            N::Float(f) => (f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64)
                .then_some(f as i64),
        }
    }
    /// The value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::Int(i) => u64::try_from(i).ok(),
            N::UInt(u) => Some(u),
            N::Float(f) => {
                (f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64).then_some(f as u64)
            }
        }
    }
    /// The value as `f64` (always available, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::Int(i) => i as f64,
            N::UInt(u) => u as f64,
            N::Float(f) => f,
        })
    }
    /// True if representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }
    /// True if representable as `u64`.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }
    /// True if stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
    /// An exact float wrapper (mirrors `serde_json::Number::from_f64`).
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::Float(f)))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::Int(a), N::Int(b)) => a == b,
            (N::UInt(a), N::UInt(b)) => a == b,
            (N::Int(a), N::UInt(b)) | (N::UInt(b), N::Int(a)) => a >= 0 && a as u64 == b,
            // Mixed int/float: compare numerically (both sides exact in f64
            // for every value this workspace produces).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::Int(i) => write!(f, "{i}"),
            N::UInt(u) => write!(f, "{u}"),
            N::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number { Number(N::Int(v as i64)) }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from(v)) }
        }
    )*}
}
macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                match i64::try_from(v) {
                    Ok(i) => Number(N::Int(i)),
                    Err(_) => Number(N::UInt(v as u64)),
                }
            }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from(v)) }
        }
    )*}
}
number_from_signed!(i8, i16, i32, i64, isize);
number_from_unsigned!(u8, u16, u32, u64, usize);

impl From<f32> for Number {
    fn from(v: f32) -> Number {
        Number(N::Float(v as f64))
    }
}
impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number(N::Float(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from(v))
    }
}

// ------------------------------------------------------------------ map

/// An ordered `String -> Value` map (deterministic iteration and
/// serialization order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K, V> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }
    /// Capacity is ignored (ordered map); provided for API parity.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }
    /// Insert, returning the previous value.
    pub fn insert(&mut self, k: String, v: Value) -> Option<Value> {
        self.inner.insert(k, v)
    }
    /// Remove by key.
    pub fn remove(&mut self, k: &str) -> Option<Value> {
        self.inner.remove(k)
    }
    /// Borrow by key.
    pub fn get(&self, k: &str) -> Option<&Value> {
        self.inner.get(k)
    }
    /// Mutably borrow by key.
    pub fn get_mut(&mut self, k: &str) -> Option<&mut Value> {
        self.inner.get_mut(k)
    }
    /// Key presence.
    pub fn contains_key(&self, k: &str) -> bool {
        self.inner.contains_key(k)
    }
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
    /// Remove all entries.
    pub fn clear(&mut self) {
        self.inner.clear()
    }
    /// Iterate keys.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }
    /// Iterate values.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
    /// Iterate values mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Value> {
        self.inner.values_mut()
    }
    /// Iterate entries.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }
    /// Iterate entries mutably.
    pub fn iter_mut(&mut self) -> std::collections::btree_map::IterMut<'_, String, Value> {
        self.inner.iter_mut()
    }
    /// Entry API.
    pub fn entry(&mut self, k: String) -> std::collections::btree_map::Entry<'_, String, Value> {
        self.inner.entry(k)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}
impl Extend<(String, Value)> for Map<String, Value> {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}
impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}
impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}
impl std::ops::Index<&str> for Map<String, Value> {
    type Output = Value;
    fn index(&self, k: &str) -> &Value {
        self.inner.get(k).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------- value

static NULL: Value = Value::Null;

/// A JSON value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// Borrow as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// Borrow as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// As `i64` if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    /// As `u64` if an in-range non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    /// As `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// Mutably borrow as array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// Mutably borrow as object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// Variant tests.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    /// True for `Bool`.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }
    /// True for `Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    /// True for `String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    /// True for `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }
    /// True for `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Index by `usize` (arrays) or `&str` (objects).
    pub fn get<I: index::Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
    /// Mutable variant of [`Value::get`].
    pub fn get_mut<I: index::Index>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }
    /// Replace with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::replace(self, Value::Null)
    }
    /// JSON Pointer (RFC 6901) lookup.
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        pointer
            .split('/')
            .skip(1)
            .map(|t| t.replace("~1", "/").replace("~0", "~"))
            .try_fold(self, |v, token| match v {
                Value::Object(m) => m.get(&token),
                Value::Array(a) => token.parse::<usize>().ok().and_then(|i| a.get(i)),
                _ => None,
            })
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<Number> for Value {
    fn from(v: Number) -> Value {
        Value::Number(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}
impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}
impl<T> From<&[T]> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}
impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => Value::from(x),
            None => Value::Null,
        }
    }
}
/// Blanket reference conversion: `json!` interpolates expressions by
/// reference (upstream `json!` semantics — interpolation must not move),
/// so every owned conversion gets a borrowing counterpart.
impl<'a, T: Clone> From<&'a T> for Value
where
    Value: From<T>,
{
    fn from(v: &'a T) -> Value {
        Value::from(v.clone())
    }
}
impl<T> FromIterator<T> for Value
where
    Value: From<T>,
{
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Value::from).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::to_compact_string(self))
    }
}

/// Index helpers (mirror of `serde_json::value::Index`).
pub mod index {
    use super::Value;

    /// Types usable as `Value` indices.
    pub trait Index {
        /// Shared lookup.
        fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
        /// Mutable lookup.
        fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    }
    impl Index for usize {
        fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
            v.as_array().and_then(|a| a.get(*self))
        }
        fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
            v.as_array_mut().and_then(|a| a.get_mut(*self))
        }
    }
    impl Index for str {
        fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
            v.as_object().and_then(|m| m.get(self))
        }
        fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
            v.as_object_mut().and_then(|m| m.get_mut(self))
        }
    }
    impl Index for String {
        fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
            self.as_str().index_into(v)
        }
        fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
            self.as_str().index_into_mut(v)
        }
    }
    impl<T: Index + ?Sized> Index for &T {
        fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
            (**self).index_into(v)
        }
        fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
            (**self).index_into_mut(v)
        }
    }
}

impl<I: index::Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}
impl<I: index::Index> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index
            .index_into_mut(self)
            .expect("cannot index into this Value")
    }
}

// ------------------------------------------------------ codec traits

/// Conversion into a JSON tree — the serialization half of the local
/// stand-in for serde's data model. `to_string`/`to_vec` accept any
/// `ToJson` type.
pub trait ToJson {
    /// The JSON representation.
    fn to_json_value(&self) -> Value;
}

/// Conversion out of a JSON tree — the deserialization half.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self>;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl FromJson for Value {
    fn from_json_value(v: &Value) -> Result<Value> {
        Ok(v.clone())
    }
}

// --------------------------------------------------------- entry points

/// Parse JSON text into any [`FromJson`] type.
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    T::from_json_value(&parse::from_str_value(s)?)
}
/// Parse JSON bytes into any [`FromJson`] type.
pub fn from_slice<T: FromJson>(v: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(v).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}
/// Convert a JSON tree into a typed value.
pub fn from_value<T: FromJson>(v: Value) -> Result<T> {
    T::from_json_value(&v)
}
/// Serialize compactly.
pub fn to_string<T: ?Sized + ToJson>(value: &T) -> Result<String> {
    Ok(ser::to_compact_string(&value.to_json_value()))
}
/// Serialize with two-space indentation.
pub fn to_string_pretty<T: ?Sized + ToJson>(value: &T) -> Result<String> {
    Ok(ser::to_pretty_string(&value.to_json_value()))
}
/// Serialize compactly to bytes.
pub fn to_vec<T: ?Sized + ToJson>(value: &T) -> Result<Vec<u8>> {
    Ok(ser::to_compact_string(&value.to_json_value()).into_bytes())
}
/// Convert a typed value into a JSON tree.
pub fn to_value<T: ToJson>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

// ----------------------------------------------------------- json! macro

/// Construct a [`Value`] from a JSON literal with interpolated Rust
/// expressions (same surface as `serde_json::json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_internal_array!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_internal_object!(object () ($($tt)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from(&$other) };
}

/// Internal: array element muncher for [`json!`]. Accumulates parsed
/// elements in the leading `[...]` group.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    ([$($elems:expr),*]) => { vec![$($elems),*] };
    ([$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(null)] $($($rest)*)?)
    };
    ([$($elems:expr),*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(true)] $($($rest)*)?)
    };
    ([$($elems:expr),*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!(false)] $($($rest)*)?)
    };
    ([$($elems:expr),*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!([ $($inner)* ])] $($($rest)*)?)
    };
    ([$($elems:expr),*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::json!({ $($inner)* })] $($($rest)*)?)
    };
    ([$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([$($elems,)* $crate::Value::from(&$next)] $($($rest)*)?)
    };
}

/// Internal: object entry muncher for [`json!`]. The second group
/// accumulates key tokens until the `:` is found.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Done.
    ($object:ident () ()) => {};
    // Trailing comma.
    ($object:ident () (,)) => {};
    // key tokens complete: value is null/true/false/array/object/expr.
    ($object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json!(null));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: true $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json!(true));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: false $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json!(false));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json!([ $($inner)* ]));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json!({ $($inner)* }));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).into(), $crate::Value::from(&$value));
        $crate::json_internal_object!($object () ($($rest)*));
    };
    ($object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert(($($key)+).into(), $crate::Value::from(&$value));
    };
    // Accumulate one key token and continue.
    ($object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal_object!($object ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_real_values() {
        let vs = vec![11u16, 12];
        let name = String::from("p1");
        let v = json!([
            {"op": "insert", "table": "Port",
             "row": {"id": 3, "name": name, "up": true, "trunks": ["set", vs]}},
            null,
            [1, 2.5, -4],
        ]);
        assert_eq!(v[0]["op"], Value::from("insert"));
        assert_eq!(v[0]["row"]["id"].as_i64(), Some(3));
        assert_eq!(v[0]["row"]["trunks"][0].as_str(), Some("set"));
        assert_eq!(v[0]["row"]["trunks"][1][1].as_u64(), Some(12));
        assert!(v[1].is_null());
        assert_eq!(v[2][1].as_f64(), Some(2.5));
        assert_eq!(v[2][2].as_i64(), Some(-4));
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({"a": [1, "two", {"three": false}], "b": null, "c": "\"\\\n\u{1F600}"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_standard_forms() {
        let v: Value = from_str(r#"{"x": [0, -1.5e3, "aéb", {}, []], "y": true}"#).unwrap();
        assert_eq!(v["x"][1].as_f64(), Some(-1500.0));
        assert_eq!(v["x"][2].as_str(), Some("aéb"));
        assert!(from_str::<Value>("{bad").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn number_fidelity() {
        let v: Value = from_str("[9223372036854775807, 18446744073709551615]").unwrap();
        assert_eq!(v[0].as_i64(), Some(i64::MAX));
        assert_eq!(v[1].as_u64(), Some(u64::MAX));
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[9223372036854775807,18446744073709551615]");
    }

    #[test]
    fn pointer_lookup() {
        let v = json!({"a": {"b": [10, 20]}});
        assert_eq!(v.pointer("/a/b/1").and_then(Value::as_i64), Some(20));
        assert_eq!(v.pointer("/a/x"), None);
    }
}
