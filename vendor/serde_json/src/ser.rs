//! JSON serialization: compact and pretty writers with RFC 8259 string
//! escaping.

use crate::Value;
use std::fmt::Write;

/// Serialize compactly (no whitespace).
pub fn to_compact_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

/// Serialize with two-space indentation.
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, e);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, e);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, e, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_pretty(out, e, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
