//! Recursive-descent JSON parser (RFC 8259). Strict: rejects trailing
//! garbage, trailing commas, and unescaped control characters.

use crate::{Error, Map, Number, Result, Value};

/// Parse a complete JSON document into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last hex digit;
                            // skip the trailing increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so it is valid;
                    // copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number::from(f))),
            _ => Err(self.err("invalid number")),
        }
    }
}
