//! Typecheck stub for `serde`. The workspace's wire formats go through
//! the vendored `serde_json` crate's own `ToJson`/`FromJson` traits; no
//! code here is ever invoked. The crate exists so `serde = { version =
//! "1", features = ["derive"] }` dependency edges resolve offline.
