//! A self-contained benchmark harness implementing the subset of the
//! Criterion API this workspace uses: benchmark groups, per-input
//! benchmarks, timed closures, and a plain-text report.
//!
//! Statistics are deliberately simple — a fixed warm-up, `sample_size`
//! timed samples of an adaptively-chosen iteration count, and a
//! median/mean/min/max summary — because the workspace's EXPERIMENTS.md
//! compares *shapes*, not absolute confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare benchmark id with no function name.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    /// Total time spent in the measured closure across `iters` runs.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording the total elapsed
    /// wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `routine`, passing it `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.run(&mut |b| routine(b, input));
        self.report(&id.to_string(), &samples);
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.run(&mut routine);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Collect per-iteration times: warm up, pick an iteration count
    /// aiming at ~10ms per sample (min 1), then take `sample_size`
    /// samples.
    fn run<F: FnMut(&mut Bencher)>(&self, routine: &mut F) -> Vec<Duration> {
        // Warm-up and calibration in one: time a single iteration.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        routine(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters,
            };
            routine(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{}/{:<40} median {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
            self.name,
            id,
            median,
            min,
            max,
            sorted.len()
        );
        let _ = &self.criterion; // group config lives on the parent
    }

    /// Criterion requires an explicit `finish`; ours is a no-op.
    pub fn finish(self) {}
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh manager with default configuration.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("base", routine);
        group.finish();
        self
    }

    /// Criterion's final-summary hook; ours is a no-op.
    pub fn final_summary(&mut self) {}
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark entry point, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 7), &7u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            });
        });
        g.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
