//! Vendored `bytes` subset: cheaply-clonable immutable [`Bytes`], a
//! growable [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] traits —
//! exactly the surface the workspace's frame codecs use. Multi-byte
//! integers are big-endian, as on the wire.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply-clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Wrap a static slice (copied; the zero-copy optimization of the
    /// real crate is irrelevant at this scale).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }

    /// Append from a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Copy the next `n` bytes out as [`Bytes`], consuming them.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        let rest = self.0[n..].to_vec();
        self.0 = Arc::new(rest);
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(7);
        b.put_u16(0x8100);
        b.put_u8(9);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u32(), 7);
        assert_eq!(r.get_u16(), 0x8100);
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.copy_to_bytes(r.remaining()).as_ref(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_semantics() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.to_vec(), b"abc".to_vec());
        let f = BytesMut::with_capacity(2).freeze();
        assert!(f.is_empty());
    }
}
