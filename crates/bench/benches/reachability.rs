//! E4 criterion bench: single edge insert+delete against preloaded graphs
//! of growing size, vs recomputing the labeling from scratch.

use bench::{random_graph, reachability_engine, REACHABILITY_PROGRAM};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlog::{Engine, Transaction, Value};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_reachability");
    group.sample_size(10);
    for n in [100u64, 1000, 5000] {
        let m = n * 3;
        group.bench_with_input(BenchmarkId::new("incremental_edge_flap", n), &n, |b, &n| {
            let mut engine = reachability_engine(n, m, 42);
            b.iter(|| {
                let mut txn = Transaction::new();
                txn.insert("Edge", vec![Value::Int(1), Value::Int(2)]);
                engine.commit(txn).unwrap();
                let mut txn = Transaction::new();
                txn.delete("Edge", vec![Value::Int(1), Value::Int(2)]);
                black_box(engine.commit(txn).unwrap());
            });
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", n), &n, |b, &n| {
            let edges = random_graph(n, m, 42);
            b.iter(|| {
                let mut engine = Engine::from_source(REACHABILITY_PROGRAM).unwrap();
                let mut txn = Transaction::new();
                txn.insert("GivenLabel", vec![Value::Int(0), Value::Int(1)]);
                for (a, bb) in &edges {
                    txn.insert("Edge", vec![Value::Int(*a), Value::Int(*bb)]);
                }
                black_box(engine.commit(txn).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
