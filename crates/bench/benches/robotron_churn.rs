//! E6 criterion bench: one small model change against preloaded
//! Robotron-style models of growing size.

use bench::{robotron_engine, RobotronScale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddlog::{Transaction, Value};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_robotron_change");
    group.sample_size(20);
    for devices in [100u64, 1000, 4000] {
        let scale = RobotronScale {
            devices,
            ifaces_per_device: 8,
        };
        group.bench_with_input(BenchmarkId::new("one_change", devices), &devices, |b, _| {
            let mut engine = robotron_engine(scale, 11);
            b.iter(|| {
                let mut txn = Transaction::new();
                txn.delete(
                    "Interface",
                    vec![Value::Int(5), Value::Int(1), Value::Int(100)],
                );
                txn.insert(
                    "Interface",
                    vec![Value::Int(5), Value::Int(1), Value::Int(100)],
                );
                black_box(engine.commit(txn).unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
