//! E1 criterion bench: time to regenerate the full OpenFlow program as
//! features accumulate (the compilation burden that grows alongside the
//! Fig. 3 fragment counts).

use baselines::ofgen::{all_features, FlowProgram, NetModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_fragment_generation");
    group.sample_size(30);
    let net = NetModel::sized(256);
    for k in [3usize, 7, 11] {
        group.bench_with_input(BenchmarkId::new("emit_features", k), &k, |b, &k| {
            let features = all_features();
            b.iter(|| {
                let mut prog = FlowProgram::default();
                for f in &features[..k] {
                    f.emit(&net, &mut prog);
                }
                black_box(prog.flows.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
