//! E5 criterion bench: the load-balancer cold-start + delete-all worst
//! case, incremental engine vs hand-written controller.

use baselines::lb::{run_ddlog, run_handwritten};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_lb_worstcase");
    group.sample_size(10);
    for (lbs, backends) in [(20usize, 50usize), (50, 100)] {
        let id = format!("{lbs}x{backends}");
        group.bench_with_input(BenchmarkId::new("ddlog_engine", &id), &(), |b, _| {
            b.iter(|| black_box(run_ddlog(lbs, backends)));
        });
        group.bench_with_input(BenchmarkId::new("handwritten", &id), &(), |b, _| {
            b.iter(|| black_box(run_handwritten(lbs, backends)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
