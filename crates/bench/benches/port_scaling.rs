//! E2 criterion bench: per-port-add latency of the full Nerpa stack at
//! different preloaded network sizes, vs the full-recompute baseline.
//! The incremental series should be flat across sizes; the baseline grows.

use baselines::{FullRecompute, PortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snvs::{PortMode, SnvsStack};
use std::hint::black_box;

fn preloaded_stack(n: u16) -> SnvsStack {
    let mut stack = SnvsStack::new(1).expect("stack");
    for i in 0..n {
        stack
            .add_port(i, PortMode::Access(10 + (i % 64)), None)
            .unwrap();
    }
    stack
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_port_add");
    group.sample_size(20);
    for n in [100u16, 1000, 2000] {
        group.bench_with_input(BenchmarkId::new("nerpa_incremental", n), &n, |b, &n| {
            let mut stack = preloaded_stack(n);
            let mut next = n;
            b.iter(|| {
                // Add + remove one port so state stays at size n.
                stack.add_port(next, PortMode::Access(10), None).unwrap();
                stack.remove_port(next).unwrap();
                next = if next >= u16::MAX - 2 { n } else { next };
                black_box(&stack);
            });
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", n), &n, |b, &n| {
            let mut baseline = FullRecompute::new();
            let mut ports: Vec<PortConfig> = (0..n)
                .map(|i| PortConfig::access(i, 10 + (i % 64)))
                .collect();
            baseline.reconcile(&ports, &[]);
            b.iter(|| {
                ports.push(PortConfig::access(n, 10));
                baseline.reconcile(&ports, &[]);
                ports.pop();
                black_box(baseline.reconcile(&ports, &[]));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
