//! E7 criterion bench: one event through the hand-written incremental
//! engine vs one reconcile of the full-recompute controller, at growing
//! network sizes.

use baselines::{Event, FullRecompute, HandwrittenIncremental, PortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_handwritten_ip");
    group.sample_size(20);
    for n in [100u16, 1000, 4000] {
        group.bench_with_input(BenchmarkId::new("incremental_event", n), &n, |b, &n| {
            let mut inc = HandwrittenIncremental::new();
            for i in 0..n {
                inc.handle(Event::PortUpserted(PortConfig::access(i, 10 + (i % 64))));
            }
            b.iter(|| {
                inc.handle(Event::PortUpserted(PortConfig::access(n, 10)));
                black_box(inc.handle(Event::PortRemoved(n)));
            });
        });
        group.bench_with_input(BenchmarkId::new("full_reconcile", n), &n, |b, &n| {
            let mut full = FullRecompute::new();
            let mut ports: Vec<PortConfig> = (0..n)
                .map(|i| PortConfig::access(i, 10 + (i % 64)))
                .collect();
            full.reconcile(&ports, &[]);
            b.iter(|| {
                ports.push(PortConfig::access(n, 10));
                full.reconcile(&ports, &[]);
                ports.pop();
                black_box(full.reconcile(&ports, &[]));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
