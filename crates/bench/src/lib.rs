//! Shared workload generators and reporting helpers for the experiment
//! harness. Each experiment (E1–E8, see DESIGN.md) has a report binary
//! in `src/bin/` and, where timing matters, a Criterion bench in
//! `benches/`.
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's introductory reachability-labeling program (§1).
pub const REACHABILITY_PROGRAM: &str = "
input relation GivenLabel(n: bigint, l: bigint)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, l: bigint)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
";

/// A deterministic random digraph: `m` edges over `n` nodes.
pub fn random_graph(n: u64, m: u64, seed: u64) -> Vec<(i128, i128)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let a = rng.random_range(0..n) as i128;
        let b = rng.random_range(0..n) as i128;
        edges.push((a, b));
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Build a reachability engine preloaded with a random graph and one
/// labeled root.
pub fn reachability_engine(n: u64, m: u64, seed: u64) -> ddlog::Engine {
    let mut engine = ddlog::Engine::from_source(REACHABILITY_PROGRAM).expect("program");
    let mut txn = ddlog::Transaction::new();
    txn.insert(
        "GivenLabel",
        vec![ddlog::Value::Int(0), ddlog::Value::Int(1)],
    );
    for (a, b) in random_graph(n, m, seed) {
        txn.insert("Edge", vec![ddlog::Value::Int(a), ddlog::Value::Int(b)]);
    }
    engine.commit(txn).expect("preload");
    engine
}

/// The Robotron-style network model (§2.1): devices, interfaces, links,
/// and BGP policies, from which per-device configs are derived.
pub const ROBOTRON_PROGRAM: &str = "
input relation Device(dev: bigint, role: string, pod: bigint)
input relation Interface(dev: bigint, iface: bigint, speed: bigint)
input relation CircuitLink(a_dev: bigint, a_if: bigint, b_dev: bigint, b_if: bigint)
input relation BgpPolicy(pod: bigint, policy: string)

output relation IfaceConfig(dev: bigint, iface: bigint, mtu: bigint, desc: string)
output relation BgpSession(a_dev: bigint, b_dev: bigint, policy: string)

IfaceConfig(d, i, 9000, \"role:\" ++ role) :-
    Device(d, role, _), Interface(d, i, _).
BgpSession(a, b, pol) :-
    CircuitLink(a, _, b, _),
    Device(a, _, pod),
    BgpPolicy(pod, pol).
";

/// Sizes for the Robotron model.
#[derive(Debug, Clone, Copy)]
pub struct RobotronScale {
    /// Number of devices.
    pub devices: u64,
    /// Interfaces per device.
    pub ifaces_per_device: u64,
}

/// Build a Robotron engine preloaded at the given scale.
pub fn robotron_engine(scale: RobotronScale, seed: u64) -> ddlog::Engine {
    use ddlog::Value::{Int, Str};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = ddlog::Engine::from_source(ROBOTRON_PROGRAM).expect("program");
    let mut txn = ddlog::Transaction::new();
    for d in 0..scale.devices {
        let role = if d % 10 == 0 { "spine" } else { "rack" };
        txn.insert(
            "Device",
            vec![Int(d as i128), Str(role.into()), Int((d % 16) as i128)],
        );
        for i in 0..scale.ifaces_per_device {
            txn.insert("Interface", vec![Int(d as i128), Int(i as i128), Int(100)]);
        }
    }
    for pod in 0..16 {
        txn.insert("BgpPolicy", vec![Int(pod), Str("default".into())]);
    }
    // A sparse link mesh.
    for _ in 0..scale.devices {
        let a = rng.random_range(0..scale.devices) as i128;
        let b = rng.random_range(0..scale.devices) as i128;
        txn.insert("CircuitLink", vec![Int(a), Int(0), Int(b), Int(0)]);
    }
    engine.commit(txn).expect("preload");
    engine
}

/// One day of Robotron churn: ~50 small model changes (§2.1: "more than
/// 50 lines change across models" daily). Returns the number of changed
/// input rows.
pub fn robotron_daily_churn(engine: &mut ddlog::Engine, scale: RobotronScale, day: u64) -> usize {
    use ddlog::Value::Int;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + day);
    let mut changed = 0;
    for _ in 0..50 {
        let mut txn = ddlog::Transaction::new();
        let d = rng.random_range(0..scale.devices) as i128;
        let i = rng.random_range(0..scale.ifaces_per_device) as i128;
        // A device attribute flaps: remove + re-add an interface (two
        // model lines), the typical small change.
        txn.delete("Interface", vec![Int(d), Int(i), Int(100)]);
        txn.insert("Interface", vec![Int(d), Int(i), Int(100)]);
        changed += 2;
        engine.commit(txn).expect("churn");
    }
    changed
}

/// One measured entry of a `BENCH_*.json` report: a stable name, the
/// median wall time per operation, and the deterministic dataflow work
/// per operation (tuples processed per commit, from the engine's
/// [`ddlog::WorkProfile`]). Absolute wall time is informational —
/// regression gating keys on `tuples_per_op`, which is reproducible
/// across machines — but an entry may additionally declare a *relative*
/// wall budget against another entry in the same report via `wall_ref` +
/// `max_wall_ratio`. Ratios between entries measured in the same process
/// on the same machine are machine-independent, so `compare` enforces
/// them unconditionally (no `--enforce-time` needed). This is how the
/// fig3 scaling cliff is pinned: `reachability_churn/n=20000` must stay
/// within 2x the wall time of `reachability_churn/n=200`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable entry name, identical between `--quick` and full runs.
    pub name: String,
    /// Median wall time per operation, nanoseconds.
    pub median_ns_per_op: u64,
    /// Median dataflow tuples processed per operation.
    pub tuples_per_op: u64,
    /// Name of the entry (same report) this entry's wall time is
    /// budgeted against, if any.
    pub wall_ref: Option<String>,
    /// Maximum allowed `median_ns_per_op` ratio vs the `wall_ref` entry.
    pub max_wall_ratio: Option<f64>,
}

impl BenchEntry {
    /// An entry with no relative wall budget.
    pub fn new(name: &str, median_ns_per_op: u64, tuples_per_op: u64) -> Self {
        BenchEntry {
            name: name.to_string(),
            median_ns_per_op,
            tuples_per_op,
            wall_ref: None,
            max_wall_ratio: None,
        }
    }

    /// Attach a relative wall budget: this entry's wall/op must stay
    /// within `ratio` times that of the named reference entry.
    pub fn with_wall_budget(mut self, wall_ref: &str, ratio: f64) -> Self {
        self.wall_ref = Some(wall_ref.to_string());
        self.max_wall_ratio = Some(ratio);
        self
    }
}

/// Median of an unsorted sample (0 for an empty one).
pub fn median(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Write a `BENCH_*.json` report.
pub fn write_bench_json(
    path: &str,
    bench: &str,
    entries: &[BenchEntry],
) -> Result<(), std::io::Error> {
    let entries: Vec<serde_json::Value> = entries
        .iter()
        .map(|e| {
            let mut v = serde_json::json!({
                "name": e.name,
                "median_ns_per_op": e.median_ns_per_op,
                "tuples_per_op": e.tuples_per_op,
            });
            if let (Some(wall_ref), Some(ratio)) = (&e.wall_ref, e.max_wall_ratio) {
                let obj = v.as_object_mut().expect("entry is an object");
                obj.insert("wall_ref".into(), serde_json::json!(wall_ref));
                obj.insert("max_wall_ratio".into(), serde_json::json!(ratio));
            }
            v
        })
        .collect();
    let doc = serde_json::json!({ "bench": bench, "entries": entries });
    std::fs::write(path, format!("{:#}\n", doc))
}

/// Read a `BENCH_*.json` report back: `(bench_name, entries)`.
pub fn read_bench_json(path: &str) -> Result<(String, Vec<BenchEntry>), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    let bench = doc
        .get("bench")
        .and_then(|b| b.as_str())
        .ok_or_else(|| format!("{path}: missing \"bench\""))?
        .to_string();
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_array())
        .ok_or_else(|| format!("{path}: missing \"entries\""))?
        .iter()
        .map(|e| {
            Some(BenchEntry {
                name: e.get("name")?.as_str()?.to_string(),
                median_ns_per_op: e.get("median_ns_per_op")?.as_u64()?,
                tuples_per_op: e.get("tuples_per_op")?.as_u64()?,
                wall_ref: match e.get("wall_ref") {
                    Some(w) => Some(w.as_str()?.to_string()),
                    None => None,
                },
                max_wall_ratio: e.get("max_wall_ratio").and_then(|r| r.as_f64()),
            })
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| format!("{path}: malformed entry"))?;
    Ok((bench, entries))
}

/// Dump the process-wide telemetry registry when `NERPA_METRICS` is set
/// (`json` for JSON, anything else for Prometheus text). Every report
/// binary calls this last, so an experiment run can attach the raw
/// counters and histograms behind its table.
pub fn dump_metrics_snapshot() {
    let Ok(mode) = std::env::var("NERPA_METRICS") else {
        return;
    };
    let registry = &telemetry::global().registry;
    if mode == "json" {
        println!("\n{}", registry.render_json());
    } else {
        print!("\n{}", registry.render_text());
    }
}

/// Format a duration in milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Print a report table: a header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips() {
        let entries = vec![
            BenchEntry::new("fig3/robotron_churn/devices=100", 12_345, 42),
            BenchEntry::new("fig3/reachability_churn/n=200", 6_789, 17),
            BenchEntry::new("fig3/reachability_churn/n=20000", 7_000, 17)
                .with_wall_budget("fig3/reachability_churn/n=200", 2.0),
        ];
        let path = std::env::temp_dir().join("bench_roundtrip_test.json");
        let path = path.to_str().unwrap();
        write_bench_json(path, "fig3", &entries).unwrap();
        let (bench, back) = read_bench_json(path).unwrap();
        let _ = std::fs::remove_file(path);
        assert_eq!(bench, "fig3");
        assert_eq!(back, entries);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[]), 0);
    }

    #[test]
    fn graph_is_deterministic() {
        assert_eq!(random_graph(100, 300, 7), random_graph(100, 300, 7));
        assert_ne!(random_graph(100, 300, 7), random_graph(100, 300, 8));
    }

    #[test]
    fn reachability_engine_labels_reachable_nodes() {
        let e = reachability_engine(50, 200, 1);
        let labels = e.dump("Label").unwrap();
        assert!(!labels.is_empty());
        assert!(labels.len() <= 50);
    }

    #[test]
    fn robotron_preload_and_churn() {
        let scale = RobotronScale {
            devices: 40,
            ifaces_per_device: 4,
        };
        let mut e = robotron_engine(scale, 3);
        let configs = e.relation_len("IfaceConfig").unwrap();
        assert_eq!(configs, 160);
        let changed = robotron_daily_churn(&mut e, scale, 0);
        assert_eq!(changed, 100);
        // Churn must not corrupt the derived state (delete+re-add is
        // identity).
        assert_eq!(e.relation_len("IfaceConfig").unwrap(), configs);
    }
}
