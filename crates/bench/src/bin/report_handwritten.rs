//! E7 (§2.2): the hand-written incremental-processing engine. "An
//! alternative implementation provided by eBay followed a more
//! disciplined approach with an engine based on C callbacks. This reduced
//! latency by 3x and CPU cost by 20x in production."
//!
//! We replay the same change stream through our hand-written incremental
//! controller and the full-recompute controller and report the latency /
//! CPU ratios.

use std::time::{Duration, Instant};

use baselines::{Event, FullRecompute, HandwrittenIncremental, LearnedMac, PortConfig};
use bench::{ms, print_table};

fn main() {
    println!("E7: hand-written incremental vs full recompute (paper: 3x latency, 20x CPU)");
    let mut rows = Vec::new();
    for n in [500usize, 2000] {
        // Change stream: n port adds then n mac learns.
        let mut events = Vec::new();
        for i in 0..n {
            events.push(Event::PortUpserted(PortConfig::access(
                i as u16,
                10 + (i % 64) as u16,
            )));
        }
        for i in 0..n {
            events.push(Event::MacLearned(LearnedMac {
                port: (i % n) as u16,
                mac: 0xAA00 + i as u64,
                vlan: 10 + (i % 64) as u16,
            }));
        }

        // Hand-written incremental.
        let mut inc = HandwrittenIncremental::new();
        let mut inc_lat = Duration::ZERO;
        let mut inc_max = Duration::ZERO;
        let t_all = Instant::now();
        for e in &events {
            let t = Instant::now();
            inc.handle(e.clone());
            let d = t.elapsed();
            inc_lat += d;
            inc_max = inc_max.max(d);
        }
        let inc_total = t_all.elapsed();

        // Full recompute.
        let mut full = FullRecompute::new();
        let mut ports: Vec<PortConfig> = Vec::new();
        let mut macs: Vec<LearnedMac> = Vec::new();
        let mut full_lat = Duration::ZERO;
        let mut full_max = Duration::ZERO;
        let t_all = Instant::now();
        for e in &events {
            match e {
                Event::PortUpserted(c) => {
                    ports.retain(|p| p.id != c.id);
                    ports.push(c.clone());
                }
                Event::PortRemoved(id) => ports.retain(|p| p.id != *id),
                Event::MacLearned(m) => macs.push(*m),
            }
            let t = Instant::now();
            full.reconcile(&ports, &macs);
            let d = t.elapsed();
            full_lat += d;
            full_max = full_max.max(d);
        }
        let full_total = t_all.elapsed();

        rows.push(vec![
            n.to_string(),
            ms(inc_total),
            ms(inc_max),
            ms(full_total),
            ms(full_max),
            format!(
                "{:.0}x",
                full_max.as_secs_f64() / inc_max.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.0}x",
                full_total.as_secs_f64() / inc_total.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "replaying the same change stream",
        &[
            "changes x2",
            "incr cpu(ms)",
            "incr worst(ms)",
            "full cpu(ms)",
            "full worst(ms)",
            "latency ratio",
            "cpu ratio",
        ],
        &rows,
    );
    println!(
        "\nshape check: incrementality wins by a widening margin as the network grows \
         (the paper's production numbers were 3x latency / 20x CPU at eBay's scale)."
    );
    bench::dump_metrics_snapshot();
}
