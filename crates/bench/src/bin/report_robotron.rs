//! E6 (§2.1): Robotron-style configuration churn. "Each day on average,
//! more than 50 lines change across models ... These require continuous
//! re-configurations and are updated incrementally."
//!
//! We preload a datacenter-scale device model, replay a day of ~50 small
//! changes, and measure per-change cost for the incremental engine vs a
//! full recompute of the derived configuration.

use std::time::Instant;

use bench::{ms, print_table, robotron_daily_churn, robotron_engine, RobotronScale};

fn main() {
    println!("E6: daily config churn over a Robotron-style model (paper §2.1)");
    let mut rows = Vec::new();
    for devices in [100u64, 500, 2000] {
        let scale = RobotronScale {
            devices,
            ifaces_per_device: 8,
        };
        let mut engine = robotron_engine(scale, 11);
        let configs = engine.relation_len("IfaceConfig").unwrap();

        let t = Instant::now();
        let changed = robotron_daily_churn(&mut engine, scale, 1);
        let churn = t.elapsed();

        // Full recompute of the same model (what a non-incremental
        // config generator does once per change; here once for scale).
        let t = Instant::now();
        let _fresh = robotron_engine(scale, 11);
        let full = t.elapsed();

        rows.push(vec![
            devices.to_string(),
            configs.to_string(),
            changed.to_string(),
            ms(churn),
            ms(churn / 50),
            ms(full),
            format!(
                "{:.0}x",
                full.as_secs_f64() / (churn.as_secs_f64() / 50.0).max(1e-9)
            ),
        ]);
    }
    print_table(
        "one day of churn (50 changes) vs one full regeneration",
        &[
            "devices",
            "iface configs",
            "rows changed",
            "day total(ms)",
            "per change(ms)",
            "full regen(ms)",
            "regen/change",
        ],
        &rows,
    );
    println!(
        "\nshape check: per-change incremental cost is independent of model size; a \
         full regeneration per change would scale with the fleet."
    );
    bench::dump_metrics_snapshot();
}
