//! E5 (§2.2): the load-balancer worst case. "OVN's load balancer
//! benchmark cold starts ovn-controller with large load balancers and
//! then deletes each ... a DDlog controller took 2x the CPU time and 5x
//! the RAM as the C implementation."

use baselines::lb::{run_ddlog, run_handwritten};
use bench::{ms, print_table};

fn main() {
    println!("E5: load-balancer cold-start + delete-all worst case (paper §2.2)");
    println!("paper reported: DDlog ≈ 2x CPU, ≈ 5x RAM of the hand-written C engine");

    let mut rows = Vec::new();
    for (lbs, backends) in [(50usize, 100usize), (100, 200)] {
        let d = run_ddlog(lbs, backends);
        let h = run_handwritten(lbs, backends);
        let cpu_ratio = (d.cold_start + d.delete_all).as_secs_f64()
            / (h.cold_start + h.delete_all).as_secs_f64();
        let ram_ratio = d.peak_bytes as f64 / h.peak_bytes.max(1) as f64;
        rows.push(vec![
            format!("{lbs}x{backends}"),
            ms(d.cold_start),
            ms(d.delete_all),
            format!("{}", d.peak_bytes),
            ms(h.cold_start),
            ms(h.delete_all),
            format!("{}", h.peak_bytes),
            format!("{cpu_ratio:.1}x"),
            format!("{ram_ratio:.1}x"),
        ]);
    }
    print_table(
        "incremental engine vs hand-written controller",
        &[
            "lbs x backends",
            "ddlog cold(ms)",
            "ddlog del(ms)",
            "ddlog bytes",
            "hand cold(ms)",
            "hand del(ms)",
            "hand bytes",
            "cpu ratio",
            "ram ratio",
        ],
        &rows,
    );
    println!(
        "\nshape check: the automatic engine loses this worst case on both CPU and \
         RAM (paper: 2x / 5x) — the price of its generic indexes."
    );
    bench::dump_metrics_snapshot();
}
