//! E4 (§1/§2.2): incremental graph labeling. The controller "should
//! perform an incremental amount of work — proportional to the size of
//! modified state, not of the entire network state."
//!
//! For graphs of growing size we compare: (a) the incremental engine
//! handling a single edge insertion/deletion, against (b) recomputing the
//! labeling from scratch.

use std::time::Instant;

use bench::{ms, print_table, random_graph, reachability_engine, REACHABILITY_PROGRAM};
use ddlog::{Transaction, Value};

fn main() {
    println!("E4: reachability labeling — incremental vs full recompute");
    let mut rows = Vec::new();
    for n in [100u64, 1000, 5000, 10000] {
        let m = n * 3;
        let mut engine = reachability_engine(n, m, 42);

        // Incremental: insert one edge, then delete it.
        let t = Instant::now();
        let mut txn = Transaction::new();
        txn.insert("Edge", vec![Value::Int(0), Value::Int((n / 2) as i128)]);
        engine.commit(txn).unwrap();
        let ins = t.elapsed();

        let t = Instant::now();
        let mut txn = Transaction::new();
        txn.delete("Edge", vec![Value::Int(0), Value::Int((n / 2) as i128)]);
        engine.commit(txn).unwrap();
        let del = t.elapsed();

        // Full recompute: fresh engine, full load.
        let t = Instant::now();
        let mut fresh = ddlog::Engine::from_source(REACHABILITY_PROGRAM).unwrap();
        let mut txn = Transaction::new();
        txn.insert("GivenLabel", vec![Value::Int(0), Value::Int(1)]);
        for (a, b) in random_graph(n, m, 42) {
            txn.insert("Edge", vec![Value::Int(a), Value::Int(b)]);
        }
        fresh.commit(txn).unwrap();
        let full = t.elapsed();

        rows.push(vec![
            n.to_string(),
            engine.relation_len("Label").unwrap().to_string(),
            ms(ins),
            ms(del),
            ms(full),
            format!("{:.0}x", full.as_secs_f64() / ins.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(
        "single-edge change vs recomputing the labeling",
        &[
            "nodes",
            "labeled",
            "incr insert(ms)",
            "incr delete(ms)",
            "full recompute(ms)",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nshape check: incremental cost stays roughly flat as the graph grows; \
         full recomputation grows with graph size (the paper's core scalability \
         argument)."
    );
    bench::dump_metrics_snapshot();
}
