//! E1 (Fig. 3): "the growth of OVN's controller codebase and the number
//! of OpenFlow fragments over time."
//!
//! We cannot re-measure OVN's git history, so we regenerate the
//! *phenomenon*: as features accumulate in a conventional
//! fragment-oriented controller, the scattered OpenFlow fragments (and
//! the code sites emitting them) grow hand in hand — while the unified
//! approach only adds a handful of declarative rules per feature, and its
//! rule count does not depend on network size at all.

use baselines::ofgen::{growth_series, NetModel};
use bench::print_table;

fn main() {
    println!("E1 / Fig. 3: fragment growth vs unified rules");
    for n in [64u16, 256] {
        let series = growth_series(&NetModel::sized(n));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    p.features.to_string(),
                    p.fragments.to_string(),
                    p.sites.to_string(),
                    p.ddlog_rules.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("feature growth over a {n}-port network"),
            &["features", "of_fragments", "fragment_sites", "ddlog_rules"],
            &rows,
        );
    }
    println!(
        "\nshape check (paper Fig. 3): fragments and controller sites grow together \
         with features; the unified rule count stays small and is independent of \
         network size."
    );
    bench::dump_metrics_snapshot();
}
