//! E1 (Fig. 3): "the growth of OVN's controller codebase and the number
//! of OpenFlow fragments over time."
//!
//! We cannot re-measure OVN's git history, so we regenerate the
//! *phenomenon*: as features accumulate in a conventional
//! fragment-oriented controller, the scattered OpenFlow fragments (and
//! the code sites emitting them) grow hand in hand — while the unified
//! approach only adds a handful of declarative rules per feature, and its
//! rule count does not depend on network size at all.
//!
//! The second half makes the incrementality claim checkable: the same
//! small change is applied to models 10× apart in size, with the
//! engine's incrementality audit armed (every commit asserts work is
//! O(|input delta| + |output delta|)), and the measured tuples/commit
//! must stay flat as the network grows. `--out FILE` writes the
//! measurements as a `BENCH_*.json` report; `--quick` shrinks the
//! commit counts for CI smoke runs.

use std::time::Instant;

use baselines::ofgen::{growth_series, NetModel};
use bench::{print_table, BenchEntry, RobotronScale};
use ddlog::{AuditConfig, Value};

struct ChurnMeasure {
    median_ns: u64,
    tuples_per_commit: u64,
}

/// Flap one interface's speed back and forth, one commit per flap, with
/// the audit armed. Work per commit must not depend on `scale`.
fn measure_robotron_churn(scale: RobotronScale, commits: usize) -> ChurnMeasure {
    let mut engine = bench::robotron_engine(scale, 11);
    engine.set_audit(Some(AuditConfig::default()));
    let mut ns = Vec::with_capacity(commits);
    let mut tuples = Vec::with_capacity(commits);
    for c in 0..commits {
        let (old, new) = if c % 2 == 0 { (100, 101) } else { (101, 100) };
        let mut txn = ddlog::Transaction::new();
        txn.delete(
            "Interface",
            vec![Value::Int(0), Value::Int(0), Value::Int(old)],
        );
        txn.insert(
            "Interface",
            vec![Value::Int(0), Value::Int(0), Value::Int(new)],
        );
        let t = Instant::now();
        let (_, profile) = engine.commit_profiled(txn).expect("audited churn commit");
        ns.push(t.elapsed().as_nanos() as u64);
        tuples.push(profile.total_tuples());
    }
    ChurnMeasure {
        median_ns: bench::median(&ns),
        tuples_per_commit: bench::median(&tuples),
    }
}

/// Attach and detach a leaf node on the labeled root of a reachability
/// graph, one commit per change: each insert derives exactly one new
/// label through the recursive stratum, each delete retracts it via
/// delete–re-derive. The affected delta is O(1), so the measured work
/// must not scale with graph size. DRed may legitimately touch more
/// than the net output delta (alternative derivation paths), hence the
/// generous budget.
fn measure_reachability_churn(n: u64, m: u64, commits: usize) -> ChurnMeasure {
    let mut engine = bench::reachability_engine(n, m, 5);
    engine.set_audit(Some(AuditConfig {
        ratio: 64,
        slack: 4096,
    }));
    let leaf = (n + 10) as i128;
    let mut ns = Vec::with_capacity(commits);
    let mut tuples = Vec::with_capacity(commits);
    for c in 0..commits {
        let mut txn = ddlog::Transaction::new();
        let row = vec![Value::Int(0), Value::Int(leaf)];
        if c % 2 == 0 {
            txn.insert("Edge", row);
        } else {
            txn.delete("Edge", row);
        }
        let t = Instant::now();
        let (_, profile) = engine.commit_profiled(txn).expect("audited churn commit");
        ns.push(t.elapsed().as_nanos() as u64);
        tuples.push(profile.total_tuples());
    }
    ChurnMeasure {
        median_ns: bench::median(&ns),
        tuples_per_commit: bench::median(&tuples),
    }
}

/// Wall/op of `large` vs `small`, with a 1µs floor on the denominator so
/// sub-microsecond noise can't manufacture a huge ratio.
fn wall_ratio(large: &ChurnMeasure, small: &ChurnMeasure) -> f64 {
    large.median_ns as f64 / (small.median_ns as f64).max(1_000.0)
}

/// The churn-scaling cliff gate (also run standalone via `--cliff`):
/// wall/op at each larger scale must stay within `MAX_WALL_RATIO` of the
/// smallest scale. Before the arrangement-backed evaluator this ratio
/// was ~10x at n=2000 (see EXPERIMENTS.md).
const MAX_WALL_RATIO: f64 = 2.0;

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut cliff = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            "--cliff" => cliff = true,
            other => {
                eprintln!("usage: report_fig3 [--out FILE] [--quick] [--cliff] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    if cliff {
        // CI smoke for the scaling cliff: just the reachability churn
        // pair, gated on the machine-independent wall ratio. The commit
        // loop is microseconds per iteration (the preload dominates), so
        // always take the full 200-commit median — 20 commits is noisy
        // enough for warm-up effects to eat most of the 2x budget.
        let _ = quick;
        let commits = 200;
        let small = measure_reachability_churn(200, 600, commits);
        let large = measure_reachability_churn(2000, 6000, commits);
        let ratio = wall_ratio(&large, &small);
        println!(
            "bench-cliff: reachability churn wall/op n=200 {:.1}us, n=2000 {:.1}us ({ratio:.2}x, budget {MAX_WALL_RATIO:.2}x)",
            small.median_ns as f64 / 1e3,
            large.median_ns as f64 / 1e3,
        );
        if let Some(path) = out {
            let entries = vec![
                BenchEntry::new(
                    "fig3/reachability_churn/n=200",
                    small.median_ns,
                    small.tuples_per_commit,
                ),
                BenchEntry::new(
                    "fig3/reachability_churn/n=2000",
                    large.median_ns,
                    large.tuples_per_commit,
                )
                .with_wall_budget("fig3/reachability_churn/n=200", MAX_WALL_RATIO),
            ];
            bench::write_bench_json(&path, "fig3-cliff", &entries).expect("write bench json");
            println!("wrote {path}");
        }
        assert!(
            ratio <= MAX_WALL_RATIO,
            "churn wall/op grew {ratio:.2}x from n=200 to n=2000 (budget {MAX_WALL_RATIO:.2}x): \
             the evaluator is paying per-commit cost proportional to total state again"
        );
        println!("bench-cliff: OK (churn cost scales with the delta, not the model)");
        bench::dump_metrics_snapshot();
        return;
    }

    println!("E1 / Fig. 3: fragment growth vs unified rules");
    for n in [64u16, 256] {
        let series = growth_series(&NetModel::sized(n));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    p.features.to_string(),
                    p.fragments.to_string(),
                    p.sites.to_string(),
                    p.ddlog_rules.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("feature growth over a {n}-port network"),
            &["features", "of_fragments", "fragment_sites", "ddlog_rules"],
            &rows,
        );
    }
    println!(
        "\nshape check (paper Fig. 3): fragments and controller sites grow together \
         with features; the unified rule count stays small and is independent of \
         network size."
    );

    // ---- incrementality at scale (audited) ---------------------------------
    let commits = if quick { 20 } else { 200 };
    let small = RobotronScale {
        devices: 100,
        ifaces_per_device: 8,
    };
    let large = RobotronScale {
        devices: 1000,
        ifaces_per_device: 8,
    };
    let rob_small = measure_robotron_churn(small, commits);
    let rob_large = measure_robotron_churn(large, commits);
    let reach_small = measure_reachability_churn(200, 600, commits);
    let reach_large = measure_reachability_churn(2000, 6000, commits);
    let reach_xl = measure_reachability_churn(20000, 60000, commits);

    print_table(
        &format!("audited churn: work per commit vs model size ({commits} commits each)"),
        &["workload", "tuples/commit", "median_us"],
        &[
            vec![
                "robotron devices=100".into(),
                rob_small.tuples_per_commit.to_string(),
                format!("{:.1}", rob_small.median_ns as f64 / 1e3),
            ],
            vec![
                "robotron devices=1000 (10x)".into(),
                rob_large.tuples_per_commit.to_string(),
                format!("{:.1}", rob_large.median_ns as f64 / 1e3),
            ],
            vec![
                "reachability n=200".into(),
                reach_small.tuples_per_commit.to_string(),
                format!("{:.1}", reach_small.median_ns as f64 / 1e3),
            ],
            vec![
                "reachability n=2000 (10x)".into(),
                reach_large.tuples_per_commit.to_string(),
                format!("{:.1}", reach_large.median_ns as f64 / 1e3),
            ],
            vec![
                "reachability n=20000 (100x)".into(),
                reach_xl.tuples_per_commit.to_string(),
                format!("{:.1}", reach_xl.median_ns as f64 / 1e3),
            ],
        ],
    );
    // The audit already asserted per-commit budgets; this pins the
    // scaling claim itself: 10× the network must not mean 10× the work.
    assert!(
        rob_large.tuples_per_commit <= 2 * rob_small.tuples_per_commit.max(1),
        "robotron tuples/commit grew with model size: {} -> {}",
        rob_small.tuples_per_commit,
        rob_large.tuples_per_commit
    );
    assert!(
        reach_large.tuples_per_commit <= 2 * reach_small.tuples_per_commit.max(1),
        "reachability tuples/commit grew with graph size: {} -> {}",
        reach_small.tuples_per_commit,
        reach_large.tuples_per_commit
    );
    assert!(
        reach_xl.tuples_per_commit <= 2 * reach_small.tuples_per_commit.max(1),
        "reachability tuples/commit grew with graph size: {} -> {}",
        reach_small.tuples_per_commit,
        reach_xl.tuples_per_commit
    );
    // Tuples/commit being flat is necessary but not sufficient: an
    // evaluator can process few tuples yet still pay wall time per
    // commit proportional to total state (e.g. scanning a relation to
    // answer a keyed lookup). Pin the wall-time shape too.
    for (label, m) in [("n=2000", &reach_large), ("n=20000", &reach_xl)] {
        let ratio = wall_ratio(m, &reach_small);
        assert!(
            ratio <= MAX_WALL_RATIO,
            "reachability churn wall/op at {label} is {ratio:.2}x of n=200 \
             (budget {MAX_WALL_RATIO:.2}x): per-commit cost scales with total state"
        );
    }
    println!(
        "\nincrementality check: every commit passed the work audit; tuples/commit \
         and wall/op stayed flat from n=200 to n=20000 (100x)."
    );

    if let Some(path) = out {
        let entries = vec![
            BenchEntry::new(
                "fig3/robotron_churn/devices=100",
                rob_small.median_ns,
                rob_small.tuples_per_commit,
            ),
            BenchEntry::new(
                "fig3/robotron_churn/devices=1000",
                rob_large.median_ns,
                rob_large.tuples_per_commit,
            ),
            BenchEntry::new(
                "fig3/reachability_churn/n=200",
                reach_small.median_ns,
                reach_small.tuples_per_commit,
            ),
            BenchEntry::new(
                "fig3/reachability_churn/n=2000",
                reach_large.median_ns,
                reach_large.tuples_per_commit,
            )
            .with_wall_budget("fig3/reachability_churn/n=200", MAX_WALL_RATIO),
            BenchEntry::new(
                "fig3/reachability_churn/n=20000",
                reach_xl.median_ns,
                reach_xl.tuples_per_commit,
            )
            .with_wall_budget("fig3/reachability_churn/n=200", MAX_WALL_RATIO),
        ];
        bench::write_bench_json(&path, "fig3", &entries).expect("write bench json");
        println!("wrote {path}");
    }
    bench::dump_metrics_snapshot();
}
