//! `nerpa-prof`: replay a seeded management-plane workload through the
//! full in-process stack and print the hottest dataflow operators —
//! the CLI face of the engine's per-operator work profiler.
//!
//! ```text
//! nerpa-prof --seed 7 --steps 300          # top-10 hottest operators
//! nerpa-prof --seed 7 --steps 300 --top 5  # fewer
//! nerpa-prof --json                        # full /dataflow JSON instead
//! nerpa-prof --explain                     # full per-rule plan rendering
//! ```
//!
//! The workload is deterministic in `--seed`: a mix of port adds, mode
//! changes (delete + re-add), and removals, the same churn the oracle
//! and the port-scaling experiment exercise.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snvs::{PortMode, SnvsStack};

struct Args {
    seed: u64,
    steps: usize,
    top: usize,
    json: bool,
    explain: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nerpa-prof [--seed N] [--steps M] [--top K] [--json] [--explain]\n\
         \n\
         --seed    workload seed (default 7)\n\
         --steps   number of management-plane operations (default 300)\n\
         --top     how many hottest operators to print (default 10)\n\
         --json    print the full dataflow profile as JSON (the same\n\
         \x20        document the introspection endpoint serves at /dataflow)\n\
         --explain print the compiled plan per rule with cumulative costs"
    );
    std::process::exit(2);
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        seed: 7,
        steps: 300,
        top: 10,
        json: false,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => args.seed = it.next()?.parse().ok()?,
            "--steps" => args.steps = it.next()?.parse().ok()?,
            "--top" => args.top = it.next()?.parse().ok()?,
            "--json" => args.json = true,
            "--explain" => args.explain = true,
            "--help" | "-h" => usage(),
            _ => return None,
        }
    }
    Some(args)
}

fn main() {
    let Some(args) = parse_args() else { usage() };
    let mut stack = SnvsStack::new(1).expect("stack");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut live: Vec<u16> = Vec::new();
    for step in 0..args.steps {
        let roll = rng.random_range(0..10u32);
        if live.is_empty() || roll < 5 {
            let id = step as u16;
            let mode = if roll % 2 == 0 {
                PortMode::Access(10 + (id % 64))
            } else {
                PortMode::Trunk(vec![10, 20, 30])
            };
            stack.add_port(id, mode, None).expect("add port");
            live.push(id);
        } else if roll < 8 {
            // Mode change: remove + re-add with a different VLAN.
            let id = live[rng.random_range(0..live.len())];
            stack.remove_port(id).expect("remove port");
            stack
                .add_port(id, PortMode::Access(40 + (id % 8)), None)
                .expect("re-add port");
        } else {
            let at = rng.random_range(0..live.len());
            let id = live.swap_remove(at);
            stack.remove_port(id).expect("remove port");
        }
    }

    let engine = stack.controller.engine();
    if args.json {
        println!("{}", engine.explain_json());
        return;
    }
    if args.explain {
        println!("{}", engine.explain_text());
        return;
    }

    let profile = engine.cumulative_profile();
    let catalog = engine.op_catalog();
    println!(
        "replayed {} steps (seed {}): {} operators, {} tuples processed",
        args.steps,
        args.seed,
        catalog.len(),
        profile.total_tuples()
    );
    println!("top-{} hottest operators by tuples processed:", args.top);
    for id in profile.hottest(args.top) {
        let meta = &catalog.ops[id];
        let s = &profile.stats[id];
        let rule = meta
            .rule
            .map(|r| format!("rule {r}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  [{id:3}] {:9} {:32} {:8} inv={:6} in={:8} out={:8} peak={:6} wall_us={}",
            meta.kind.name(),
            meta.detail,
            rule,
            s.invocations,
            s.tuples_in,
            s.tuples_out,
            s.peak,
            s.wall_ns / 1_000
        );
    }
    bench::dump_metrics_snapshot();
}
