//! Provenance overhead gate: the ledger is maintained incrementally
//! inside every commit when enabled, so its cost must stay a small,
//! bounded tax. This bin runs the fig3 reachability churn (one O(1)
//! edge flap per commit) against two warm engines that differ *only*
//! in `ProvenanceConfig` — on vs off — and gates the wall/op ratio at
//! `MAX_OVERHEAD` (≤15%). The flap pairs interleave between the two
//! engines, so both samples see the same cache temperature and any
//! frequency drift. The run is split into independent segments and the
//! gate takes the *minimum* per-segment ratio: the ledger's cost is
//! deterministic, so external noise (a shared CI box) can only inflate
//! a segment's ratio, never hide real overhead across all of them.
//!
//! `--out FILE` writes a `BENCH_provenance.json` report whose `on`
//! entry carries a cross-entry wall budget against the `off` entry, so
//! the `compare` bin re-enforces the gate against the checked-in
//! baseline.

use std::time::Instant;

use bench::BenchEntry;
use ddlog::{ProvenanceConfig, Value};

/// Ledger maintenance may cost at most 15% of churn-commit wall time.
const MAX_OVERHEAD: f64 = 1.15;

struct ChurnMeasure {
    median_ns: u64,
    tuples_per_commit: u64,
}

struct Samples {
    ns: Vec<u64>,
    tuples: Vec<u64>,
}

/// Build a reachability engine with explicit provenance config,
/// preloaded with the same graph `bench::reachability_engine` uses.
fn engine_with(n: u64, m: u64, seed: u64, prov: ProvenanceConfig) -> ddlog::Engine {
    let mut engine =
        ddlog::Engine::from_source_with(bench::REACHABILITY_PROGRAM, prov).expect("program");
    let mut txn = ddlog::Transaction::new();
    txn.insert("GivenLabel", vec![Value::Int(0), Value::Int(1)]);
    for (a, b) in bench::random_graph(n, m, seed) {
        txn.insert("Edge", vec![Value::Int(a), Value::Int(b)]);
    }
    engine.commit(txn).expect("preload");
    engine
}

/// Interleaved churn: flap a leaf edge on two warm engines that are
/// identical except for the provenance ledger, alternating engines per
/// flap pair (insert + delete). `pairs` counts pairs per mode.
fn interleaved_churn(n: u64, m: u64, pairs: usize) -> (Samples, Samples) {
    let mut with_prov = engine_with(n, m, 5, ProvenanceConfig::on());
    let mut without = engine_with(n, m, 5, ProvenanceConfig::off());
    let leaf = (n + 10) as i128;
    let mut on = Samples {
        ns: Vec::new(),
        tuples: Vec::new(),
    };
    let mut off = Samples {
        ns: Vec::new(),
        tuples: Vec::new(),
    };
    // Warm-up pairs are measured into neither set.
    let warmup = 8;
    for pair in 0..warmup + 2 * pairs {
        let measured = pair >= warmup;
        let provenance = pair % 2 == 0;
        let engine = if provenance {
            &mut with_prov
        } else {
            &mut without
        };
        for step in 0..2 {
            let mut txn = ddlog::Transaction::new();
            let row = vec![Value::Int(0), Value::Int(leaf)];
            if step == 0 {
                txn.insert("Edge", row);
            } else {
                txn.delete("Edge", row);
            }
            let t = Instant::now();
            let (_, profile) = engine.commit_profiled(txn).expect("churn commit");
            let elapsed = t.elapsed().as_nanos() as u64;
            if measured {
                let side = if provenance { &mut on } else { &mut off };
                side.ns.push(elapsed);
                side.tuples.push(profile.total_tuples());
            }
        }
    }
    // The ledger must actually have been exercised, or the gate would
    // be vacuous.
    with_prov.validate_provenance().expect("consistent ledger");
    (on, off)
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "usage: report_provenance_overhead [--out FILE] [--quick] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    let (n, m) = (2000u64, 6000u64);
    let pairs = if quick { 120 } else { 400 };
    const SEGMENTS: usize = 4;

    let (on_samples, off_samples) = interleaved_churn(n, m, pairs);

    // Per-segment medians; the least-noisy segment (minimum ratio) is
    // the honest overhead estimate and the one the report ships.
    let seg = |s: &[u64], i: usize| {
        let chunk = s.len() / SEGMENTS;
        bench::median(&s[i * chunk..(i + 1) * chunk])
    };
    let (mut on, mut off, mut ratio) = (
        ChurnMeasure {
            median_ns: u64::MAX,
            tuples_per_commit: 0,
        },
        ChurnMeasure {
            median_ns: u64::MAX,
            tuples_per_commit: 0,
        },
        f64::INFINITY,
    );
    for i in 0..SEGMENTS {
        let (on_ns, off_ns) = (seg(&on_samples.ns, i), seg(&off_samples.ns, i));
        // 1µs floor on the denominator, as in the fig3 cliff gate, so
        // sub-microsecond noise cannot manufacture a ratio.
        let r = on_ns as f64 / (off_ns as f64).max(1_000.0);
        println!(
            "provenance-overhead: segment {i}: off {:.2}us, on {:.2}us ({r:.3}x)",
            off_ns as f64 / 1e3,
            on_ns as f64 / 1e3,
        );
        if r < ratio {
            ratio = r;
            on = ChurnMeasure {
                median_ns: on_ns,
                tuples_per_commit: bench::median(&on_samples.tuples),
            };
            off = ChurnMeasure {
                median_ns: off_ns,
                tuples_per_commit: bench::median(&off_samples.tuples),
            };
        }
    }
    println!(
        "provenance-overhead: reachability churn n={n} wall/op off {:.2}us, on {:.2}us \
         ({ratio:.3}x best of {SEGMENTS} segments, budget {MAX_OVERHEAD:.2}x, {} commits/mode)",
        off.median_ns as f64 / 1e3,
        on.median_ns as f64 / 1e3,
        2 * pairs,
    );

    if let Some(path) = out {
        let entries = vec![
            BenchEntry::new(
                "provenance/reachability_churn/off",
                off.median_ns,
                off.tuples_per_commit,
            ),
            BenchEntry::new(
                "provenance/reachability_churn/on",
                on.median_ns,
                on.tuples_per_commit,
            )
            .with_wall_budget("provenance/reachability_churn/off", MAX_OVERHEAD),
        ];
        bench::write_bench_json(&path, "provenance-overhead", &entries).expect("write bench json");
        println!("wrote {path}");
    }

    assert!(
        ratio <= MAX_OVERHEAD,
        "provenance ledger costs {:.1}% of churn-commit wall time (budget 15%): \
         per-commit justification maintenance is no longer a bounded tax",
        (ratio - 1.0) * 100.0
    );
    println!("provenance-overhead: OK (the why-ledger is within the 15% budget)");
    bench::dump_metrics_snapshot();
}
