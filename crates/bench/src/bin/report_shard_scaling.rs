//! Shard-scaling: commit throughput of the sharded control plane as the
//! shard count grows, on a 10k-port topology over 8 switches.
//!
//! Each switch sits behind its own TCP control service configured with
//! an emulated ASIC programming latency (real switch tables take on the
//! order of 0.1–1 ms per entry — see `ControlService::
//! start_with_write_delay`). The unsharded controller (1 shard) commits
//! and pushes in lockstep, so every commit waits for every switch; the
//! sharded runtime overlaps shard A's commits with shard B's device
//! pushes and spreads the pushes across per-shard writer threads.
//! Throughput is measured end-to-end: wall time from the first port
//! transaction to a full pipeline flush (all commits applied, all
//! entries on all devices).
//!
//! The deterministic regression measurement (`tuples_per_op`) is the
//! number of table entries pushed per port — a conservation check that
//! sharding delivers every derived entry to every switch exactly once,
//! independent of shard count and topology size.

use std::time::{Duration, Instant};

use bench::{print_table, BenchEntry};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{DataPlane, NerpaProgram};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;
use shard::{PartitionSpec, Router, ShardRuntime};

const SWITCHES: usize = 8;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PORTS: usize = 10_000;
const PORTS_QUICK: usize = 500;
const BATCH: usize = 200;
/// Emulated per-entry device programming latency (~5k entries/sec, the
/// optimistic end of hardware table-write rates).
const WRITE_DELAY: Duration = Duration::from_micros(200);
/// Minimum 8-shard-vs-1 speedup for a full run (the paper-scale claim).
const MIN_SPEEDUP: f64 = 3.0;
/// Lenient floor for `--quick` smoke runs (CI boxes are noisy and the
/// tiny topology is CPU- rather than push-dominated).
const MIN_SPEEDUP_QUICK: f64 = 1.2;

struct RunStats {
    wall: Duration,
    entries_pushed: u64,
    commits: u64,
}

fn run_config(
    shards: usize,
    ports: usize,
    nerpa_program: &NerpaProgram,
    program: &p4sim::ast::Program,
    schema: &ovsdb::Schema,
) -> RunStats {
    let mut services = Vec::new();
    let mut switches: Vec<(usize, Box<dyn DataPlane>)> = Vec::new();
    for sw in 0..SWITCHES {
        let device = SwitchDevice::new(Switch::new(program.clone()));
        let service = ControlService::start_with_write_delay(device, "127.0.0.1:0", WRITE_DELAY)
            .expect("control service");
        let client = ControlClient::connect(service.local_addr()).expect("control client");
        switches.push((sw, Box::new(client)));
        services.push(service);
    }
    let router = Router::new(PartitionSpec::snvs(), shards);
    let runtime = ShardRuntime::start(nerpa_program, router, switches).expect("shard runtime");

    // Register the switches (untimed: one-time topology setup).
    let mut db = ovsdb::Database::new(schema.clone());
    let tx: Vec<serde_json::Value> = (0..SWITCHES)
        .map(|sw| json!({"op": "insert", "table": "Switch", "row": {"idx": sw}}))
        .collect();
    let (_, changes) = db.transact(&json!(tx));
    runtime.handle_row_changes(&changes).expect("enqueue");
    runtime.flush();

    // The shard-label counters are process-global; measure deltas.
    let entries_before: u64 = (0..shards).map(|s| runtime.entries_written(s)).sum();
    let commits_before: u64 = (0..shards).map(|s| runtime.commits(s)).sum();

    let t = Instant::now();
    let mut next = 0;
    while next < ports {
        let hi = (next + BATCH).min(ports);
        let tx: Vec<serde_json::Value> = (next..hi)
            .map(|i| {
                json!({"op": "insert", "table": "Port",
                       "row": {"id": i, "vlan_mode": "access", "tag": 10 + (i % 64)}})
            })
            .collect();
        let (_, changes) = db.transact(&json!(tx));
        runtime.handle_row_changes(&changes).expect("enqueue");
        next = hi;
    }
    runtime.flush();
    let wall = t.elapsed();

    let entries_pushed: u64 =
        (0..shards).map(|s| runtime.entries_written(s)).sum::<u64>() - entries_before;
    let commits: u64 = (0..shards).map(|s| runtime.commits(s)).sum::<u64>() - commits_before;
    for s in 0..shards {
        assert_eq!(runtime.commit_errors(s), 0, "shard {s} commit errors");
        assert!(
            runtime.dirty_switches(s).is_empty(),
            "shard {s} left switches dirty"
        );
    }
    runtime.shutdown();
    RunStats {
        wall,
        entries_pushed,
        commits,
    }
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: report_shard_scaling [--out FILE] [--quick] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let ports = if quick { PORTS_QUICK } else { PORTS };

    println!(
        "shard scaling: {ports} ports over {SWITCHES} switches, \
         {:?} emulated programming latency per entry",
        WRITE_DELAY
    );

    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).expect("schema");
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).expect("p4");
    let nerpa_program = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };

    let mut runs = Vec::new();
    for &shards in &SHARD_COUNTS {
        let stats = run_config(shards, ports, &nerpa_program, &program, &schema);
        println!(
            "  shards={shards}: {} in {:.3}s ({} entries pushed, {} commits)",
            format_args!("{:.0} ports/s", ports as f64 / stats.wall.as_secs_f64()),
            stats.wall.as_secs_f64(),
            stats.entries_pushed,
            stats.commits,
        );
        runs.push((shards, stats));
    }

    // Conservation: sharding must deliver the same entries regardless of
    // the shard count — every derived entry on every switch exactly once.
    let expected = runs[0].1.entries_pushed;
    for (shards, stats) in &runs {
        assert_eq!(
            stats.entries_pushed, expected,
            "shards={shards} pushed a different entry count than unsharded"
        );
    }

    let base = runs[0].1.wall.as_secs_f64();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(shards, stats)| {
            vec![
                shards.to_string(),
                format!("{:.3}", stats.wall.as_secs_f64()),
                format!("{:.0}", ports as f64 / stats.wall.as_secs_f64()),
                format!("{:.2}x", base / stats.wall.as_secs_f64()),
            ]
        })
        .collect();
    print_table(
        "commit throughput vs shard count",
        &["shards", "wall(s)", "ports/s", "speedup"],
        &rows,
    );

    let last = runs.last().expect("runs");
    let speedup = base / last.1.wall.as_secs_f64();
    let floor = if quick {
        MIN_SPEEDUP_QUICK
    } else {
        MIN_SPEEDUP
    };
    println!(
        "\n{} shards vs 1: {speedup:.2}x commit throughput (floor {floor}x)",
        last.0
    );
    assert!(
        speedup >= floor,
        "sharding speedup {speedup:.2}x below the {floor}x floor"
    );

    if let Some(path) = out {
        let mut entries: Vec<BenchEntry> = runs
            .iter()
            .map(|(shards, stats)| {
                BenchEntry::new(
                    &format!("shard_scaling/shards={shards}"),
                    (stats.wall.as_nanos() as u64) / ports as u64,
                    stats.entries_pushed / ports as u64,
                )
            })
            .collect();
        // Headline speedup, informational (time-derived): hundredths.
        entries.push(BenchEntry::new(
            "shard_scaling/speedup_8_shards_x100",
            (speedup * 100.0) as u64,
            0,
        ));
        bench::write_bench_json(&path, "shard_scaling", &entries).expect("write bench json");
        println!("wrote {path}");
    }
    bench::dump_metrics_snapshot();
}
