//! Overload robustness: sustained throughput while one participant is
//! wedged, measured against the same pipeline with nobody wedged.
//!
//! Two planes, each measured twice in one process so the wall-time
//! ratio is machine-independent:
//!
//! * **Shard commit churn.** Port transactions through a 2-shard
//!   runtime over 4 TCP control services with emulated ASIC programming
//!   latency — once healthy, once with one switch's pushes frozen for
//!   the whole run. The push-deadline watchdog poisons the frozen
//!   switch after one deadline; coalescing and fast-fail keep every
//!   other switch committing, so the stalled run's wall per port must
//!   stay within [`MAX_STALL_RATIO`] of healthy (without the overload
//!   machinery the frozen push wedges the writer and the run never
//!   finishes).
//! * **Monitor fan-out.** An OVSDB server streaming row commits to
//!   [`MONITORS`] healthy TCP monitor clients — once with all of them
//!   reading, once with an extra subscriber that never reads a byte.
//!   The slow one costs exactly one eviction deadline before
//!   [`ovsdb` slow-consumer eviction] removes it; the wall per commit
//!   must stay within [`MAX_SLOW_RATIO`] of the all-healthy run
//!   (an unbounded outbox would instead grow until memory, a blocking
//!   fan-out would wedge every subscriber behind the slow one).
//!
//! Deterministic regression measurements (machine-independent, gated
//! unconditionally by `compare`): engine commits per batch under the
//! stall, derived entries per port when healthy, deliveries per commit,
//! and the eviction count (exactly one).
//!
//! [`ovsdb` slow-consumer eviction]: ovsdb::MonitorOverload

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{print_table, BenchEntry};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{DataPlane, NerpaProgram};
use p4sim::runtime::{TableEntry, Update};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;
use shard::{OverloadPolicy, PartitionSpec, Router, ShardRuntime};

const SWITCHES: usize = 4;
const SHARDS: usize = 2;
const PORTS: usize = 2_000;
const PORTS_QUICK: usize = 300;
const BATCH: usize = 100;
const WRITE_DELAY: Duration = Duration::from_micros(200);
/// Stalled-run wall per port vs healthy, same process.
const MAX_STALL_RATIO: f64 = 2.5;

const MONITORS: usize = 100;
const COMMITS: usize = 400;
const COMMITS_QUICK: usize = 100;
/// One-slow-subscriber wall per commit vs all-healthy, same process.
const MAX_SLOW_RATIO: f64 = 3.0;

/// A data plane whose pushes block while the gate is shut — the bench's
/// stand-in for a switch that stops acknowledging writes without
/// closing its connection.
struct GatedClient {
    inner: ControlClient,
    open: Arc<AtomicBool>,
}

impl DataPlane for GatedClient {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        while !self.open.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        DataPlane::write_updates(&self.inner, updates)
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        ControlClient::set_mcast_group(&self.inner, group, ports)
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        ControlClient::read_all_tables(&self.inner)
    }
}

struct ChurnStats {
    wall: Duration,
    commits: u64,
    entries_pushed: u64,
    watchdog_restarts: u64,
}

fn run_churn(
    ports: usize,
    stall_one: bool,
    nerpa_program: &NerpaProgram,
    program: &p4sim::ast::Program,
    schema: &ovsdb::Schema,
) -> ChurnStats {
    let gate = Arc::new(AtomicBool::new(!stall_one));
    let mut services = Vec::new();
    let mut switches: Vec<(usize, Box<dyn DataPlane>)> = Vec::new();
    for sw in 0..SWITCHES {
        let device = SwitchDevice::new(Switch::new(program.clone()));
        let service = ControlService::start_with_write_delay(device, "127.0.0.1:0", WRITE_DELAY)
            .expect("control service");
        let client = ControlClient::connect(service.local_addr()).expect("control client");
        if sw == 0 {
            switches.push((
                sw,
                Box::new(GatedClient {
                    inner: client,
                    open: Arc::clone(&gate),
                }),
            ));
        } else {
            switches.push((sw, Box::new(client)));
        }
        services.push(service);
    }
    let policy = OverloadPolicy {
        input_queue_cap: 1024,
        write_queue_cap: 32,
        enqueue_deadline: Duration::from_secs(5),
        push_deadline: Duration::from_millis(100),
        watchdog_poll: Duration::from_millis(10),
    };
    let runtime = ShardRuntime::start_with(
        nerpa_program,
        Router::new(PartitionSpec::snvs(), SHARDS),
        switches,
        policy,
    )
    .expect("shard runtime");

    let mut db = ovsdb::Database::new(schema.clone());
    let tx: Vec<serde_json::Value> = (0..SWITCHES)
        .map(|sw| json!({"op": "insert", "table": "Switch", "row": {"idx": sw}}))
        .collect();
    let (_, changes) = db.transact(&json!(tx));
    runtime.handle_row_changes(&changes).expect("enqueue");
    runtime.flush();

    // Shard-label counters are process-global: measure deltas.
    let commits_before: u64 = (0..SHARDS).map(|s| runtime.commits(s)).sum();
    let entries_before: u64 = (0..SHARDS).map(|s| runtime.entries_written(s)).sum();
    let wd_before: u64 = (0..SHARDS).map(|s| runtime.watchdog_restarts(s)).sum();
    let errors_before: u64 = (0..SHARDS).map(|s| runtime.commit_errors(s)).sum();

    let t = Instant::now();
    let mut next = 0;
    while next < ports {
        let hi = (next + BATCH).min(ports);
        let tx: Vec<serde_json::Value> = (next..hi)
            .map(|i| {
                json!({"op": "insert", "table": "Port",
                       "row": {"id": i, "vlan_mode": "access", "tag": 10 + (i % 64)}})
            })
            .collect();
        let (_, changes) = db.transact(&json!(tx));
        runtime.handle_row_changes(&changes).expect("enqueue");
        next = hi;
    }
    runtime.flush();
    let wall = t.elapsed();

    let commits = (0..SHARDS).map(|s| runtime.commits(s)).sum::<u64>() - commits_before;
    let entries_pushed =
        (0..SHARDS).map(|s| runtime.entries_written(s)).sum::<u64>() - entries_before;
    let watchdog_restarts = (0..SHARDS)
        .map(|s| runtime.watchdog_restarts(s))
        .sum::<u64>()
        - wd_before;
    let commit_errors = (0..SHARDS).map(|s| runtime.commit_errors(s)).sum::<u64>() - errors_before;
    if stall_one {
        let shard0 = runtime.shard_of_switch(0);
        assert!(
            watchdog_restarts >= 1,
            "the frozen switch never tripped the watchdog"
        );
        assert_eq!(
            runtime.poisoned_switches(shard0),
            vec![0],
            "frozen switch must be poisoned"
        );
        // The watchdog's best-effort reconcile may surface errors while
        // the switch awaits replacement — surfaced, not silent, is the
        // contract; a flood of them would mean the poison gate broke.
        assert!(
            commit_errors <= 4,
            "stalled run surfaced {commit_errors} commit errors"
        );
    } else {
        assert_eq!(commit_errors, 0, "healthy run surfaced commit errors");
        for s in 0..SHARDS {
            assert!(
                runtime.dirty_switches(s).is_empty(),
                "healthy run left shard {s} dirty"
            );
        }
    }
    gate.store(true, Ordering::SeqCst);
    runtime.shutdown();
    ChurnStats {
        wall,
        commits,
        entries_pushed,
        watchdog_restarts,
    }
}

struct FanoutStats {
    wall: Duration,
}

fn run_fanout(commits: usize, one_slow: bool) -> FanoutStats {
    let schema = ovsdb::Schema::from_json(&json!({
        "name": "fanoutdb",
        "tables": {
            "T": {"columns": {"k": {"type": "string"},
                              "v": {"type": "integer"}}, "isRoot": true}
        }
    }))
    .expect("schema");
    // Generous bounds for the timed run: a *reading* monitor must never
    // be evicted just because 100 reader threads contend for CPU, so
    // the outbox gives them a scheduling quantum's worth of slack. The
    // eviction behavior itself is measured in [`run_eviction`].
    let server = ovsdb::Server::start_with(
        ovsdb::Database::new(schema),
        "127.0.0.1:0",
        ovsdb::MonitorOverload {
            outbox_cap: 1024,
            evict_deadline: Duration::from_millis(500),
        },
    )
    .expect("server");

    let healthy: Vec<(
        ovsdb::Client,
        crossbeam_channel::Receiver<serde_json::Value>,
    )> = (0..MONITORS)
        .map(|i| {
            let c = ovsdb::Client::connect(server.local_addr()).expect("monitor connect");
            let (_, rx) = c
                .monitor("fanoutdb", json!(i), json!({"T": {}}))
                .expect("monitor");
            (c, rx)
        })
        .collect();
    let slow = if one_slow {
        use ovsdb::rpc::{write_message, Message, MessageReader};
        let mut s = std::net::TcpStream::connect(server.local_addr()).expect("slow connect");
        write_message(
            &mut s,
            &Message::Request {
                id: json!(1),
                method: "monitor".to_string(),
                params: json!(["fanoutdb", "slow", {"T": {}}]),
            },
        )
        .expect("slow monitor");
        let mut rd = MessageReader::new(s.try_clone().expect("clone"));
        rd.read().expect("slow monitor reply");
        Some(s)
    } else {
        None
    };
    assert_eq!(
        server.subscription_count(),
        MONITORS + usize::from(one_slow)
    );

    let evictions_before = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0);

    // Rows are padded so the fan-out actually moves bytes; the slow
    // subscriber absorbs them into kernel buffers and its outbox
    // without ever blocking the healthy 100 — that non-interference is
    // what the wall ratio measures.
    let pad = "p".repeat(8 * 1024);
    let t = Instant::now();
    for i in 0..commits {
        server.transact_local(&json!([
            {"op": "insert", "table": "T", "row": {"k": format!("c{i}-{pad}"), "v": i}}
        ]));
    }
    // Sustained fan-out, not just enqueue: every healthy monitor must
    // see the final commit.
    let last = format!("c{}-{pad}", commits - 1);
    for (i, (_, rx)) in healthy.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut saw = false;
        while !saw && Instant::now() < deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let Ok(upd) = rx.recv_timeout(remaining) else {
                break;
            };
            saw = upd["T"]
                .as_object()
                .map(|rows| rows.values().any(|r| r["new"]["k"] == json!(last.as_str())))
                .unwrap_or(false);
        }
        assert!(saw, "monitor {i} never saw the final commit");
    }
    let wall = t.elapsed();

    let evictions = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0)
        .saturating_sub(evictions_before);
    assert_eq!(
        evictions, 0,
        "no reading monitor may be evicted during the timed fan-out"
    );
    drop(slow);
    FanoutStats { wall }
}

/// The eviction measurement: a tightly-bounded server and one
/// non-reading subscriber, flooded with fat rows until its kernel
/// buffers and outbox wedge. Must cost exactly one eviction — never a
/// hang, never unbounded buffering. Deterministic, so the count is
/// gated by `compare` as a tuples measurement.
fn run_eviction() -> u64 {
    let schema = ovsdb::Schema::from_json(&json!({
        "name": "evictbench",
        "tables": {
            "T": {"columns": {"k": {"type": "string"},
                              "v": {"type": "integer"}}, "isRoot": true}
        }
    }))
    .expect("schema");
    let server = ovsdb::Server::start_with(
        ovsdb::Database::new(schema),
        "127.0.0.1:0",
        ovsdb::MonitorOverload {
            outbox_cap: 4,
            evict_deadline: Duration::from_millis(50),
        },
    )
    .expect("server");
    let mut slow = std::net::TcpStream::connect(server.local_addr()).expect("slow connect");
    {
        use ovsdb::rpc::{write_message, Message, MessageReader};
        write_message(
            &mut slow,
            &Message::Request {
                id: json!(1),
                method: "monitor".to_string(),
                params: json!(["evictbench", "slow", {"T": {}}]),
            },
        )
        .expect("slow monitor");
        let mut rd = MessageReader::new(slow.try_clone().expect("clone"));
        rd.read().expect("slow monitor reply");
    }
    assert_eq!(server.subscription_count(), 1);
    let before = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0);
    let fat = "f".repeat(1024 * 1024);
    for i in 0..32 {
        server.transact_local(&json!([
            {"op": "insert", "table": "T",
             "row": {"k": format!("fat{i}-{fat}"), "v": -(i as i64)}}
        ]));
        if server.subscription_count() == 0 {
            break;
        }
    }
    assert_eq!(
        server.subscription_count(),
        0,
        "slow subscriber never evicted"
    );
    let evictions = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0)
        .saturating_sub(before);
    assert_eq!(evictions, 1, "exactly one eviction expected");
    evictions
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: report_overload [--out FILE] [--quick] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let ports = if quick { PORTS_QUICK } else { PORTS };
    let commits = if quick { COMMITS_QUICK } else { COMMITS };

    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).expect("schema");
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).expect("p4");
    let nerpa_program = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };

    println!(
        "overload: {ports} ports over {SWITCHES} switches / {SHARDS} shards \
         ({WRITE_DELAY:?} per entry), {commits} commits to {MONITORS} monitors"
    );

    let healthy = run_churn(ports, false, &nerpa_program, &program, &schema);
    let stalled = run_churn(ports, true, &nerpa_program, &program, &schema);
    let batches = ports.div_ceil(BATCH) as u64;
    assert_eq!(
        healthy.commits,
        batches * SHARDS as u64,
        "commit count must be batches x shards"
    );
    assert_eq!(
        stalled.commits,
        batches * SHARDS as u64,
        "a stalled switch must not cost the engines a single commit"
    );
    assert_eq!(
        healthy.entries_pushed % ports as u64,
        0,
        "healthy entries per port must be integral"
    );

    let fan_healthy = run_fanout(commits, false);
    let fan_slow = run_fanout(commits, true);
    let evictions = run_eviction();

    let ratio_stall = stalled.wall.as_secs_f64() / healthy.wall.as_secs_f64();
    let ratio_slow = fan_slow.wall.as_secs_f64() / fan_healthy.wall.as_secs_f64();
    print_table(
        "sustained throughput under overload",
        &["run", "wall(s)", "ratio", "budget"],
        &[
            vec![
                "churn healthy".into(),
                format!("{:.3}", healthy.wall.as_secs_f64()),
                "1.00x".into(),
                "-".into(),
            ],
            vec![
                "churn one switch stalled".into(),
                format!("{:.3}", stalled.wall.as_secs_f64()),
                format!("{ratio_stall:.2}x"),
                format!("{MAX_STALL_RATIO}x"),
            ],
            vec![
                format!("fan-out {MONITORS} monitors"),
                format!("{:.3}", fan_healthy.wall.as_secs_f64()),
                "1.00x".into(),
                "-".into(),
            ],
            vec![
                "fan-out + one slow".into(),
                format!("{:.3}", fan_slow.wall.as_secs_f64()),
                format!("{ratio_slow:.2}x"),
                format!("{MAX_SLOW_RATIO}x"),
            ],
        ],
    );
    println!(
        "\nstalled churn: {ratio_stall:.2}x healthy wall (watchdog fired {}x); \
         slow fan-out: {ratio_slow:.2}x healthy wall; wedged subscriber: {evictions} eviction",
        stalled.watchdog_restarts
    );
    assert!(
        ratio_stall <= MAX_STALL_RATIO,
        "stalled churn {ratio_stall:.2}x exceeded the {MAX_STALL_RATIO}x budget"
    );
    assert!(
        ratio_slow <= MAX_SLOW_RATIO,
        "slow fan-out {ratio_slow:.2}x exceeded the {MAX_SLOW_RATIO}x budget"
    );

    if let Some(path) = out {
        let entries = vec![
            BenchEntry::new(
                "overload/churn_healthy",
                (healthy.wall.as_nanos() as u64) / ports as u64,
                healthy.entries_pushed / ports as u64,
            ),
            BenchEntry::new(
                "overload/churn_one_stalled",
                (stalled.wall.as_nanos() as u64) / ports as u64,
                stalled.commits / batches,
            )
            .with_wall_budget("overload/churn_healthy", MAX_STALL_RATIO),
            BenchEntry::new(
                "overload/monitor_fanout_healthy",
                (fan_healthy.wall.as_nanos() as u64) / commits as u64,
                MONITORS as u64,
            ),
            BenchEntry::new(
                "overload/monitor_fanout_one_slow",
                (fan_slow.wall.as_nanos() as u64) / commits as u64,
                MONITORS as u64,
            )
            .with_wall_budget("overload/monitor_fanout_healthy", MAX_SLOW_RATIO),
            // Deterministic: the wedged subscriber costs exactly one
            // eviction (ns column is informational).
            BenchEntry::new("overload/slow_subscriber_evictions", 1, evictions),
        ];
        bench::write_bench_json(&path, "overload", &entries).expect("write bench json");
        println!("wrote {path}");
    }
    bench::dump_metrics_snapshot();
}
