//! WAL-append throughput: the cost the durability layer adds to every
//! committed management-plane transaction, across fsync policies.
//!
//! Each run opens a durable [`ovsdb::Database`] in a scratch directory
//! and drives port upserts straight into `transact` (no TCP), so the
//! measured latency is exactly validate + WAL append (+ fsync per
//! policy) + overlay apply. `EveryN(64)` is the default shipped policy;
//! `Never` shows the raw append ceiling; `Always` the per-txn fsync
//! floor. Wall time is machine-dependent — this report is informational
//! (no checked-in baseline to gate against).

use std::time::Instant;

use bench::BenchEntry;
use ovsdb::{DurabilityConfig, FsyncPolicy};
use serde_json::json;

const TXNS: usize = 4000;
const TXNS_QUICK: usize = 400;

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("nerpa-bench-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_policy(tag: &str, fsync: FsyncPolicy, txns: usize) -> (Vec<u64>, u64) {
    let scratch = Scratch::new(tag);
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).expect("schema");
    let cfg = DurabilityConfig {
        fsync,
        // Pure append measurement: never compact mid-run.
        snapshot_after_bytes: u64::MAX,
    };
    let (mut db, _) = ovsdb::Database::open(&scratch.0, schema, cfg).expect("open durable db");
    let mut lat_ns = Vec::with_capacity(txns);
    for i in 0..txns {
        let port = (i % 512) as u16;
        let ops = json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", port]]},
            {"op": "insert", "table": "Port",
             "row": {"id": port, "vlan_mode": "access", "tag": 10 + (i % 64)}}
        ]);
        let t = Instant::now();
        let (results, _) = db.transact(&ops);
        lat_ns.push(t.elapsed().as_nanos() as u64);
        assert!(
            results
                .as_array()
                .is_some_and(|r| r.iter().all(|e| e.get("error").is_none())),
            "txn {i} failed: {results}"
        );
    }
    (lat_ns, db.wal_bytes())
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: report_wal [--out FILE] [--quick] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let txns = if quick { TXNS_QUICK } else { TXNS };

    println!("WAL-append throughput: durability cost per committed transaction");

    let policies: [(&str, FsyncPolicy); 3] = [
        ("fsync_every_64", FsyncPolicy::EveryN(64)),
        ("fsync_never", FsyncPolicy::Never),
        ("fsync_always", FsyncPolicy::Always),
    ];
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for (tag, fsync) in policies {
        let (lat_ns, wal_bytes) = run_policy(tag, fsync, txns);
        let mut sorted = lat_ns.clone();
        sorted.sort_unstable();
        let median = bench::median(&lat_ns);
        let p99 = sorted[(sorted.len() - 1) * 99 / 100];
        let per_txn = wal_bytes / txns as u64;
        rows.push(vec![
            tag.to_string(),
            txns.to_string(),
            format!("{:.1}", median as f64 / 1e3),
            format!("{:.1}", p99 as f64 / 1e3),
            format!("{:.1}", 1e9 / median as f64),
            per_txn.to_string(),
        ]);
        // tuples_per_op carries log bytes per committed txn:
        // deterministic, unlike wall time.
        entries.push(BenchEntry::new(
            &format!("wal_append/{tag}"),
            median,
            per_txn,
        ));
    }

    bench::print_table(
        "WAL append per transaction (validate + append + fsync + apply)",
        &[
            "policy",
            "txns",
            "median(us)",
            "p99(us)",
            "txns/sec",
            "log bytes/txn",
        ],
        &rows,
    );
    println!(
        "\nshape check: Never bounds the raw append cost, Always pays an fsync per \
         commit, and the shipped EveryN(64) should sit near Never with a 64-commit \
         loss window."
    );

    if let Some(path) = out {
        bench::write_bench_json(&path, "wal_append", &entries).expect("write bench json");
        println!("wrote {path}");
    }
    bench::dump_metrics_snapshot();
}
