//! E2 (§4.3): "we added 2,000 ports to the system. We then measured the
//! time between (1) the OVSDB client reading a new port from OVSDB and
//! (2) the data plane entry being added to the P4 table. The first time
//! difference noted was 0.013 seconds, and the last was 0.018 seconds."
//!
//! This binary regenerates the experiment on our stack: 2,000 ports are
//! added one transaction at a time through the full
//! OVSDB → DDlog → P4Runtime pipeline, recording the end-to-end latency
//! of each. The same change stream then drives the full-recompute
//! baseline to show the non-incremental alternative's latency growth.

use std::time::{Duration, Instant};

use baselines::{FullRecompute, PortConfig};
use bench::{ms, print_table};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use snvs::{PortMode, SnvsStack};

const PORTS: u16 = 2000;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn stat_row(name: &str, count: usize, lat: &[Duration]) -> Vec<String> {
    let mut sorted = lat.to_vec();
    sorted.sort();
    vec![
        name.to_string(),
        count.to_string(),
        ms(lat[0]),
        ms(*lat.last().unwrap()),
        ms(percentile(&sorted, 0.5)),
        ms(percentile(&sorted, 0.99)),
        format!(
            "{:.2}x",
            lat.last().unwrap().as_secs_f64() / lat[0].as_secs_f64().max(1e-9)
        ),
    ]
}

fn main() {
    println!("E2: port-scaling latency (paper §4.3)");
    println!("paper reported: first 13 ms, last 18 ms (1.38x over 2,000 ports)");

    // ---- Nerpa (incremental) ------------------------------------------
    let mut stack = SnvsStack::new(1).expect("stack");
    let mut latencies = Vec::with_capacity(PORTS as usize);
    for i in 0..PORTS {
        let t = Instant::now();
        stack
            .add_port(i, PortMode::Access(10 + (i % 64)), None)
            .expect("add port");
        latencies.push(t.elapsed());
    }
    assert_eq!(stack.db.table_len("Port"), PORTS as usize);

    // ---- full recompute baseline ----------------------------------------
    let device = SwitchDevice::new(Switch::from_source(snvs::assets::SNVS_P4).expect("p4"));
    let mut baseline = FullRecompute::new();
    let mut ports: Vec<PortConfig> = Vec::new();
    let mut b_latencies = Vec::with_capacity(PORTS as usize);
    for i in 0..PORTS {
        ports.push(PortConfig::access(i, 10 + (i % 64)));
        let t = Instant::now();
        let (updates, mcast) = baseline.reconcile(&ports, &[]);
        device.write(&updates).expect("write");
        for (g, members) in mcast {
            device.set_mcast_group(g, members);
        }
        b_latencies.push(t.elapsed());
    }

    print_table(
        "per-port end-to-end latency (OVSDB commit -> P4 table write)",
        &[
            "controller",
            "ports",
            "first(ms)",
            "last(ms)",
            "p50(ms)",
            "p99(ms)",
            "last/first",
        ],
        &[
            stat_row("nerpa (incremental)", PORTS as usize, &latencies),
            stat_row("full recompute", PORTS as usize, &b_latencies),
        ],
    );

    println!(
        "\nshape check: the incremental controller's last/first ratio stays near the \
         paper's 1.38x; the full-recompute baseline grows with network size."
    );
    bench::dump_metrics_snapshot();
}
