//! E2 (§4.3): "we added 2,000 ports to the system. We then measured the
//! time between (1) the OVSDB client reading a new port from OVSDB and
//! (2) the data plane entry being added to the P4 table. The first time
//! difference noted was 0.013 seconds, and the last was 0.018 seconds."
//!
//! This binary regenerates the experiment on our stack: 2,000 ports are
//! added one transaction at a time through the full
//! OVSDB → DDlog → P4Runtime pipeline, recording the end-to-end latency
//! of each. The same change stream then drives the full-recompute
//! baseline to show the non-incremental alternative's latency growth.

use std::time::{Duration, Instant};

use baselines::{FullRecompute, PortConfig};
use bench::{ms, print_table, BenchEntry};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use snvs::{PortMode, SnvsStack};

const PORTS: u16 = 2000;
const PORTS_QUICK: u16 = 200;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn stat_row(name: &str, count: usize, lat: &[Duration]) -> Vec<String> {
    let mut sorted = lat.to_vec();
    sorted.sort();
    vec![
        name.to_string(),
        count.to_string(),
        ms(lat[0]),
        ms(*lat.last().unwrap()),
        ms(percentile(&sorted, 0.5)),
        ms(percentile(&sorted, 0.99)),
        format!(
            "{:.2}x",
            lat.last().unwrap().as_secs_f64() / lat[0].as_secs_f64().max(1e-9)
        ),
    ]
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: report_port_scaling [--out FILE] [--quick] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let ports = if quick { PORTS_QUICK } else { PORTS };

    println!("E2: port-scaling latency (paper §4.3)");
    println!("paper reported: first 13 ms, last 18 ms (1.38x over 2,000 ports)");

    // ---- Nerpa (incremental) ------------------------------------------
    let mut stack = SnvsStack::new(1).expect("stack");
    let mut latencies = Vec::with_capacity(ports as usize);
    let mut tuples = Vec::with_capacity(ports as usize);
    for i in 0..ports {
        let t = Instant::now();
        stack
            .add_port(i, PortMode::Access(10 + (i % 64)), None)
            .expect("add port");
        latencies.push(t.elapsed());
        // Dataflow work of the commit this port-add caused.
        tuples.push(
            stack
                .controller
                .engine()
                .last_profile()
                .map(|p| p.total_tuples())
                .unwrap_or(0),
        );
    }
    assert_eq!(stack.db.table_len("Port"), ports as usize);

    // ---- full recompute baseline ----------------------------------------
    let device = SwitchDevice::new(Switch::from_source(snvs::assets::SNVS_P4).expect("p4"));
    let mut baseline = FullRecompute::new();
    let mut port_cfgs: Vec<PortConfig> = Vec::new();
    let mut b_latencies = Vec::with_capacity(ports as usize);
    for i in 0..ports {
        port_cfgs.push(PortConfig::access(i, 10 + (i % 64)));
        let t = Instant::now();
        let (updates, mcast) = baseline.reconcile(&port_cfgs, &[]);
        device.write(&updates).expect("write");
        for (g, members) in mcast {
            device.set_mcast_group(g, members);
        }
        b_latencies.push(t.elapsed());
    }

    print_table(
        "per-port end-to-end latency (OVSDB commit -> P4 table write)",
        &[
            "controller",
            "ports",
            "first(ms)",
            "last(ms)",
            "p50(ms)",
            "p99(ms)",
            "last/first",
        ],
        &[
            stat_row("nerpa (incremental)", ports as usize, &latencies),
            stat_row("full recompute", ports as usize, &b_latencies),
        ],
    );

    let tuples_per_op = bench::median(&tuples);
    println!("\nincremental dataflow work: median {tuples_per_op} tuples per port-add commit");
    println!(
        "shape check: the incremental controller's last/first ratio stays near the \
         paper's 1.38x; the full-recompute baseline grows with network size."
    );

    if let Some(path) = out {
        let ns: Vec<u64> = latencies.iter().map(|d| d.as_nanos() as u64).collect();
        let b_ns: Vec<u64> = b_latencies.iter().map(|d| d.as_nanos() as u64).collect();
        let entries = vec![
            BenchEntry::new(
                "port_scaling/nerpa_incremental",
                bench::median(&ns),
                tuples_per_op,
            ),
            BenchEntry::new("port_scaling/full_recompute", bench::median(&b_ns), 0),
        ];
        bench::write_bench_json(&path, "port_scaling", &entries).expect("write bench json");
        println!("wrote {path}");
    }
    bench::dump_metrics_snapshot();
}
