//! Flight-recorder overhead gate: the recorder is always on in
//! production, so its per-commit cost must be provably negligible. This
//! bin re-runs the fig3 reachability churn (one O(1) edge flap per
//! commit, audit armed) with the recorder enabled vs disabled and gates
//! the wall/op ratio at `MAX_OVERHEAD` (≤5%). The modes alternate per
//! flap pair (insert + delete) on the *same* warm engine, so both
//! samples see identical arrangement state, cache temperature, and any
//! frequency drift. The run is split into independent segments and the
//! gate takes the *minimum* per-segment ratio: the recorder's cost is
//! deterministic, so external noise (a shared CI box) can only inflate
//! a segment's ratio, never hide real overhead across all of them.
//!
//! `--out FILE` writes a `BENCH_recorder.json` report whose `on` entry
//! carries a cross-entry wall budget against the `off` entry, so the
//! `compare` bin re-enforces the gate against the checked-in baseline.

use std::time::Instant;

use bench::BenchEntry;
use ddlog::{AuditConfig, Value};

/// The recorder may cost at most 5% of churn-commit wall time.
const MAX_OVERHEAD: f64 = 1.05;

struct ChurnMeasure {
    median_ns: u64,
    tuples_per_commit: u64,
}

struct Samples {
    ns: Vec<u64>,
    tuples: Vec<u64>,
}

/// Interleaved churn: flap a leaf edge on one warm reachability
/// engine, toggling the recorder between flap pairs, filling the
/// per-mode sample sets. `pairs` counts insert+delete pairs per mode.
fn interleaved_churn(n: u64, m: u64, pairs: usize) -> (Samples, Samples) {
    let mut engine = bench::reachability_engine(n, m, 5);
    engine.set_audit(Some(AuditConfig {
        ratio: 64,
        slack: 4096,
    }));
    let leaf = (n + 10) as i128;
    let recorder = &telemetry::global().recorder;
    let mut on = Samples {
        ns: Vec::new(),
        tuples: Vec::new(),
    };
    let mut off = Samples {
        ns: Vec::new(),
        tuples: Vec::new(),
    };
    // Warm-up pairs are measured into neither set.
    let warmup = 8;
    for pair in 0..warmup + 2 * pairs {
        let measured = pair >= warmup;
        let enable = pair % 2 == 0;
        recorder.set_enabled(enable);
        for step in 0..2 {
            let mut txn = ddlog::Transaction::new();
            let row = vec![Value::Int(0), Value::Int(leaf)];
            if step == 0 {
                txn.insert("Edge", row);
            } else {
                txn.delete("Edge", row);
            }
            let t = Instant::now();
            let (_, profile) = engine.commit_profiled(txn).expect("audited churn commit");
            let elapsed = t.elapsed().as_nanos() as u64;
            if measured {
                let side = if enable { &mut on } else { &mut off };
                side.ns.push(elapsed);
                side.tuples.push(profile.total_tuples());
            }
        }
    }
    (on, off)
}

fn main() {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            other => {
                eprintln!("usage: report_recorder_overhead [--out FILE] [--quick] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let (n, m) = (2000u64, 6000u64);
    let pairs = if quick { 120 } else { 400 };
    const SEGMENTS: usize = 4;

    let was_enabled = telemetry::global().recorder.is_enabled();
    let (on_samples, off_samples) = interleaved_churn(n, m, pairs);
    telemetry::global().recorder.set_enabled(was_enabled);

    // Per-segment medians; the least-noisy segment (minimum ratio) is
    // the honest overhead estimate and the one the report ships.
    let seg = |s: &[u64], i: usize| {
        let chunk = s.len() / SEGMENTS;
        bench::median(&s[i * chunk..(i + 1) * chunk])
    };
    let (mut on, mut off, mut ratio) = (
        ChurnMeasure {
            median_ns: u64::MAX,
            tuples_per_commit: 0,
        },
        ChurnMeasure {
            median_ns: u64::MAX,
            tuples_per_commit: 0,
        },
        f64::INFINITY,
    );
    for i in 0..SEGMENTS {
        let (on_ns, off_ns) = (seg(&on_samples.ns, i), seg(&off_samples.ns, i));
        // 1µs floor on the denominator, as in the fig3 cliff gate, so
        // sub-microsecond noise cannot manufacture a ratio.
        let r = on_ns as f64 / (off_ns as f64).max(1_000.0);
        println!(
            "recorder-overhead: segment {i}: off {:.2}us, on {:.2}us ({r:.3}x)",
            off_ns as f64 / 1e3,
            on_ns as f64 / 1e3,
        );
        if r < ratio {
            ratio = r;
            on = ChurnMeasure {
                median_ns: on_ns,
                tuples_per_commit: bench::median(&on_samples.tuples),
            };
            off = ChurnMeasure {
                median_ns: off_ns,
                tuples_per_commit: bench::median(&off_samples.tuples),
            };
        }
    }
    println!(
        "recorder-overhead: reachability churn n={n} wall/op off {:.2}us, on {:.2}us \
         ({ratio:.3}x best of {SEGMENTS} segments, budget {MAX_OVERHEAD:.2}x, {} commits/mode)",
        off.median_ns as f64 / 1e3,
        on.median_ns as f64 / 1e3,
        2 * pairs,
    );

    if let Some(path) = out {
        let entries = vec![
            BenchEntry::new(
                "recorder/reachability_churn/off",
                off.median_ns,
                off.tuples_per_commit,
            ),
            BenchEntry::new(
                "recorder/reachability_churn/on",
                on.median_ns,
                on.tuples_per_commit,
            )
            .with_wall_budget("recorder/reachability_churn/off", MAX_OVERHEAD),
        ];
        bench::write_bench_json(&path, "recorder-overhead", &entries).expect("write bench json");
        println!("wrote {path}");
    }

    assert!(
        ratio <= MAX_OVERHEAD,
        "flight recorder costs {:.1}% of churn-commit wall time (budget 5%): \
         the per-commit hooks are no longer negligible",
        (ratio - 1.0) * 100.0
    );
    println!("recorder-overhead: OK (always-on recording is within the 5% budget)");
    bench::dump_metrics_snapshot();
}
