//! E3 (§4.3): the lines-of-code comparison. The paper reports snvs as
//! 350 LOC of DDlog + 300 of P4 + 5 OVSDB tables + 50 of glue, "at least
//! an order of magnitude less than an incremental implementation of
//! similar features in Java or C".
//!
//! We measure our own artifacts the same way: the three things an snvs
//! programmer writes, the relation declarations Nerpa generates for them,
//! and — as the hand-written comparison — this repository's
//! ovn-controller-style incremental baseline implementing the same
//! features.

use bench::print_table;
use nerpa::codegen::{ovsdb2ddlog, p4info2ddlog, CodegenOptions};

const HANDWRITTEN_SRC: &str = include_str!("../../../baselines/src/handwritten.rs");

fn loc(s: &str) -> usize {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn main() {
    println!("E3: snvs artifact sizes (paper §4.3: 350 DDlog + 300 P4 + schema + 50 glue = ~700)");

    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let p4info = p4sim::P4Info::from_program(&program);
    let gen_schema = ovsdb2ddlog(&schema);
    let gen_p4 = p4info2ddlog(&p4info, CodegenOptions::default());

    let rules = loc(snvs::assets::SNVS_RULES);
    let p4 = loc(snvs::assets::SNVS_P4);
    let schema_loc = loc(snvs::assets::SNVS_SCHEMA);
    let generated = loc(&gen_schema.source) + loc(&gen_p4.source);
    let unified_total = rules + p4 + schema_loc + generated;
    let handwritten = loc(HANDWRITTEN_SRC);

    print_table(
        "lines of code (non-blank, non-comment)",
        &["artifact", "ours", "paper"],
        &[
            vec![
                "DDlog rules (hand-written)".into(),
                rules.to_string(),
                "250".into(),
            ],
            vec![
                "DDlog relations (generated)".into(),
                generated.to_string(),
                "100".into(),
            ],
            vec!["P4 program".into(), p4.to_string(), "300".into()],
            vec!["OVSDB schema".into(), schema_loc.to_string(), "~30".into()],
            vec!["glue written by hand".into(), "0".into(), "50".into()],
            vec![
                "unified total".into(),
                unified_total.to_string(),
                "~700".into(),
            ],
            vec![
                "hand-written incremental (same features)".into(),
                handwritten.to_string(),
                "(paper: ≥10x the unified total, in Java/C)".into(),
            ],
        ],
    );
    println!(
        "\nshape check: the declarative control plane is {:.1}x smaller than the \
         hand-written incremental controller covering the same features \
         ({} vs {} LOC of control logic).",
        handwritten as f64 / rules as f64,
        rules,
        handwritten
    );
    bench::dump_metrics_snapshot();
}
