//! Bench-regression gate: compare a fresh `BENCH_*.json` report against
//! a checked-in baseline and fail (exit 1) on regression.
//!
//! ```text
//! compare crates/bench/baselines/BENCH_fig3.json BENCH_fig3.json
//! compare <baseline> <current> --enforce-time --tolerance 0.25
//! ```
//!
//! `tuples_per_op` — the deterministic dataflow-work measurement — is
//! always enforced: each baseline entry must exist in the current report
//! and stay within the tolerance (default 25%). `median_ns_per_op` is
//! informational unless `--enforce-time` is passed, because wall time is
//! machine-dependent while tuple counts are not.
//!
//! Relative wall budgets (`wall_ref` + `max_wall_ratio` on a baseline
//! entry) ARE always enforced: both sides of the ratio come from the
//! *current* report, measured in the same process on the same machine,
//! so the ratio is machine-independent. This is the scaling gate — e.g.
//! churn at n=20000 must stay within 2x the wall/op of churn at n=200.

use bench::BenchEntry;

fn usage() -> ! {
    eprintln!("usage: compare <baseline.json> <current.json> [--enforce-time] [--tolerance F]");
    std::process::exit(2);
}

fn within(baseline: u64, current: u64, tolerance: f64) -> bool {
    let b = baseline as f64;
    let c = current as f64;
    // Tiny counts get an absolute floor of 1 so 0 vs 1 doesn't trip.
    (c - b).abs() <= (b * tolerance).max(1.0)
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut enforce_time = false;
    let mut tolerance = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--enforce-time" => enforce_time = true,
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => usage(),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage()
    };

    let (b_name, baseline) = bench::read_bench_json(baseline_path).unwrap_or_else(|e| {
        eprintln!("compare: {e}");
        std::process::exit(2);
    });
    let (c_name, current) = bench::read_bench_json(current_path).unwrap_or_else(|e| {
        eprintln!("compare: {e}");
        std::process::exit(2);
    });
    if b_name != c_name {
        eprintln!("compare: bench mismatch: baseline is {b_name:?}, current is {c_name:?}");
        std::process::exit(1);
    }

    let mut failures = 0;
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            eprintln!("FAIL {}: entry missing from current report", b.name);
            failures += 1;
            continue;
        };
        check(b, c, tolerance, enforce_time, &mut failures);
        // Relative wall budget: machine-independent, always enforced.
        if let (Some(wall_ref), Some(max_ratio)) = (&b.wall_ref, b.max_wall_ratio) {
            let Some(r) = current.iter().find(|r| &r.name == wall_ref) else {
                eprintln!(
                    "FAIL {}: wall_ref {:?} missing from current report",
                    b.name, wall_ref
                );
                failures += 1;
                continue;
            };
            let ratio = c.median_ns_per_op as f64 / (r.median_ns_per_op as f64).max(1.0);
            if ratio > max_ratio {
                eprintln!(
                    "FAIL {}: wall/op {:.2}x of {} (budget {:.2}x) — {} vs {} ns/op",
                    b.name, ratio, wall_ref, max_ratio, c.median_ns_per_op, r.median_ns_per_op
                );
                failures += 1;
            } else {
                println!(
                    "OK   {}: wall/op {:.2}x of {} (budget {:.2}x)",
                    b.name, ratio, wall_ref, max_ratio
                );
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!(
                "NOTE {}: new entry (tuples/op {}, {} ns/op) — not in baseline",
                c.name, c.tuples_per_op, c.median_ns_per_op
            );
        }
    }
    if failures > 0 {
        eprintln!("compare: {failures} regression(s) vs {baseline_path}");
        std::process::exit(1);
    }
    println!(
        "compare: {} entries within {:.0}% of {}",
        baseline.len(),
        tolerance * 100.0,
        baseline_path
    );
}

fn check(b: &BenchEntry, c: &BenchEntry, tolerance: f64, enforce_time: bool, failures: &mut u32) {
    if !within(b.tuples_per_op, c.tuples_per_op, tolerance) {
        eprintln!(
            "FAIL {}: tuples/op {} vs baseline {} (> {:.0}%)",
            b.name,
            c.tuples_per_op,
            b.tuples_per_op,
            tolerance * 100.0
        );
        *failures += 1;
    } else if enforce_time && !within(b.median_ns_per_op, c.median_ns_per_op, tolerance) {
        eprintln!(
            "FAIL {}: {} ns/op vs baseline {} (> {:.0}%)",
            b.name,
            c.median_ns_per_op,
            b.median_ns_per_op,
            tolerance * 100.0
        );
        *failures += 1;
    } else {
        println!(
            "OK   {}: tuples/op {} (baseline {}), {} ns/op (baseline {})",
            b.name, c.tuples_per_op, b.tuples_per_op, c.median_ns_per_op, b.median_ns_per_op
        );
    }
}
