//! Dataflow profiling: stable operator ids and per-commit work accounting.
//!
//! The paper's headline scalability claim (§2, Fig. 3) is that the
//! incremental control plane does work proportional to the *size of the
//! change*, not the size of the network. This module makes that claim
//! observable and checkable: every plan operator gets a stable
//! [`OpId`], each [`crate::engine::Engine`] commit fills a
//! [`WorkProfile`] with tuples-in / tuples-out / peak intermediate
//! z-set size / wall time per operator, and an optional
//! [`AuditConfig`] turns "work is O(|input delta|)" into an enforced
//! invariant (differential-dataflow-style record counting per operator
//! per epoch).

use crate::plan::{CompiledProgram, PStage};
use crate::store::RelId;

/// Stable identifier of one dataflow operator, dense from zero within an
/// engine. Ids are assigned deterministically from the compiled plan, so
/// the same program text always yields the same catalog.
pub type OpId = usize;

/// The kind of a dataflow operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Stage 0 of a rule: map a relation delta to bindings.
    Scan,
    /// A positive atom at stage > 0: bilinear delta join.
    Join,
    /// A negated atom at stage > 0: affected-key antijoin.
    Antijoin,
    /// A boolean condition over the bindings.
    Filter,
    /// `var x = expr`: append one computed slot.
    Map,
    /// `var x = FlatMap(e)`: append one slot per collection element.
    FlatMap,
    /// Group-and-aggregate over affected keys.
    Aggregate,
    /// Per-relation derivation-count maintenance (set-level distinct).
    Distinct,
    /// Maintenance of a keyed arrangement (shared relation index or a
    /// join stage's binding arrangement) — the index-upkeep side of the
    /// work a probe-based evaluator does.
    Arrange,
    /// A recursive stratum's semi-naive / delete–re-derive fixpoint.
    Fixpoint,
}

impl OpKind {
    /// Lower-case stable name, used in series labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Scan => "scan",
            OpKind::Join => "join",
            OpKind::Antijoin => "antijoin",
            OpKind::Filter => "filter",
            OpKind::Map => "map",
            OpKind::FlatMap => "flatmap",
            OpKind::Aggregate => "aggregate",
            OpKind::Distinct => "distinct",
            OpKind::Arrange => "arrange",
            OpKind::Fixpoint => "fixpoint",
        }
    }
}

/// Static metadata of one operator.
#[derive(Debug, Clone)]
pub struct OpMeta {
    /// The operator's id (== its index in [`OpCatalog::ops`]).
    pub id: OpId,
    /// What the operator does.
    pub kind: OpKind,
    /// Source rule index (into the program's rules) for per-stage
    /// operators; `None` for Distinct and Fixpoint operators.
    pub rule: Option<usize>,
    /// Stage index within the rule's pipeline, when applicable.
    pub stage: Option<usize>,
    /// Human-readable description (relation names, group keys, …).
    pub detail: String,
}

/// The deterministic operator catalog of one engine.
///
/// Per-stage operators exist only for rules evaluated by the
/// incremental chain ([`crate::chain`]); rules inside a recursive
/// stratum are evaluated by driven search and are accounted to that
/// stratum's single [`OpKind::Fixpoint`] operator instead.
#[derive(Debug, Clone, Default)]
pub struct OpCatalog {
    /// All operators, indexed by [`OpId`].
    pub ops: Vec<OpMeta>,
    /// Plan index → operator ids parallel to the rule's stages. Empty
    /// for rules that live in a recursive stratum.
    pub rule_ops: Vec<Vec<OpId>>,
    /// Relation id → its Distinct operator.
    pub distinct_ops: Vec<OpId>,
    /// Plan index → per-stage binding-arrangement maintenance operators
    /// (parallel to the rule's stages; `Some` for join/antijoin stages,
    /// which maintain an arrangement of their input bindings). Empty for
    /// rules in a recursive stratum.
    pub stage_arrange_ops: Vec<Vec<Option<OpId>>>,
    /// Arrangement catalog id → its Arrange operator (maintenance of the
    /// shared relation indexes, parallel to
    /// [`crate::plan::CompiledProgram::arrangements`]).
    pub arrange_ops: Vec<OpId>,
    /// Stratum index → Fixpoint operator (for recursive strata).
    pub fixpoint_ops: Vec<Option<OpId>>,
}

impl OpCatalog {
    /// Build the catalog for a compiled program.
    ///
    /// `strata` lists, per stratum, whether it is recursive and which
    /// plan indices it executes (the engine's execution schedule).
    pub fn build(compiled: &CompiledProgram, strata: &[(bool, Vec<usize>)]) -> OpCatalog {
        let rel_name = |rel: RelId| compiled.decls[rel].name.as_str();
        // Arrangement keys by declared column *name*, so `nerpa-prof
        // --explain` reads `Port by (id)` rather than `Port by [1]`.
        let key_names = |rel: RelId, cols: &[usize]| -> String {
            cols.iter()
                .map(|c| {
                    compiled.decls[rel]
                        .columns
                        .get(*c)
                        .map(|(n, _)| n.as_str())
                        .unwrap_or("?")
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut cat = OpCatalog {
            rule_ops: vec![Vec::new(); compiled.rules.len()],
            stage_arrange_ops: vec![Vec::new(); compiled.rules.len()],
            ..OpCatalog::default()
        };
        let mut recursive_plans = vec![false; compiled.rules.len()];
        for (recursive, plan_idxs) in strata {
            if *recursive {
                for pi in plan_idxs {
                    recursive_plans[*pi] = true;
                }
            }
        }
        for (pi, rule) in compiled.rules.iter().enumerate() {
            if recursive_plans[pi] {
                continue;
            }
            for (si, stage) in rule.stages.iter().enumerate() {
                let (kind, detail) = match stage {
                    PStage::Atom { rel, neg, .. } if si == 0 => {
                        debug_assert!(!neg);
                        (OpKind::Scan, rel_name(*rel).to_string())
                    }
                    PStage::Atom {
                        rel, neg, key_cols, ..
                    } => {
                        let kind = if *neg { OpKind::Antijoin } else { OpKind::Join };
                        (
                            kind,
                            format!("{} on ({})", rel_name(*rel), key_names(*rel, key_cols)),
                        )
                    }
                    PStage::Filter { .. } => (OpKind::Filter, String::new()),
                    PStage::Assign { slot, .. } => (OpKind::Map, format!("slot {slot}")),
                    PStage::FlatMap { slot, .. } => (OpKind::FlatMap, format!("slot {slot}")),
                    PStage::Aggregate {
                        group_slots, func, ..
                    } => (
                        OpKind::Aggregate,
                        format!("{func:?} group_by {group_slots:?}").to_lowercase(),
                    ),
                };
                let id = cat.ops.len();
                cat.ops.push(OpMeta {
                    id,
                    kind,
                    rule: Some(rule.rule_index),
                    stage: Some(si),
                    detail,
                });
                cat.rule_ops[pi].push(id);
            }
            // Binding-arrangement maintenance per join/antijoin stage:
            // chain.rs arranges each such stage's input bindings so later
            // commits can probe them with δR. That upkeep is work the
            // probe itself never sees, so it gets its own operator.
            for (si, stage) in rule.stages.iter().enumerate() {
                let op = match stage {
                    PStage::Atom { rel, key_cols, .. } if si > 0 => {
                        let id = cat.ops.len();
                        cat.ops.push(OpMeta {
                            id,
                            kind: OpKind::Arrange,
                            rule: Some(rule.rule_index),
                            stage: Some(si),
                            detail: format!(
                                "bindings for {} on ({})",
                                rel_name(*rel),
                                key_names(*rel, key_cols)
                            ),
                        });
                        Some(id)
                    }
                    _ => None,
                };
                cat.stage_arrange_ops[pi].push(op);
            }
        }
        for rel in 0..compiled.decls.len() {
            let id = cat.ops.len();
            cat.ops.push(OpMeta {
                id,
                kind: OpKind::Distinct,
                rule: None,
                stage: None,
                detail: rel_name(rel).to_string(),
            });
            cat.distinct_ops.push(id);
        }
        for spec in &compiled.arrangements {
            let id = cat.ops.len();
            cat.ops.push(OpMeta {
                id,
                kind: OpKind::Arrange,
                rule: None,
                stage: None,
                detail: format!(
                    "{} by ({}) ({} user{})",
                    rel_name(spec.rel),
                    key_names(spec.rel, &spec.cols),
                    spec.users.len(),
                    if spec.users.len() == 1 { "" } else { "s" }
                ),
            });
            cat.arrange_ops.push(id);
        }
        for (si, (recursive, plan_idxs)) in strata.iter().enumerate() {
            if !*recursive {
                cat.fixpoint_ops.push(None);
                continue;
            }
            let mut heads: Vec<&str> = plan_idxs
                .iter()
                .map(|pi| rel_name(compiled.rules[*pi].head_rel))
                .collect();
            heads.sort_unstable();
            heads.dedup();
            let id = cat.ops.len();
            cat.ops.push(OpMeta {
                id,
                kind: OpKind::Fixpoint,
                rule: None,
                stage: None,
                detail: format!("stratum {si}: {}", heads.join(", ")),
            });
            cat.fixpoint_ops.push(Some(id));
        }
        cat
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the catalog is empty (a program with no relations).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Accumulated per-operator work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the operator ran (once per commit that reached it).
    pub invocations: u64,
    /// Tuples consumed (incoming binding/relation delta rows).
    pub tuples_in: u64,
    /// Tuples produced (outgoing delta rows).
    pub tuples_out: u64,
    /// Peak intermediate z-set size observed in a single run.
    pub peak: u64,
    /// Wall time spent inside the operator, nanoseconds.
    pub wall_ns: u64,
}

impl OpStats {
    /// Fold one operator run into the accumulator.
    pub fn absorb(&mut self, tuples_in: u64, tuples_out: u64, peak: u64, wall_ns: u64) {
        self.invocations += 1;
        self.tuples_in += tuples_in;
        self.tuples_out += tuples_out;
        self.peak = self.peak.max(peak);
        self.wall_ns += wall_ns;
    }

    /// Merge another accumulator (for cumulative cross-commit stats).
    pub fn merge(&mut self, other: &OpStats) {
        self.invocations += other.invocations;
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.peak = self.peak.max(other.peak);
        self.wall_ns += other.wall_ns;
    }

    /// Total tuples touched (in + out) — the audit's work unit.
    pub fn tuples(&self) -> u64 {
        self.tuples_in + self.tuples_out
    }
}

/// The work profile of one committed transaction (or, via
/// [`crate::engine::Engine::cumulative_profile`], of an engine's whole
/// history): per-operator [`OpStats`] plus commit-level totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkProfile {
    /// Per-operator stats, dense by [`OpId`].
    pub stats: Vec<OpStats>,
    /// Set-level input delta size (rows that actually changed).
    pub input_tuples: u64,
    /// Wall time of the whole commit, nanoseconds.
    pub total_wall_ns: u64,
}

impl WorkProfile {
    /// An all-zero profile sized for `n_ops` operators.
    pub fn new(n_ops: usize) -> WorkProfile {
        WorkProfile {
            stats: vec![OpStats::default(); n_ops],
            input_tuples: 0,
            total_wall_ns: 0,
        }
    }

    /// Record one operator run.
    pub fn record(&mut self, op: OpId, tuples_in: u64, tuples_out: u64, peak: u64, wall_ns: u64) {
        self.stats[op].absorb(tuples_in, tuples_out, peak, wall_ns);
    }

    /// Merge another profile of the same shape.
    pub fn merge(&mut self, other: &WorkProfile) {
        if self.stats.len() < other.stats.len() {
            self.stats.resize(other.stats.len(), OpStats::default());
        }
        for (s, o) in self.stats.iter_mut().zip(&other.stats) {
            s.merge(o);
        }
        self.input_tuples += other.input_tuples;
        self.total_wall_ns += other.total_wall_ns;
    }

    /// Total tuples processed across all operators (in + out).
    pub fn total_tuples(&self) -> u64 {
        self.stats.iter().map(OpStats::tuples).sum()
    }

    /// The timing-free counters `(invocations, in, out, peak)` per
    /// operator — equal across runs that did identical logical work.
    pub fn counts(&self) -> Vec<(u64, u64, u64, u64)> {
        self.stats
            .iter()
            .map(|s| (s.invocations, s.tuples_in, s.tuples_out, s.peak))
            .collect()
    }

    /// Operator ids ordered hottest-first by tuples touched (ties by
    /// id), limited to `k`. Operators that did no work are skipped.
    pub fn hottest(&self, k: usize) -> Vec<OpId> {
        let mut ids: Vec<OpId> = (0..self.stats.len())
            .filter(|i| self.stats[*i].tuples() > 0 || self.stats[*i].invocations > 0)
            .collect();
        ids.sort_by_key(|i| (std::cmp::Reverse(self.stats[*i].tuples()), *i));
        ids.truncate(k);
        ids
    }
}

/// Configuration of the incrementality audit: after each commit the
/// engine asserts
///
/// ```text
/// total_tuples_processed  ≤  slack + ratio × (|input delta| + |output delta|)
/// ```
///
/// The output delta participates because legitimately incremental work
/// is O(|change|) on *either* side — deleting one edge may retract many
/// reachability facts. Exceeding the budget fails the commit with an
/// [`crate::error::Error`] (without poisoning the engine: state is
/// consistent, the work bound was merely exceeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Allowed tuples of work per changed input/output row.
    pub ratio: u64,
    /// Flat allowance independent of the delta size.
    pub slack: u64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            ratio: 32,
            slack: 256,
        }
    }
}

impl AuditConfig {
    /// Check a commit's profile against the budget.
    pub fn check(
        &self,
        profile: &WorkProfile,
        output_tuples: u64,
    ) -> std::result::Result<(), String> {
        let budget = self.slack.saturating_add(
            self.ratio
                .saturating_mul(profile.input_tuples + output_tuples),
        );
        let work = profile.total_tuples();
        if work > budget {
            Err(format!(
                "incrementality audit: {work} tuples processed exceeds budget {budget} \
                 (= {} + {} x (|in|={} + |out|={}))",
                self.slack, self.ratio, profile.input_tuples, output_tuples
            ))
        } else {
            Ok(())
        }
    }
}

/// Counters filled by [`crate::recursive::process_recursive_stratum`]
/// when profiling: work done by one recursive fixpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixpointProbe {
    /// Rows popped from the DRed / semi-naive frontiers (each distinct
    /// row is driven at most once per phase).
    pub driven: u64,
    /// Rows handed out by view lookups and scans while driving — the
    /// probe-side work. Under the arranged evaluator this stays
    /// O(matches); a full scan would make it O(relation) and trip the
    /// incrementality audit.
    pub examined: u64,
    /// Peak frontier length observed.
    pub peak: u64,
}

impl FixpointProbe {
    /// Note the current frontier length.
    pub fn observe_frontier(&mut self, len: usize) {
        self.peak = self.peak.max(len as u64);
    }

    /// Note one row popped and driven through the rules.
    pub fn pop(&mut self) {
        self.driven += 1;
    }

    /// Note `n` rows handed out by lookups/scans (drained from a
    /// [`crate::recursive::View`]).
    pub fn examine(&mut self, n: u64) {
        self.examined += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opstats_absorb_and_merge() {
        let mut a = OpStats::default();
        a.absorb(3, 2, 5, 100);
        a.absorb(1, 1, 9, 50);
        assert_eq!(a.invocations, 2);
        assert_eq!(a.tuples_in, 4);
        assert_eq!(a.tuples_out, 3);
        assert_eq!(a.peak, 9);
        assert_eq!(a.wall_ns, 150);
        let mut b = OpStats::default();
        b.absorb(10, 10, 4, 1);
        b.merge(&a);
        assert_eq!(b.tuples(), 27);
        assert_eq!(b.peak, 9);
    }

    #[test]
    fn audit_budget_arithmetic() {
        let cfg = AuditConfig {
            ratio: 2,
            slack: 10,
        };
        let mut p = WorkProfile::new(1);
        p.input_tuples = 3;
        p.record(0, 10, 5, 10, 0); // 15 tuples of work
                                   // budget = 10 + 2*(3+1) = 18 >= 15.
        assert!(cfg.check(&p, 1).is_ok());
        p.record(0, 4, 0, 4, 0); // 19 tuples now
        assert!(cfg.check(&p, 1).is_err());
        // A bigger output delta raises the budget.
        assert!(cfg.check(&p, 3).is_ok());
    }

    #[test]
    fn hottest_orders_by_tuples() {
        let mut p = WorkProfile::new(3);
        p.record(0, 1, 1, 1, 0);
        p.record(2, 10, 10, 10, 0);
        assert_eq!(p.hottest(10), vec![2, 0]);
        assert_eq!(p.hottest(1), vec![2]);
    }
}
