//! Compiled (lowered) expressions.
//!
//! The planner resolves variable names to environment slots and folds
//! literals into constants, producing [`CExpr`] trees that evaluate
//! against a positional environment without any name lookups — this is the
//! per-tuple hot path of the engine.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::ast::{AggFunc, BinOp, UnOp};
use crate::error::{Error, Phase, Result};
use crate::stdlib;
use crate::types::Type;
use crate::value::{mask_to_width, Value, F64};
use crate::zset::ZSet;

/// A compiled expression over a positional environment.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A constant value.
    Const(Value),
    /// Environment slot reference.
    Var(usize),
    /// Unary operation.
    Unary(UnOp, Box<CExpr>),
    /// Binary operation.
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Builtin call.
    Call(String, Vec<CExpr>),
    /// Conditional.
    IfElse(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Cast between numeric types.
    Cast(Box<CExpr>, Type),
    /// Tuple construction.
    Tuple(Vec<CExpr>),
}

impl CExpr {
    /// Visit every environment slot the expression reads.
    pub fn visit_slots(&self, f: &mut impl FnMut(usize)) {
        match self {
            CExpr::Const(_) => {}
            CExpr::Var(s) => f(*s),
            CExpr::Unary(_, e) | CExpr::Cast(e, _) => e.visit_slots(f),
            CExpr::Binary(_, a, b) => {
                a.visit_slots(f);
                b.visit_slots(f);
            }
            CExpr::Call(_, args) | CExpr::Tuple(args) => args.iter().for_each(|e| e.visit_slots(f)),
            CExpr::IfElse(c, t, e) => {
                c.visit_slots(f);
                t.visit_slots(f);
                e.visit_slots(f);
            }
        }
    }

    /// True if the expression references no environment slots.
    pub fn is_const(&self) -> bool {
        match self {
            CExpr::Const(_) => true,
            CExpr::Var(_) => false,
            CExpr::Unary(_, e) | CExpr::Cast(e, _) => e.is_const(),
            CExpr::Binary(_, a, b) => a.is_const() && b.is_const(),
            CExpr::Call(_, args) | CExpr::Tuple(args) => args.iter().all(CExpr::is_const),
            CExpr::IfElse(c, t, e) => c.is_const() && t.is_const() && e.is_const(),
        }
    }
}

/// Evaluate a compiled expression against an environment.
pub fn eval(expr: &CExpr, env: &[Value]) -> Result<Value> {
    match expr {
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Var(slot) => Ok(env[*slot].clone()),
        CExpr::Unary(op, inner) => {
            let v = eval(inner, env)?;
            eval_unary(*op, v)
        }
        CExpr::Binary(op, lhs, rhs) => {
            // Short-circuit booleans.
            match op {
                BinOp::And => {
                    let l = eval(lhs, env)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    return eval(rhs, env);
                }
                BinOp::Or => {
                    let l = eval(lhs, env)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    return eval(rhs, env);
                }
                _ => {}
            }
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            eval_binary(*op, l, r)
        }
        CExpr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env)?);
            }
            stdlib::eval_call(name, &vals)
        }
        CExpr::IfElse(c, t, f) => {
            let cv = eval(c, env)?;
            if cv == Value::Bool(true) {
                eval(t, env)
            } else {
                eval(f, env)
            }
        }
        CExpr::Cast(inner, to) => {
            let v = eval(inner, env)?;
            eval_cast(v, to)
        }
        CExpr::Tuple(elems) => {
            let mut vals = Vec::with_capacity(elems.len());
            for e in elems {
                vals.push(eval(e, env)?);
            }
            Ok(Value::tuple(vals))
        }
    }
}

fn eval_unary(op: UnOp, v: Value) -> Result<Value> {
    Ok(match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
        (UnOp::Neg, Value::Double(d)) => Value::Double(F64(-d.0)),
        (UnOp::Neg, Value::Bit { width, val }) => Value::Bit {
            width,
            val: mask_to_width(val.wrapping_neg(), width),
        },
        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
        (UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
        (UnOp::BitNot, Value::Bit { width, val }) => Value::Bit {
            width,
            val: mask_to_width(!val, width),
        },
        (op, v) => {
            return Err(Error::new(
                Phase::Eval,
                format!("internal: unary {op:?} on {v}"),
            ))
        }
    })
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    // Comparisons work on the total value order; equality is structural.
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        Lt => return Ok(Value::Bool(l.cmp(&r) == Ordering::Less)),
        Le => return Ok(Value::Bool(l.cmp(&r) != Ordering::Greater)),
        Gt => return Ok(Value::Bool(l.cmp(&r) == Ordering::Greater)),
        Ge => return Ok(Value::Bool(l.cmp(&r) != Ordering::Less)),
        _ => {}
    }
    Ok(match (op, l, r) {
        (And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
        (Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(b)),
        (Div, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                return Err(Error::new(Phase::Eval, "division by zero"));
            }
            Value::Int(a.wrapping_div(b))
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                return Err(Error::new(Phase::Eval, "modulo by zero"));
            }
            Value::Int(a.wrapping_rem(b))
        }
        (Add, Value::Double(a), Value::Double(b)) => Value::Double(F64(a.0 + b.0)),
        (Sub, Value::Double(a), Value::Double(b)) => Value::Double(F64(a.0 - b.0)),
        (Mul, Value::Double(a), Value::Double(b)) => Value::Double(F64(a.0 * b.0)),
        (Div, Value::Double(a), Value::Double(b)) => Value::Double(F64(a.0 / b.0)),
        (Add, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => Value::Bit {
            width,
            val: mask_to_width(a.wrapping_add(b), width),
        },
        (Sub, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => Value::Bit {
            width,
            val: mask_to_width(a.wrapping_sub(b), width),
        },
        (Mul, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => Value::Bit {
            width,
            val: mask_to_width(a.wrapping_mul(b), width),
        },
        (Div, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => {
            if b == 0 {
                return Err(Error::new(Phase::Eval, "division by zero"));
            }
            Value::Bit { width, val: a / b }
        }
        (Mod, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => {
            if b == 0 {
                return Err(Error::new(Phase::Eval, "modulo by zero"));
            }
            Value::Bit { width, val: a % b }
        }
        (Shl, Value::Int(a), b) => {
            let s = b.as_u128().unwrap_or(0).min(127) as u32;
            Value::Int(a.wrapping_shl(s))
        }
        (Shr, Value::Int(a), b) => {
            let s = b.as_u128().unwrap_or(0).min(127) as u32;
            Value::Int(a.wrapping_shr(s))
        }
        (Shl, Value::Bit { width, val }, b) => {
            let s = b.as_u128().unwrap_or(0).min(128) as u32;
            let v = if s >= 128 { 0 } else { val << s };
            Value::Bit {
                width,
                val: mask_to_width(v, width),
            }
        }
        (Shr, Value::Bit { width, val }, b) => {
            let s = b.as_u128().unwrap_or(0).min(128) as u32;
            let v = if s >= 128 { 0 } else { val >> s };
            Value::Bit { width, val: v }
        }
        (BitAnd, Value::Int(a), Value::Int(b)) => Value::Int(a & b),
        (BitOr, Value::Int(a), Value::Int(b)) => Value::Int(a | b),
        (BitXor, Value::Int(a), Value::Int(b)) => Value::Int(a ^ b),
        (BitAnd, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => {
            Value::Bit { width, val: a & b }
        }
        (BitOr, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => Value::Bit {
            width,
            val: mask_to_width(a | b, width),
        },
        (BitXor, Value::Bit { width, val: a }, Value::Bit { val: b, .. }) => Value::Bit {
            width,
            val: mask_to_width(a ^ b, width),
        },
        (Concat, Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(&a);
            s.push_str(&b);
            Value::str(s)
        }
        (Concat, Value::Vec(a), Value::Vec(b)) => {
            let mut v = (*a).clone();
            v.extend(b.iter().cloned());
            Value::Vec(Arc::new(v))
        }
        (op, l, r) => {
            return Err(Error::new(
                Phase::Eval,
                format!("internal: binary {op:?} on {l} and {r}"),
            ))
        }
    })
}

/// Cast a value to a (numeric) type.
pub fn eval_cast(v: Value, to: &Type) -> Result<Value> {
    Ok(match (v, to) {
        (Value::Int(i), Type::Int) => Value::Int(i),
        (Value::Int(i), Type::Bit(w)) => Value::Bit {
            width: *w,
            val: mask_to_width(i as u128, *w),
        },
        (Value::Int(i), Type::Double) => Value::Double(F64(i as f64)),
        (Value::Bit { val, .. }, Type::Int) => Value::Int(val as i128),
        (Value::Bit { val, .. }, Type::Bit(w)) => Value::Bit {
            width: *w,
            val: mask_to_width(val, *w),
        },
        (Value::Bit { val, .. }, Type::Double) => Value::Double(F64(val as f64)),
        (Value::Double(d), Type::Int) => Value::Int(d.0 as i128),
        (Value::Double(d), Type::Double) => Value::Double(d),
        (v, to) => {
            return Err(Error::new(
                Phase::Eval,
                format!("internal: cast {v} to {to}"),
            ))
        }
    })
}

/// The environment binding of a rule in flight: shared so it can be stored
/// in arrangements cheaply.
pub type Binding = Arc<Vec<Value>>;

/// Evaluate an aggregate function over a group of bindings.
///
/// `arg` (if any) is evaluated per binding; multiplicities (weights) are
/// respected: a binding with weight `w` counts `w` times.
pub fn eval_aggregate(func: AggFunc, arg: Option<&CExpr>, group: &ZSet<Binding>) -> Result<Value> {
    match func {
        AggFunc::Count => {
            let n: isize = group.iter().map(|(_, w)| w.max(0)).sum();
            Ok(Value::Int(n as i128))
        }
        AggFunc::CountDistinct => {
            let arg = arg.unwrap();
            let mut seen = std::collections::BTreeSet::new();
            for b in group.support() {
                seen.insert(eval(arg, b)?);
            }
            Ok(Value::Int(seen.len() as i128))
        }
        AggFunc::Sum => {
            let arg = arg.unwrap();
            let mut acc: Option<Value> = None;
            for (b, w) in group.iter() {
                if w <= 0 {
                    continue;
                }
                let v = eval(arg, b)?;
                for _ in 0..w {
                    acc = Some(match acc {
                        None => v.clone(),
                        Some(a) => eval_binary(BinOp::Add, a, v.clone())?,
                    });
                }
            }
            Ok(acc.unwrap_or(Value::Int(0)))
        }
        AggFunc::Min | AggFunc::Max => {
            let arg = arg.unwrap();
            let mut acc: Option<Value> = None;
            for b in group.support() {
                let v = eval(arg, b)?;
                acc = Some(match acc {
                    None => v,
                    Some(a) => {
                        let take_new = if func == AggFunc::Min { v < a } else { v > a };
                        if take_new {
                            v
                        } else {
                            a
                        }
                    }
                });
            }
            acc.ok_or_else(|| Error::new(Phase::Eval, "aggregate over empty group"))
        }
        AggFunc::CollectVec => {
            let arg = arg.unwrap();
            let mut vals = Vec::new();
            for (b, w) in group.iter() {
                if w <= 0 {
                    continue;
                }
                let v = eval(arg, b)?;
                for _ in 0..w {
                    vals.push(v.clone());
                }
            }
            vals.sort();
            Ok(Value::vec(vals))
        }
        AggFunc::CollectSet => {
            let arg = arg.unwrap();
            let mut vals = std::collections::BTreeSet::new();
            for b in group.support() {
                vals.insert(eval(arg, b)?);
            }
            Ok(Value::Set(Arc::new(vals)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Vec<Value> {
        vec![Value::Int(10), Value::str("hi"), Value::bit(8, 200)]
    }

    #[test]
    fn arithmetic_and_vars() {
        let e = CExpr::Binary(
            BinOp::Add,
            Box::new(CExpr::Var(0)),
            Box::new(CExpr::Const(Value::Int(5))),
        );
        assert_eq!(eval(&e, &env()).unwrap(), Value::Int(15));
    }

    #[test]
    fn bit_arithmetic_wraps() {
        let e = CExpr::Binary(
            BinOp::Add,
            Box::new(CExpr::Var(2)),
            Box::new(CExpr::Const(Value::bit(8, 100))),
        );
        // 200 + 100 = 300 masked to 8 bits = 44.
        assert_eq!(eval(&e, &env()).unwrap(), Value::bit(8, 44));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = CExpr::Binary(
            BinOp::Div,
            Box::new(CExpr::Const(Value::Int(1))),
            Box::new(CExpr::Const(Value::Int(0))),
        );
        assert!(eval(&e, &env()).is_err());
    }

    #[test]
    fn short_circuit() {
        // false and (1/0 == 1) must not evaluate the division.
        let div = CExpr::Binary(
            BinOp::Eq,
            Box::new(CExpr::Binary(
                BinOp::Div,
                Box::new(CExpr::Const(Value::Int(1))),
                Box::new(CExpr::Const(Value::Int(0))),
            )),
            Box::new(CExpr::Const(Value::Int(1))),
        );
        let e = CExpr::Binary(
            BinOp::And,
            Box::new(CExpr::Const(Value::Bool(false))),
            Box::new(div),
        );
        assert_eq!(eval(&e, &env()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn casts() {
        assert_eq!(
            eval_cast(Value::Int(300), &Type::Bit(8)).unwrap(),
            Value::bit(8, 44)
        );
        assert_eq!(
            eval_cast(Value::bit(8, 44), &Type::Int).unwrap(),
            Value::Int(44)
        );
        assert_eq!(
            eval_cast(Value::Int(2), &Type::Double).unwrap(),
            Value::Double(F64(2.0))
        );
    }

    #[test]
    fn aggregates() {
        let b = |x: i128, y: i128| Arc::new(vec![Value::Int(x), Value::Int(y)]);
        let mut g: ZSet<Binding> = ZSet::new();
        g.add(b(1, 5), 1);
        g.add(b(2, 5), 2); // weight 2
        g.add(b(3, 7), 1);

        let arg = CExpr::Var(1);
        assert_eq!(
            eval_aggregate(AggFunc::Count, None, &g).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_aggregate(AggFunc::CountDistinct, Some(&arg), &g).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Sum, Some(&arg), &g).unwrap(),
            Value::Int(5 + 5 + 5 + 7)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Min, Some(&arg), &g).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Max, Some(&arg), &g).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_aggregate(AggFunc::CollectSet, Some(&arg), &g).unwrap(),
            Value::set(vec![Value::Int(5), Value::Int(7)])
        );
        assert_eq!(
            eval_aggregate(AggFunc::CollectVec, Some(&arg), &g).unwrap(),
            Value::vec(vec![
                Value::Int(5),
                Value::Int(5),
                Value::Int(5),
                Value::Int(7)
            ])
        );
    }

    #[test]
    fn comparisons_on_structured_values() {
        let l = Value::tuple(vec![Value::Int(1), Value::str("a")]);
        let r = Value::tuple(vec![Value::Int(1), Value::str("b")]);
        assert_eq!(eval_binary(BinOp::Lt, l, r).unwrap(), Value::Bool(true));
    }
}
