//! Tokenizer for the DDlog-style dialect.

use crate::error::{Error, Phase, Pos, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Non-negative integer literal.
    Int(i128),
    /// Floating literal.
    Double(f64),
    /// String literal (escapes already processed).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.` (rule terminator)
    Dot,
    /// `:-`
    Turnstile,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `_`
    Underscore,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Double(d) => write!(f, "double {d}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Turnstile => write!(f, "`:-`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::Underscore => write!(f, "`_`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with the position where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenize a full source string.
///
/// Comments: `// line` and `/* block */` (non-nesting).
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                bump!();
                bump!();
                let mut closed = false;
                while i + 1 < chars.len() {
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        bump!();
                        bump!();
                        closed = true;
                        break;
                    }
                    bump!();
                }
                if !closed {
                    return Err(Error::at(Phase::Lex, pos, "unterminated block comment"));
                }
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let s: String = chars[start..i].iter().collect();
            out.push(Spanned {
                tok: Tok::Ident(s),
                pos,
            });
            continue;
        }
        // `_` alone is a wildcard; `_foo` is an identifier.
        if c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let s: String = chars[start..i].iter().collect();
            if s == "_" {
                out.push(Spanned {
                    tok: Tok::Underscore,
                    pos,
                });
            } else {
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            continue;
        }
        // Numbers: decimal, 0x hex, 0b binary, and doubles like `1.5`.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < chars.len() && (chars[i + 1] == 'x' || chars[i + 1] == 'b') {
                let radix = if chars[i + 1] == 'x' { 16 } else { 2 };
                bump!();
                bump!();
                let dstart = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                let digits: String = chars[dstart..i].iter().filter(|c| **c != '_').collect();
                let val = i128::from_str_radix(&digits, radix).map_err(|_| {
                    Error::at(Phase::Lex, pos, format!("bad integer literal `{digits}`"))
                })?;
                out.push(Spanned {
                    tok: Tok::Int(val),
                    pos,
                });
                continue;
            }
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                bump!();
            }
            // A `.` followed by a digit makes it a double; a lone `.` is the
            // rule terminator.
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                bump!();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    bump!();
                }
                // Optional exponent.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    bump!();
                    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                        bump!();
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
                let val: f64 = text.parse().map_err(|_| {
                    Error::at(Phase::Lex, pos, format!("bad double literal `{text}`"))
                })?;
                out.push(Spanned {
                    tok: Tok::Double(val),
                    pos,
                });
                continue;
            }
            let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
            let val: i128 = text
                .parse()
                .map_err(|_| Error::at(Phase::Lex, pos, format!("bad integer literal `{text}`")))?;
            out.push(Spanned {
                tok: Tok::Int(val),
                pos,
            });
            continue;
        }
        // String literals.
        if c == '"' {
            bump!();
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                let ch = chars[i];
                if ch == '"' {
                    bump!();
                    closed = true;
                    break;
                }
                if ch == '\\' {
                    bump!();
                    if i >= chars.len() {
                        break;
                    }
                    let esc = chars[i];
                    bump!();
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '\\' => '\\',
                        '"' => '"',
                        '0' => '\0',
                        other => {
                            return Err(Error::at(
                                Phase::Lex,
                                pos,
                                format!("unknown escape `\\{other}`"),
                            ))
                        }
                    });
                    continue;
                }
                s.push(ch);
                bump!();
            }
            if !closed {
                return Err(Error::at(Phase::Lex, pos, "unterminated string literal"));
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                pos,
            });
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < chars.len() {
            Some((chars[i], chars[i + 1]))
        } else {
            None
        };
        let tok2 = match two {
            Some((':', '-')) => Some(Tok::Turnstile),
            Some(('=', '=')) => Some(Tok::EqEq),
            Some(('!', '=')) => Some(Tok::Ne),
            Some(('<', '=')) => Some(Tok::Le),
            Some(('>', '=')) => Some(Tok::Ge),
            Some(('<', '<')) => Some(Tok::Shl),
            Some(('>', '>')) => Some(Tok::Shr),
            Some(('+', '+')) => Some(Tok::PlusPlus),
            _ => None,
        };
        if let Some(t) = tok2 {
            bump!();
            bump!();
            out.push(Spanned { tok: t, pos });
            continue;
        }
        let tok1 = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            ':' => Tok::Colon,
            '=' => Tok::Assign,
            '<' => Tok::Lt,
            '>' => Tok::Gt,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '&' => Tok::Amp,
            '|' => Tok::Pipe,
            '^' => Tok::Caret,
            '~' => Tok::Tilde,
            other => {
                return Err(Error::at(
                    Phase::Lex,
                    pos,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        bump!();
        out.push(Spanned { tok: tok1, pos });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_rule() {
        let t = toks("R(x) :- S(x, _).");
        assert_eq!(
            t,
            vec![
                Tok::Ident("R".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("S".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Comma,
                Tok::Underscore,
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("0xff")[0], Tok::Int(255));
        assert_eq!(toks("0b101")[0], Tok::Int(5));
        assert_eq!(toks("1_000")[0], Tok::Int(1000));
        assert_eq!(toks("1.5")[0], Tok::Double(1.5));
        assert_eq!(toks("2.5e2")[0], Tok::Double(250.0));
    }

    #[test]
    fn int_then_dot_is_rule_end() {
        // `R(1).` must lex the dot separately.
        let t = toks("1.");
        assert_eq!(t, vec![Tok::Int(1), Tok::Dot, Tok::Eof]);
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
        assert_eq!(toks(r#""say \"hi\"""#)[0], Tok::Str("say \"hi\"".into()));
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = toks("a // comment\n b /* c */ d");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
        assert!(lex("/* unclosed").is_err());
    }

    #[test]
    fn two_char_ops() {
        let t = toks(":- == != <= >= << >> ++");
        assert_eq!(
            t,
            vec![
                Tok::Turnstile,
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::PlusPlus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let s = lex("a\n  b").unwrap();
        assert_eq!(s[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(s[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn underscore_prefixed_ident() {
        assert_eq!(toks("_x")[0], Tok::Ident("_x".into()));
        assert_eq!(toks("_")[0], Tok::Underscore);
    }
}
