//! Stratification: dependency analysis over relations.
//!
//! Rules induce edges from each body relation to the head relation. Edges
//! are *strict* when the dependency passes through negation or aggregation
//! — those must not occur inside a recursive cycle (the classic Datalog
//! stratification restriction, shared with DDlog). The result is an
//! ordered list of strata; each stratum is one strongly connected
//! component of relations, marked recursive if it genuinely cycles.

use std::collections::{HashMap, HashSet};

use crate::ast::{BodyItem, Program, RelationRole};
use crate::error::{Error, Phase, Result};

/// One stratum: a set of mutually recursive relations and the indices of
/// the rules whose heads are in it.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Names of the relations computed in this stratum.
    pub relations: Vec<String>,
    /// Indices into `program.rules` of the rules headed here.
    pub rule_indices: Vec<usize>,
    /// True if the stratum contains a recursive cycle (needs fixpoint
    /// iteration and delete–re-derive on retractions).
    pub recursive: bool,
}

/// The full stratification of a program.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Strata in evaluation (topological) order. Input relations do not
    /// appear in any stratum.
    pub strata: Vec<Stratum>,
    /// Relation name → stratum index (derived relations only).
    pub stratum_of: HashMap<String, usize>,
}

/// Compute the stratification, rejecting programs where negation or
/// aggregation appears in a cycle.
pub fn stratify(program: &Program) -> Result<Stratification> {
    // Collect nodes: derived (non-input) relations.
    let derived: HashSet<&str> = program
        .relations
        .iter()
        .filter(|r| r.role != RelationRole::Input)
        .map(|r| r.name.as_str())
        .collect();

    // Edges between derived relations, with strictness.
    // strict=true if through negation/aggregation.
    let mut edges: HashMap<&str, Vec<(&str, bool)>> = HashMap::new();
    for name in &derived {
        edges.insert(name, Vec::new());
    }
    for rule in &program.rules {
        let head = rule.head.relation.as_str();
        let has_agg = rule
            .body
            .iter()
            .any(|b| matches!(b, BodyItem::Aggregate { .. }));
        for item in &rule.body {
            let (rel, neg) = match item {
                BodyItem::Atom(a) => (a.relation.as_str(), false),
                BodyItem::Not(a) => (a.relation.as_str(), true),
                _ => continue,
            };
            if derived.contains(rel) {
                // Aggregation makes every dependency of the rule strict:
                // the aggregate reads the *complete* contents of the
                // prefix, so the sources must be fully computed first.
                let strict = neg || has_agg;
                edges.get_mut(rel).unwrap().push((head, strict));
            }
        }
    }

    // Tarjan SCC over derived relations.
    let nodes: Vec<&str> = {
        let mut v: Vec<&str> = derived.iter().copied().collect();
        v.sort_unstable(); // determinism
        v
    };
    let index_of: HashMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            let mut targets: Vec<usize> = edges[*n].iter().map(|(t, _)| index_of[*t]).collect();
            targets.sort_unstable();
            targets.dedup();
            targets
        })
        .collect();

    let sccs = tarjan(&adj);

    // Map node -> scc id.
    let mut scc_of = vec![0usize; nodes.len()];
    for (sid, comp) in sccs.iter().enumerate() {
        for &n in comp {
            scc_of[n] = sid;
        }
    }

    // Validate: no strict edge within an SCC.
    for (src, outs) in &edges {
        for (dst, strict) in outs {
            if *strict && scc_of[index_of[src]] == scc_of[index_of[dst]] {
                return Err(Error::new(
                    Phase::Stratify,
                    format!(
                        "relation `{dst}` depends on `{src}` through negation or aggregation \
                         inside a recursive cycle; the program is not stratifiable"
                    ),
                ));
            }
        }
    }

    // Tarjan emits SCCs in reverse topological order; reverse for
    // evaluation order.
    let sccs: Vec<Vec<usize>> = sccs.into_iter().rev().collect();

    // Detect self-recursion for singleton SCCs.
    let mut strata = Vec::with_capacity(sccs.len());
    let mut stratum_of = HashMap::new();
    for comp in &sccs {
        let rel_names: Vec<String> = {
            let mut v: Vec<String> = comp.iter().map(|&n| nodes[n].to_string()).collect();
            v.sort();
            v
        };
        let comp_set: HashSet<&str> = rel_names.iter().map(|s| s.as_str()).collect();
        let mut recursive = comp.len() > 1;
        if !recursive {
            // Self loop?
            let n = rel_names[0].as_str();
            recursive = edges[n].iter().any(|(t, _)| *t == n);
        }
        let mut rule_indices = Vec::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            if comp_set.contains(rule.head.relation.as_str()) {
                rule_indices.push(ri);
            }
        }
        let sid = strata.len();
        for r in &rel_names {
            stratum_of.insert(r.clone(), sid);
        }
        strata.push(Stratum {
            relations: rel_names,
            rule_indices,
            recursive,
        });
    }

    Ok(Stratification { strata, stratum_of })
}

/// Iterative Tarjan SCC. Returns components in reverse topological order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS stack: (node, child iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call_stack.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn strat(src: &str) -> Result<Stratification> {
        stratify(&parse_program(src).unwrap())
    }

    #[test]
    fn linear_program_single_strata() {
        let s = strat(
            "
            input relation A(x: bigint)
            relation B(x: bigint)
            output relation C(x: bigint)
            B(x) :- A(x).
            C(x) :- B(x).
            ",
        )
        .unwrap();
        assert_eq!(s.strata.len(), 2);
        assert!(!s.strata[0].recursive);
        assert!(s.stratum_of["B"] < s.stratum_of["C"]);
    }

    #[test]
    fn recursion_detected() {
        let s = strat(
            "
            input relation Edge(a: string, b: string)
            output relation Reach(a: string, b: string)
            Reach(a, b) :- Edge(a, b).
            Reach(a, c) :- Reach(a, b), Edge(b, c).
            ",
        )
        .unwrap();
        assert_eq!(s.strata.len(), 1);
        assert!(s.strata[0].recursive);
        assert_eq!(s.strata[0].rule_indices, vec![0, 1]);
    }

    #[test]
    fn mutual_recursion_one_stratum() {
        let s = strat(
            "
            input relation E(a: bigint, b: bigint)
            relation Odd(a: bigint, b: bigint)
            output relation Even(a: bigint, b: bigint)
            Even(a, a) :- E(a, _).
            Odd(a, c) :- Even(a, b), E(b, c).
            Even(a, c) :- Odd(a, b), E(b, c).
            ",
        )
        .unwrap();
        assert_eq!(s.strata.len(), 1);
        assert!(s.strata[0].recursive);
        assert_eq!(
            s.strata[0].relations,
            vec!["Even".to_string(), "Odd".to_string()]
        );
    }

    #[test]
    fn negation_in_cycle_rejected() {
        let e = strat(
            "
            input relation E(a: bigint)
            output relation P(a: bigint)
            relation Q(a: bigint)
            P(a) :- E(a), not Q(a).
            Q(a) :- P(a).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("not stratifiable"), "{}", e.msg);
    }

    #[test]
    fn negation_across_strata_ok() {
        let s = strat(
            "
            input relation E(a: bigint)
            relation Q(a: bigint)
            output relation P(a: bigint)
            Q(a) :- E(a), a > 10.
            P(a) :- E(a), not Q(a).
            ",
        )
        .unwrap();
        assert!(s.stratum_of["Q"] < s.stratum_of["P"]);
    }

    #[test]
    fn aggregation_in_cycle_rejected() {
        let e = strat(
            "
            input relation E(a: bigint)
            output relation P(a: bigint)
            P(n) :- P(a), var n = count(a) group_by (a).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("not stratifiable"), "{}", e.msg);
    }

    #[test]
    fn negation_of_input_in_recursive_rule_ok() {
        // Negating an *input* relation inside recursion is fine — inputs
        // are constant during the fixpoint.
        strat(
            "
            input relation Edge(a: bigint, b: bigint)
            input relation Dead(a: bigint)
            output relation Reach(a: bigint, b: bigint)
            Reach(a, b) :- Edge(a, b), not Dead(b).
            Reach(a, c) :- Reach(a, b), Edge(b, c), not Dead(c).
            ",
        )
        .unwrap();
    }
}
