//! Error types for the DDlog-style engine.
//!
//! All phases (lexing, parsing, type checking, stratification, evaluation)
//! report through [`Error`], carrying a source position where one is known.

use std::fmt;

/// A position in the program source text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The phase of the pipeline in which an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization of source text.
    Lex,
    /// Parsing tokens to an AST.
    Parse,
    /// Type checking and rule-safety analysis.
    Type,
    /// Stratification (negation / aggregation cycles).
    Stratify,
    /// Runtime evaluation (bad values, arithmetic, transactions).
    Eval,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
            Phase::Stratify => "stratify",
            Phase::Eval => "eval",
        };
        f.write_str(s)
    }
}

/// An error produced by any phase of the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Source position, if known.
    pub pos: Option<Pos>,
    /// Human-readable description.
    pub msg: String,
}

impl Error {
    /// Create an error with a known source position.
    pub fn at(phase: Phase, pos: Pos, msg: impl Into<String>) -> Self {
        Error {
            phase,
            pos: Some(pos),
            msg: msg.into(),
        }
    }

    /// Create an error without a source position (e.g. runtime errors).
    pub fn new(phase: Phase, msg: impl Into<String>) -> Self {
        Error {
            phase,
            pos: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} error at {}: {}", self.phase, p, self.msg),
            None => write!(f, "{} error: {}", self.phase, self.msg),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
