//! Z-sets: multisets with signed integer weights.
//!
//! A Z-set maps elements to non-zero weights. Relation *contents* are
//! Z-sets with positive weights (derivation counts); relation *changes*
//! (deltas) are Z-sets where positive weight means insertion and negative
//! means deletion. All incremental evaluation in [`crate::chain`] is
//! expressed as algebra over Z-sets, following the DBSP/IVM literature the
//! paper builds on.

use std::collections::HashMap;
use std::hash::Hash;

/// A finite map from elements to non-zero `isize` weights.
///
/// The invariant "no zero weights are stored" is maintained by every
/// mutating operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZSet<T: Eq + Hash> {
    entries: HashMap<T, isize>,
}

impl<T: Eq + Hash> Default for ZSet<T> {
    fn default() -> Self {
        ZSet {
            entries: HashMap::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> ZSet<T> {
    /// The empty Z-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A Z-set containing a single element with the given weight.
    pub fn singleton(elem: T, weight: isize) -> Self {
        let mut z = Self::new();
        z.add(elem, weight);
        z
    }

    /// Number of distinct elements with non-zero weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no element has non-zero weight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of `elem` (0 if absent).
    pub fn weight(&self, elem: &T) -> isize {
        self.entries.get(elem).copied().unwrap_or(0)
    }

    /// Add `weight` to the weight of `elem`, removing it if it becomes 0.
    ///
    /// Weight arithmetic saturates: an overflowing sum clamps at
    /// `isize::MAX`/`isize::MIN` instead of silently wrapping (wrapping
    /// would flip a huge positive derivation count negative, corrupting
    /// every downstream distinct/negation decision).
    pub fn add(&mut self, elem: T, weight: isize) {
        if weight == 0 {
            return;
        }
        match self.entries.entry(elem) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let w = o.get_mut();
                *w = w.saturating_add(weight);
                if *w == 0 {
                    o.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(weight);
            }
        }
    }

    /// Add every entry of `other` into `self` (Z-set addition).
    pub fn add_all(&mut self, other: &ZSet<T>) {
        for (e, w) in other.iter() {
            self.add(e.clone(), w);
        }
    }

    /// Consume `other`, adding its entries into `self`.
    pub fn merge(&mut self, other: ZSet<T>) {
        for (e, w) in other.entries {
            self.add(e, w);
        }
    }

    /// Iterate over `(element, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&T, isize)> {
        self.entries.iter().map(|(e, w)| (e, *w))
    }

    /// Consume the Z-set, yielding `(element, weight)` pairs.
    pub fn into_iter_weighted(self) -> impl Iterator<Item = (T, isize)> {
        self.entries.into_iter()
    }

    /// The negation (all weights flipped).
    pub fn negate(&self) -> ZSet<T> {
        ZSet {
            entries: self.entries.iter().map(|(e, w)| (e.clone(), -w)).collect(),
        }
    }

    /// The *distinct* projection: every element with weight > 0 maps to
    /// weight 1. This converts a derivation-counted multiset to its set
    /// semantics.
    pub fn distinct(&self) -> ZSet<T> {
        ZSet {
            entries: self
                .entries
                .iter()
                .filter(|(_, w)| **w > 0)
                .map(|(e, _)| (e.clone(), 1))
                .collect(),
        }
    }

    /// Given that `self` is the current *contents* (positive weights) and
    /// `delta` is about to be added, return the change in the distinct
    /// (set-semantics) view: +1 for elements going 0 → >0, −1 for
    /// elements going >0 → 0.
    pub fn distinct_delta(&self, delta: &ZSet<T>) -> ZSet<T> {
        let mut out = ZSet::new();
        for (e, w) in delta.iter() {
            let old = self.weight(e);
            let new = old.saturating_add(w);
            debug_assert!(new >= 0, "contents would go negative");
            if old <= 0 && new > 0 {
                out.add(e.clone(), 1);
            } else if old > 0 && new <= 0 {
                out.add(e.clone(), -1);
            }
        }
        out
    }

    /// True if every weight is positive.
    pub fn all_positive(&self) -> bool {
        self.entries.values().all(|w| *w > 0)
    }

    /// Elements with positive weight, ignoring multiplicity.
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().filter(|(_, w)| **w > 0).map(|(e, _)| e)
    }

    /// Map elements through `f`, combining weights of collisions.
    pub fn map<U: Eq + Hash + Clone>(&self, mut f: impl FnMut(&T) -> U) -> ZSet<U> {
        let mut out = ZSet::new();
        for (e, w) in self.iter() {
            out.add(f(e), w);
        }
        out
    }

    /// Retain only elements satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&T) -> bool) -> ZSet<T> {
        ZSet {
            entries: self
                .entries
                .iter()
                .filter(|(e, _)| pred(e))
                .map(|(e, w)| (e.clone(), *w))
                .collect(),
        }
    }
}

impl<T: Eq + Hash + Clone> FromIterator<(T, isize)> for ZSet<T> {
    fn from_iter<I: IntoIterator<Item = (T, isize)>>(iter: I) -> Self {
        let mut z = ZSet::new();
        for (e, w) in iter {
            z.add(e, w);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(pairs: &[(&str, isize)]) -> ZSet<String> {
        pairs.iter().map(|(s, w)| (s.to_string(), *w)).collect()
    }

    #[test]
    fn add_cancels_to_zero() {
        let mut s = ZSet::new();
        s.add("a", 2);
        s.add("a", -2);
        assert!(s.is_empty());
        assert_eq!(s.weight(&"a"), 0);
    }

    #[test]
    fn add_all_and_negate() {
        let a = z(&[("x", 1), ("y", 2)]);
        let b = a.negate();
        let mut c = a.clone();
        c.add_all(&b);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_clamps() {
        let a = z(&[("x", 3), ("y", 1), ("z", -1)]);
        let d = a.distinct();
        assert_eq!(d.weight(&"x".to_string()), 1);
        assert_eq!(d.weight(&"y".to_string()), 1);
        assert_eq!(d.weight(&"z".to_string()), 0);
    }

    #[test]
    fn distinct_delta_edges() {
        let contents = z(&[("a", 2), ("b", 1)]);
        // a: 2 -> 1 (no set change), b: 1 -> 0 (leaves), c: 0 -> 1 (enters)
        let delta = z(&[("a", -1), ("b", -1), ("c", 1)]);
        let dd = contents.distinct_delta(&delta);
        assert_eq!(dd.weight(&"a".to_string()), 0);
        assert_eq!(dd.weight(&"b".to_string()), -1);
        assert_eq!(dd.weight(&"c".to_string()), 1);
    }

    #[test]
    fn map_merges_collisions() {
        let a = z(&[("aa", 1), ("ab", 2), ("ba", 5)]);
        let m = a.map(|s| s.chars().next().unwrap());
        assert_eq!(m.weight(&'a'), 3);
        assert_eq!(m.weight(&'b'), 5);
    }

    #[test]
    fn filter_keeps_weights() {
        let a = z(&[("keep", 4), ("drop", 7)]);
        let f = a.filter(|s| s.starts_with('k'));
        assert_eq!(f.weight(&"keep".to_string()), 4);
        assert_eq!(f.len(), 1);
    }
}
