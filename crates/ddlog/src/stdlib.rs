//! Builtin function library: type signatures and evaluation.
//!
//! DDlog pairs its relational core with a procedural library for string
//! processing, arithmetic helpers, and container manipulation (§4.1 of the
//! paper: "a powerful procedural language ... string processing, regular
//! expressions, iteration"). This module provides the equivalent library
//! for our dialect. All functions are pure.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::{Error, Phase, Pos, Result};
use crate::types::Type;
use crate::value::{mask_to_width, Value, F64};

/// Type-check a call to builtin `name` with argument types `args`.
/// Returns the result type.
pub fn check_call(name: &str, args: &[Type], pos: Pos) -> Result<Type> {
    let err = |msg: String| -> Result<Type> { Err(Error::at(Phase::Type, pos, msg)) };
    let want = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::at(
                Phase::Type,
                pos,
                format!("`{name}` expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    match name {
        // ---- strings -------------------------------------------------
        "string_len" => {
            want(1)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            Ok(Type::Int)
        }
        "string_contains" | "string_starts_with" | "string_ends_with" => {
            want(2)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            expect_ty(name, &args[1], &Type::Str, pos)?;
            Ok(Type::Bool)
        }
        "string_substr" => {
            want(3)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            expect_int(name, &args[1], pos)?;
            expect_int(name, &args[2], pos)?;
            Ok(Type::Str)
        }
        "to_lowercase" | "to_uppercase" | "string_trim" | "string_reverse" => {
            want(1)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            Ok(Type::Str)
        }
        "string_split" => {
            want(2)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            expect_ty(name, &args[1], &Type::Str, pos)?;
            Ok(Type::Vec(Box::new(Type::Str)))
        }
        "string_join" => {
            want(2)?;
            expect_ty(name, &args[0], &Type::Vec(Box::new(Type::Str)), pos)?;
            expect_ty(name, &args[1], &Type::Str, pos)?;
            Ok(Type::Str)
        }
        "to_string" => {
            want(1)?;
            Ok(Type::Str)
        }
        "parse_int" => {
            want(1)?;
            expect_ty(name, &args[0], &Type::Str, pos)?;
            Ok(Type::Int)
        }
        "hex" => {
            want(1)?;
            expect_int(name, &args[0], pos)?;
            Ok(Type::Str)
        }
        // ---- numeric -------------------------------------------------
        "abs" => {
            want(1)?;
            if !args[0].is_numeric() {
                return err(format!("`abs` needs a numeric argument, got {}", args[0]));
            }
            Ok(args[0].clone())
        }
        "min" | "max" => {
            want(2)?;
            let t = args[0].unify(&args[1]).ok_or_else(|| {
                Error::at(
                    Phase::Type,
                    pos,
                    format!(
                        "`{name}` arguments must have the same type, got {} and {}",
                        args[0], args[1]
                    ),
                )
            })?;
            Ok(t)
        }
        "pow" => {
            want(2)?;
            expect_int(name, &args[0], pos)?;
            expect_int(name, &args[1], pos)?;
            Ok(args[0].clone())
        }
        "hash64" => {
            want(1)?;
            Ok(Type::Bit(64))
        }
        // ---- containers ------------------------------------------------
        "vec_len" => {
            want(1)?;
            match &args[0] {
                Type::Vec(_) => Ok(Type::Int),
                t => err(format!("`vec_len` needs Vec, got {t}")),
            }
        }
        "vec_contains" => {
            want(2)?;
            match &args[0] {
                Type::Vec(e) if e.compatible(&args[1]) => Ok(Type::Bool),
                t => err(format!("`vec_contains` needs Vec<{}>, got {t}", args[1])),
            }
        }
        "vec_push" => {
            want(2)?;
            match &args[0] {
                Type::Vec(e) => {
                    let u = e.unify(&args[1]).ok_or_else(|| {
                        Error::at(
                            Phase::Type,
                            pos,
                            "vec_push element type mismatch".to_string(),
                        )
                    })?;
                    Ok(Type::Vec(Box::new(u)))
                }
                t => err(format!("`vec_push` needs Vec, got {t}")),
            }
        }
        "set_len" => {
            want(1)?;
            match &args[0] {
                Type::Set(_) => Ok(Type::Int),
                t => err(format!("`set_len` needs Set, got {t}")),
            }
        }
        "set_contains" => {
            want(2)?;
            match &args[0] {
                Type::Set(e) if e.compatible(&args[1]) => Ok(Type::Bool),
                t => err(format!("`set_contains` needs Set<{}>, got {t}", args[1])),
            }
        }
        "set_to_vec" => {
            want(1)?;
            match &args[0] {
                Type::Set(e) => Ok(Type::Vec(e.clone())),
                t => err(format!("`set_to_vec` needs Set, got {t}")),
            }
        }
        "map_contains_key" => {
            want(2)?;
            match &args[0] {
                Type::Map(k, _) if k.compatible(&args[1]) => Ok(Type::Bool),
                t => err(format!(
                    "`map_contains_key` needs Map with key {}, got {t}",
                    args[1]
                )),
            }
        }
        "map_get_or" => {
            want(3)?;
            match &args[0] {
                Type::Map(k, v) if k.compatible(&args[1]) => {
                    let u = v.unify(&args[2]).ok_or_else(|| {
                        Error::at(
                            Phase::Type,
                            pos,
                            "map_get_or default type mismatch".to_string(),
                        )
                    })?;
                    Ok(u)
                }
                t => err(format!(
                    "`map_get_or` needs Map with key {}, got {t}",
                    args[1]
                )),
            }
        }
        "tuple_nth" => {
            // tuple_nth(t, i) with a literal index is resolved by the type
            // checker directly; reaching here means the index was dynamic.
            err("`tuple_nth` requires a literal index".to_string())
        }
        _ => err(format!("unknown function `{name}`")),
    }
}

fn expect_ty(name: &str, got: &Type, want: &Type, pos: Pos) -> Result<()> {
    if got.compatible(want) {
        Ok(())
    } else {
        Err(Error::at(
            Phase::Type,
            pos,
            format!("`{name}`: expected {want}, got {got}"),
        ))
    }
}

fn expect_int(name: &str, got: &Type, pos: Pos) -> Result<()> {
    if got.is_integral() {
        Ok(())
    } else {
        Err(Error::at(
            Phase::Type,
            pos,
            format!("`{name}`: expected an integer type, got {got}"),
        ))
    }
}

/// Evaluate builtin `name` on `args`. Types were already checked; any
/// residual mismatch is an internal error.
pub fn eval_call(name: &str, args: &[Value]) -> Result<Value> {
    let ierr = || Error::new(Phase::Eval, format!("internal: bad args for `{name}`"));
    Ok(match name {
        "string_len" => Value::Int(args[0].as_str().ok_or_else(ierr)?.chars().count() as i128),
        "string_contains" => {
            let (s, sub) = two_strs(args).ok_or_else(ierr)?;
            Value::Bool(s.contains(sub))
        }
        "string_starts_with" => {
            let (s, sub) = two_strs(args).ok_or_else(ierr)?;
            Value::Bool(s.starts_with(sub))
        }
        "string_ends_with" => {
            let (s, sub) = two_strs(args).ok_or_else(ierr)?;
            Value::Bool(s.ends_with(sub))
        }
        "string_substr" => {
            let s = args[0].as_str().ok_or_else(ierr)?;
            let start = args[1].as_i128().ok_or_else(ierr)?.max(0) as usize;
            let end = args[2].as_i128().ok_or_else(ierr)?.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = end.min(chars.len());
            let start = start.min(end);
            Value::str(chars[start..end].iter().collect::<String>())
        }
        "to_lowercase" => Value::str(args[0].as_str().ok_or_else(ierr)?.to_lowercase()),
        "to_uppercase" => Value::str(args[0].as_str().ok_or_else(ierr)?.to_uppercase()),
        "string_trim" => Value::str(args[0].as_str().ok_or_else(ierr)?.trim()),
        "string_reverse" => Value::str(
            args[0]
                .as_str()
                .ok_or_else(ierr)?
                .chars()
                .rev()
                .collect::<String>(),
        ),
        "string_split" => {
            let (s, sep) = two_strs(args).ok_or_else(ierr)?;
            Value::vec(s.split(sep).map(Value::str).collect())
        }
        "string_join" => {
            let v = match &args[0] {
                Value::Vec(v) => v,
                _ => return Err(ierr()),
            };
            let sep = args[1].as_str().ok_or_else(ierr)?;
            let parts: Vec<&str> = v.iter().filter_map(Value::as_str).collect();
            Value::str(parts.join(sep))
        }
        "to_string" => match &args[0] {
            // Strings stringify without quotes, unlike their Display form.
            Value::Str(s) => Value::Str(s.clone()),
            other => Value::str(other.to_string()),
        },
        "parse_int" => Value::Int(
            args[0]
                .as_str()
                .ok_or_else(ierr)?
                .trim()
                .parse::<i128>()
                .unwrap_or(0),
        ),
        "hex" => {
            let v = args[0].as_u128().ok_or_else(ierr)?;
            Value::str(format!("{v:x}"))
        }
        "abs" => match &args[0] {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            Value::Double(d) => Value::Double(F64(d.0.abs())),
            b @ Value::Bit { .. } => b.clone(),
            _ => return Err(ierr()),
        },
        "min" => std::cmp::min(&args[0], &args[1]).clone(),
        "max" => std::cmp::max(&args[0], &args[1]).clone(),
        "pow" => {
            let b = args[0].clone();
            let e = args[1].as_u128().ok_or_else(ierr)? as u32;
            match b {
                Value::Int(b) => Value::Int(b.wrapping_pow(e)),
                Value::Bit { width, val } => Value::Bit {
                    width,
                    val: mask_to_width(val.wrapping_pow(e), width),
                },
                _ => return Err(ierr()),
            }
        }
        "hash64" => {
            // FNV-1a over the value's display form: deterministic across
            // runs and platforms, which matters for reproducible benches.
            let s = args[0].to_string();
            let mut h: u64 = 0xcbf29ce484222325;
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Value::Bit {
                width: 64,
                val: h as u128,
            }
        }
        "vec_len" => match &args[0] {
            Value::Vec(v) => Value::Int(v.len() as i128),
            _ => return Err(ierr()),
        },
        "vec_contains" => match &args[0] {
            Value::Vec(v) => Value::Bool(v.contains(&args[1])),
            _ => return Err(ierr()),
        },
        "vec_push" => match &args[0] {
            Value::Vec(v) => {
                let mut v2 = (**v).clone();
                v2.push(args[1].clone());
                Value::Vec(Arc::new(v2))
            }
            _ => return Err(ierr()),
        },
        "set_len" => match &args[0] {
            Value::Set(s) => Value::Int(s.len() as i128),
            _ => return Err(ierr()),
        },
        "set_contains" => match &args[0] {
            Value::Set(s) => Value::Bool(s.contains(&args[1])),
            _ => return Err(ierr()),
        },
        "set_to_vec" => match &args[0] {
            Value::Set(s) => Value::vec(s.iter().cloned().collect()),
            _ => return Err(ierr()),
        },
        "map_contains_key" => match &args[0] {
            Value::Map(m) => Value::Bool(m.contains_key(&args[1])),
            _ => return Err(ierr()),
        },
        "map_get_or" => match &args[0] {
            Value::Map(m) => m.get(&args[1]).cloned().unwrap_or_else(|| args[2].clone()),
            _ => return Err(ierr()),
        },
        other => {
            return Err(Error::new(
                Phase::Eval,
                format!("unknown function `{other}`"),
            ))
        }
    })
}

fn two_strs(args: &[Value]) -> Option<(&str, &str)> {
    Some((args[0].as_str()?, args[1].as_str()?))
}

/// The empty-set constant of a given element type, used by aggregation.
pub fn empty_set() -> Value {
    Value::Set(Arc::new(BTreeSet::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Pos;

    fn p() -> Pos {
        Pos { line: 1, col: 1 }
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_call("string_len", &[Value::str("héllo")]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_call("string_split", &[Value::str("a,b,c"), Value::str(",")]).unwrap(),
            Value::vec(vec![Value::str("a"), Value::str("b"), Value::str("c")])
        );
        assert_eq!(
            eval_call(
                "string_join",
                &[
                    Value::vec(vec![Value::str("a"), Value::str("b")]),
                    Value::str("-")
                ]
            )
            .unwrap(),
            Value::str("a-b")
        );
        assert_eq!(
            eval_call(
                "string_substr",
                &[Value::str("hello"), Value::Int(1), Value::Int(3)]
            )
            .unwrap(),
            Value::str("el")
        );
        // Out-of-range substr clamps instead of panicking.
        assert_eq!(
            eval_call(
                "string_substr",
                &[Value::str("hi"), Value::Int(5), Value::Int(9)]
            )
            .unwrap(),
            Value::str("")
        );
    }

    #[test]
    fn to_string_of_string_unquoted() {
        assert_eq!(
            eval_call("to_string", &[Value::str("x")]).unwrap(),
            Value::str("x")
        );
        assert_eq!(
            eval_call("to_string", &[Value::Int(5)]).unwrap(),
            Value::str("5")
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval_call("abs", &[Value::Int(-5)]).unwrap(), Value::Int(5));
        assert_eq!(
            eval_call("min", &[Value::Int(3), Value::Int(7)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_call("pow", &[Value::bit(8, 2), Value::Int(10)]).unwrap(),
            Value::bit(8, 0) // 1024 masked to 8 bits
        );
        assert_eq!(
            eval_call("parse_int", &[Value::str(" 42 ")]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            eval_call("parse_int", &[Value::str("zap")]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn hash_is_deterministic() {
        let a = eval_call("hash64", &[Value::str("port1")]).unwrap();
        let b = eval_call("hash64", &[Value::str("port1")]).unwrap();
        let c = eval_call("hash64", &[Value::str("port2")]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn container_functions() {
        let v = Value::vec(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            eval_call("vec_len", std::slice::from_ref(&v)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_call("vec_contains", &[v.clone(), Value::Int(2)]).unwrap(),
            Value::Bool(true)
        );
        let v3 = eval_call("vec_push", &[v, Value::Int(3)]).unwrap();
        assert_eq!(eval_call("vec_len", &[v3]).unwrap(), Value::Int(3));

        let m = Value::map(vec![(Value::str("k"), Value::Int(9))]);
        assert_eq!(
            eval_call("map_get_or", &[m.clone(), Value::str("k"), Value::Int(0)]).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            eval_call("map_get_or", &[m, Value::str("nope"), Value::Int(0)]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn signatures() {
        assert_eq!(
            check_call("string_len", &[Type::Str], p()).unwrap(),
            Type::Int
        );
        assert!(check_call("string_len", &[Type::Int], p()).is_err());
        assert!(check_call("string_len", &[Type::Str, Type::Str], p()).is_err());
        assert!(check_call("no_such_fn", &[], p()).is_err());
        assert_eq!(
            check_call("min", &[Type::Bit(8), Type::Bit(8)], p()).unwrap(),
            Type::Bit(8)
        );
        assert!(check_call("min", &[Type::Bit(8), Type::Str], p()).is_err());
        assert_eq!(
            check_call("hash64", &[Type::Str], p()).unwrap(),
            Type::Bit(64)
        );
    }
}
