//! The static type system.
//!
//! Types annotate relation columns and are inferred for rule variables and
//! expressions by [`crate::typecheck`]. The system is deliberately simple —
//! monomorphic, structural — which is enough for SDN control programs while
//! keeping cross-plane code generation predictable.

use std::fmt;

/// A DDlog-dialect type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `bool`
    Bool,
    /// `bigint` — arbitrary precision in the language, `i128` at runtime.
    Int,
    /// `bit<N>` — fixed-width unsigned integer, 1..=128 bits.
    Bit(u16),
    /// `double`
    Double,
    /// `string`
    Str,
    /// `uuid`
    Uuid,
    /// `Vec<T>`
    Vec(Box<Type>),
    /// `Set<T>`
    Set(Box<Type>),
    /// `Map<K, V>`
    Map(Box<Type>, Box<Type>),
    /// `(T1, T2, ...)`
    Tuple(Vec<Type>),
    /// Placeholder during inference; never appears in a checked program.
    Unknown,
}

impl Type {
    /// True if `self` and `other` are compatible, treating `Unknown` as a
    /// wildcard (used while inference is still resolving).
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Unknown, _) | (_, Type::Unknown) => true,
            (Type::Vec(a), Type::Vec(b)) | (Type::Set(a), Type::Set(b)) => a.compatible(b),
            (Type::Map(ak, av), Type::Map(bk, bv)) => ak.compatible(bk) && av.compatible(bv),
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            _ => self == other,
        }
    }

    /// Merge two compatible types, preferring the more specific one.
    /// Returns `None` if they are incompatible.
    pub fn unify(&self, other: &Type) -> Option<Type> {
        match (self, other) {
            (Type::Unknown, t) | (t, Type::Unknown) => Some(t.clone()),
            (Type::Vec(a), Type::Vec(b)) => Some(Type::Vec(Box::new(a.unify(b)?))),
            (Type::Set(a), Type::Set(b)) => Some(Type::Set(Box::new(a.unify(b)?))),
            (Type::Map(ak, av), Type::Map(bk, bv)) => {
                Some(Type::Map(Box::new(ak.unify(bk)?), Box::new(av.unify(bv)?)))
            }
            (Type::Tuple(a), Type::Tuple(b)) if a.len() == b.len() => {
                let mut out = Vec::with_capacity(a.len());
                for (x, y) in a.iter().zip(b) {
                    out.push(x.unify(y)?);
                }
                Some(Type::Tuple(out))
            }
            _ if self == other => Some(self.clone()),
            _ => None,
        }
    }

    /// True for types that support arithmetic (`+ - * / %`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Bit(_) | Type::Double)
    }

    /// True for integer types that support bitwise ops and shifts.
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int | Type::Bit(_))
    }

    /// True if the type still contains `Unknown` somewhere.
    pub fn has_unknown(&self) -> bool {
        match self {
            Type::Unknown => true,
            Type::Vec(t) | Type::Set(t) => t.has_unknown(),
            Type::Map(k, v) => k.has_unknown() || v.has_unknown(),
            Type::Tuple(ts) => ts.iter().any(Type::has_unknown),
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => f.write_str("bool"),
            Type::Int => f.write_str("bigint"),
            Type::Bit(w) => write!(f, "bit<{w}>"),
            Type::Double => f.write_str("double"),
            Type::Str => f.write_str("string"),
            Type::Uuid => f.write_str("uuid"),
            Type::Vec(t) => write!(f, "Vec<{t}>"),
            Type::Set(t) => write!(f, "Set<{t}>"),
            Type::Map(k, v) => write!(f, "Map<{k},{v}>"),
            Type::Tuple(ts) => {
                f.write_str("(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(")")
            }
            Type::Unknown => f.write_str("?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Type::Bit(12).to_string(), "bit<12>");
        assert_eq!(
            Type::Map(Box::new(Type::Str), Box::new(Type::Int)).to_string(),
            "Map<string,bigint>"
        );
        assert_eq!(
            Type::Tuple(vec![Type::Bool, Type::Str]).to_string(),
            "(bool, string)"
        );
    }

    #[test]
    fn unify_prefers_specific() {
        let v_unknown = Type::Vec(Box::new(Type::Unknown));
        let v_int = Type::Vec(Box::new(Type::Int));
        assert_eq!(v_unknown.unify(&v_int), Some(v_int.clone()));
        assert_eq!(v_int.unify(&Type::Vec(Box::new(Type::Str))), None);
        assert!(v_unknown.has_unknown());
        assert!(!v_int.has_unknown());
    }

    #[test]
    fn compatibility() {
        assert!(Type::Unknown.compatible(&Type::Bit(4)));
        assert!(!Type::Bit(4).compatible(&Type::Bit(5)));
        assert!(Type::Tuple(vec![Type::Unknown, Type::Int])
            .compatible(&Type::Tuple(vec![Type::Str, Type::Int])));
    }
}
