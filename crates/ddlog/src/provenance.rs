//! Per-tuple provenance: the justification ledger behind
//! [`crate::engine::Engine::why`] and [`crate::engine::Engine::why_not`].
//!
//! When an engine is built with [`ProvenanceConfig::on`], every head row
//! derived by the incremental chain ([`crate::chain`]) is captured
//! together with the rule and the final binding (environment) that
//! produced it. The [`Ledger`] keeps one entry per `(rule, environment)`
//! justification with a count that mirrors the row's derivation count —
//! the same +w/−w stream the chain's bilinear deltas emit — so a
//! retraction prunes exactly the justification whose support vanished,
//! with no scanning and no stale references.
//!
//! Supporting *input rows* are deliberately not stored: they are
//! reconstructed on demand by projecting the recorded environment back
//! through each atom's column sources ([`crate::plan::atom_col_srcs`])
//! and probing the live stores (reusing the PR 7 shared arrangements).
//! A justification therefore can never point at a retracted fact — if
//! the fact is gone, the chain has already retracted the justification
//! itself. Relations in recursive strata are evaluated by driven search
//! with set semantics (no per-derivation counts), so their derivations
//! are likewise found on demand with the same driven machinery
//! ([`crate::recursive::explain_stages`]).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ast::RelationRole;
use crate::cexpr::{eval, eval_aggregate, Binding};
use crate::chain::RuleState;
use crate::error::{Error, Phase, Result};
use crate::plan::{atom_col_srcs, ColSrc, CompiledProgram, CompiledRule, HeadBind, PStage};
use crate::recursive::explain_stages;
use crate::store::{RelId, RelationStore};
use crate::value::{Row, Value};

/// Whether an engine maintains the provenance ledger. Fixed at
/// construction ([`crate::engine::Engine::from_source_with`]): capture
/// hooks and ledger state exist only when enabled, so a disabled engine
/// pays nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceConfig {
    /// Maintain per-tuple justifications alongside evaluation.
    pub enabled: bool,
}

impl ProvenanceConfig {
    /// Provenance on.
    pub fn on() -> ProvenanceConfig {
        ProvenanceConfig { enabled: true }
    }

    /// Provenance off (the default).
    pub fn off() -> ProvenanceConfig {
        ProvenanceConfig { enabled: false }
    }
}

/// Sentinel `plan_idx` for rows installed by declared facts
/// (`R(10).`) rather than by a rule.
pub(crate) const FACT: usize = usize::MAX;

/// One recorded justification of a derived row: the rule (by plan
/// index) and the final environment, with a count of how many
/// derivations currently flow through it.
#[derive(Debug, Clone)]
pub(crate) struct JustEntry {
    /// Index into [`CompiledProgram::rules`], or [`FACT`].
    pub plan_idx: usize,
    /// The final binding the chain evaluated the head under (post-
    /// aggregate layout for aggregate rules). Empty for facts.
    pub env: Binding,
    /// Net derivation count through this (rule, env); always positive.
    pub count: isize,
}

/// Approximate resident bytes of one ledger environment.
fn env_bytes(env: &Binding) -> usize {
    env.iter().map(crate::store::value_bytes).sum::<usize>() + 48
}

/// The justification ledger: per derived row, the `(rule, environment)`
/// pairs that currently support it, plus the last-touch stamp per row
/// (the flight-recorder trace and commit that most recently inserted
/// it).
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    justs: HashMap<(RelId, Row), Vec<JustEntry>>,
    touch: HashMap<(RelId, Row), (u64, u64)>,
    entries: usize,
    bytes: usize,
}

impl Ledger {
    /// Fold one captured derivation (`±w`) into the ledger.
    pub fn apply(&mut self, rel: RelId, plan_idx: usize, row: Row, env: Binding, w: isize) {
        if w == 0 {
            return;
        }
        let key = (rel, row);
        let list = self.justs.entry(key.clone()).or_default();
        if let Some(e) = list
            .iter_mut()
            .find(|e| e.plan_idx == plan_idx && e.env == env)
        {
            e.count += w;
            if e.count == 0 {
                self.bytes = self.bytes.saturating_sub(env_bytes(&env));
                self.entries -= 1;
                list.retain(|e| e.count != 0);
                if list.is_empty() {
                    self.justs.remove(&key);
                }
            }
        } else {
            self.bytes += env_bytes(&env);
            self.entries += 1;
            list.push(JustEntry {
                plan_idx,
                env,
                count: w,
            });
        }
    }

    /// Stamp `row`'s last touch (set-level insert) with a trace/commit.
    pub fn stamp(&mut self, rel: RelId, row: &Row, trace: u64, commit: u64) {
        self.touch.insert((rel, row.clone()), (trace, commit));
    }

    /// Forget the stamp of a retracted row.
    pub fn unstamp(&mut self, rel: RelId, row: &Row) {
        self.touch.remove(&(rel, row.clone()));
    }

    /// The (trace, commit) that last inserted `row`, if stamped.
    pub fn last_touch(&self, rel: RelId, row: &Row) -> Option<(u64, u64)> {
        self.touch.get(&(rel, row.clone())).copied()
    }

    /// Justifications of one row (empty when untracked).
    pub fn entries_of(&self, rel: RelId, row: &Row) -> &[JustEntry] {
        self.justs
            .get(&(rel, row.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate all `(rel, row) → justifications`.
    pub fn iter(&self) -> impl Iterator<Item = (&(RelId, Row), &Vec<JustEntry>)> {
        self.justs.iter()
    }

    /// Number of justification entries across all rows.
    pub fn total_entries(&self) -> usize {
        self.entries
    }

    /// Number of rows with at least one justification.
    pub fn total_rows(&self) -> usize {
        self.justs.len()
    }

    /// Approximate resident bytes of recorded environments.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// Query results

/// One node of a derivation tree: a fact and how it is justified.
#[derive(Debug, Clone)]
pub struct WhyNode {
    /// Relation name.
    pub relation: String,
    /// The row.
    pub row: Vec<Value>,
    /// True when this is a base fact: an `input` relation row mirrored
    /// from outside (OVSDB in the full stack).
    pub base: bool,
    /// `(trace, commit)` of the flight-recorder trace that last
    /// inserted this row, when stamped.
    pub touch: Option<(u64, u64)>,
    /// The justifications (at least one for a visible derived row).
    pub justs: Vec<WhyJust>,
    /// True when this row already appears higher up the tree (cycle in
    /// a recursive stratum); its justifications are not repeated.
    pub repeated: bool,
    /// Truncation or limit notes, if any.
    pub note: Option<String>,
}

/// One justification of a node: a rule application (or declared fact)
/// and its supporting literals.
#[derive(Debug, Clone)]
pub struct WhyJust {
    /// Source rule index, or `None` for a declared fact.
    pub rule_index: Option<usize>,
    /// Human-readable rule rendering.
    pub rule: String,
    /// The supporting literals, in body order.
    pub supports: Vec<WhySupport>,
    /// Truncation notes (support or contributor caps), if any.
    pub note: Option<String>,
}

/// One supporting literal of a justification.
#[derive(Debug, Clone)]
pub enum WhySupport {
    /// A positive atom's supporting fact, recursively explained.
    Fact(WhyNode),
    /// A satisfied negation: no row matches `pattern` in `relation`.
    Absent {
        /// The negated relation.
        relation: String,
        /// The pattern no row matches, e.g. `Blocked(3, _)`.
        pattern: String,
    },
}

/// The report of [`crate::engine::Engine::why_not`]: per candidate
/// rule, the first failing literal that blocks a derivation.
#[derive(Debug, Clone)]
pub struct WhyNot {
    /// Relation name.
    pub relation: String,
    /// The absent row.
    pub row: Vec<Value>,
    /// True when the row is actually present (use `why` instead).
    pub present: bool,
    /// True when the relation is an input: nothing derives it, the row
    /// simply was never inserted.
    pub input: bool,
    /// One report per candidate rule with this head relation.
    pub candidates: Vec<CandidateReport>,
}

/// Why one candidate rule fails to derive the target row.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Source rule index.
    pub rule_index: usize,
    /// Human-readable rule rendering.
    pub rule: String,
    /// Pipeline stage of the first failing literal (`None` when the
    /// head itself is incompatible).
    pub stage: Option<usize>,
    /// Description of the first failing literal.
    pub failure: String,
}

// ---------------------------------------------------------------------------
// Rendering

fn fmt_row(relation: &str, row: &[Value]) -> String {
    let vals: Vec<String> = row.iter().map(Value::to_string).collect();
    format!("{}({})", relation, vals.join(", "))
}

fn fmt_touch(touch: Option<(u64, u64)>) -> String {
    match touch {
        Some((0, commit)) => format!("  [commit {commit}]"),
        Some((trace, commit)) => format!("  [trace {trace} @ commit {commit}]"),
        None => String::new(),
    }
}

impl WhyNode {
    /// Render the derivation tree as indented text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        let tag = if self.base { " — base" } else { "" };
        let rep = if self.repeated {
            " (derivation shown above)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{pad}{}{tag}{rep}{}",
            fmt_row(&self.relation, &self.row),
            fmt_touch(self.touch)
        );
        if let Some(n) = &self.note {
            let _ = writeln!(out, "{pad}  ({n})");
        }
        for j in &self.justs {
            match j.rule_index {
                Some(i) => {
                    let _ = writeln!(out, "{pad}  via rule {i}: {}", j.rule);
                }
                None => {
                    let _ = writeln!(out, "{pad}  via declared fact");
                }
            }
            if let Some(n) = &j.note {
                let _ = writeln!(out, "{pad}    ({n})");
            }
            for s in &j.supports {
                match s {
                    WhySupport::Fact(n) => n.render_into(out, depth + 2),
                    WhySupport::Absent { pattern, .. } => {
                        let _ = writeln!(out, "{pad}    no row matches {pattern} — negation holds");
                    }
                }
            }
        }
    }

    /// Render the derivation tree as JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let js = telemetry::metrics::json_string;
        let _ = write!(
            out,
            "{{\"relation\":{},\"row\":[{}],\"base\":{},\"repeated\":{}",
            js(&self.relation),
            self.row
                .iter()
                .map(|v| js(&v.to_string()))
                .collect::<Vec<_>>()
                .join(","),
            self.base,
            self.repeated
        );
        match self.touch {
            Some((trace, commit)) => {
                let _ = write!(out, ",\"trace\":{trace},\"commit\":{commit}");
            }
            None => {
                let _ = write!(out, ",\"trace\":null,\"commit\":null");
            }
        }
        if let Some(n) = &self.note {
            let _ = write!(out, ",\"note\":{}", js(n));
        }
        out.push_str(",\"justifications\":[");
        for (i, j) in self.justs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rule = j
                .rule_index
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"rule\":{rule},\"text\":{},\"supports\":[",
                js(&j.rule)
            );
            for (k, s) in j.supports.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                match s {
                    WhySupport::Fact(n) => {
                        out.push_str("{\"kind\":\"fact\",\"node\":");
                        n.json_into(out);
                        out.push('}');
                    }
                    WhySupport::Absent { relation, pattern } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"absent\",\"relation\":{},\"pattern\":{}}}",
                            js(relation),
                            js(pattern)
                        );
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }

    /// True when every leaf of the tree is a base (input) fact or a
    /// satisfied negation — the acceptance shape of a complete
    /// explanation.
    pub fn rooted_in_base(&self) -> bool {
        if self.base {
            return true;
        }
        if self.repeated {
            // The expansion lives higher in the tree.
            return true;
        }
        !self.justs.is_empty()
            && self.justs.iter().all(|j| {
                j.supports.iter().all(|s| match s {
                    WhySupport::Fact(n) => n.rooted_in_base(),
                    WhySupport::Absent { .. } => true,
                })
            })
    }
}

impl WhyNot {
    /// Render the report as text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let target = fmt_row(&self.relation, &self.row);
        if self.present {
            let _ = writeln!(out, "{target} is present — ask why, not why-not");
            return out;
        }
        if self.input {
            let _ = writeln!(
                out,
                "{target} is an input-relation row that was never inserted \
                 (nothing derives input relations)"
            );
            return out;
        }
        let _ = writeln!(out, "{target} is not derivable:");
        if self.candidates.is_empty() {
            let _ = writeln!(out, "  no rule has this head relation");
        }
        for c in &self.candidates {
            let at = match c.stage {
                Some(s) => format!(" at stage {s}"),
                None => String::new(),
            };
            let _ = writeln!(out, "  rule {} ({}):{at}", c.rule_index, c.rule);
            let _ = writeln!(out, "    {}", c.failure);
        }
        out
    }

    /// Render the report as JSON.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let js = telemetry::metrics::json_string;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"relation\":{},\"row\":[{}],\"present\":{},\"input\":{},\"candidates\":[",
            js(&self.relation),
            self.row
                .iter()
                .map(|v| js(&v.to_string()))
                .collect::<Vec<_>>()
                .join(","),
            self.present,
            self.input
        );
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let stage = c
                .stage
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"rule\":{},\"text\":{},\"stage\":{stage},\"failure\":{}}}",
                c.rule_index,
                js(&c.rule),
                js(&c.failure)
            );
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Queries

/// Everything a provenance query needs from the engine.
pub(crate) struct QueryCtx<'a> {
    pub compiled: &'a CompiledProgram,
    pub stores: &'a [RelationStore],
    pub rule_states: &'a [RuleState],
    /// Per plan index: whether the rule runs in a recursive stratum.
    pub recursive_plans: &'a [bool],
    pub ledger: Option<&'a Ledger>,
    /// Rule index → human-readable rendering.
    pub rule_text: &'a dyn Fn(usize) -> String,
}

/// Depth cap of a derivation tree.
const MAX_DEPTH: usize = 32;
/// Max support rows listed per atom (wildcard atoms can match many).
const MAX_SUPPORT_ROWS: usize = 8;
/// Max justifications expanded per node.
const MAX_JUSTS: usize = 4;
/// Max aggregate contributors expanded per justification.
const MAX_CONTRIBUTORS: usize = 16;
/// Row-examination budget of one driven derivation search.
const SEARCH_BUDGET: usize = 50_000;

impl<'a> QueryCtx<'a> {
    fn describe(&self) -> impl Fn(RelId) -> (String, usize) + '_ {
        |rel| {
            let d = &self.compiled.decls[rel];
            (d.name.clone(), d.arity())
        }
    }

    fn head_row(&self, rule: &CompiledRule, env: &[Value]) -> Result<Vec<Value>> {
        let mut row = Vec::with_capacity(rule.head_exprs.len());
        for e in &rule.head_exprs {
            row.push(eval(e, env)?);
        }
        Ok(row)
    }

    /// Plan indices of the rules headed at `rel`.
    fn rules_of(&self, rel: RelId) -> Vec<usize> {
        (0..self.compiled.rules.len())
            .filter(|pi| self.compiled.rules[*pi].head_rel == rel)
            .collect()
    }

    /// True when `rel` is maintained by a recursive stratum.
    fn is_recursive(&self, rel: RelId) -> bool {
        self.rules_of(rel)
            .iter()
            .any(|pi| self.recursive_plans[*pi])
    }
}

/// Map a head row onto init bindings via `head_binds`. `Err(reason)`
/// when a head constant rules the row out entirely.
fn head_init(
    rule: &CompiledRule,
    row: &[Value],
) -> std::result::Result<Option<Vec<(usize, Value)>>, String> {
    let Some(binds) = &rule.head_binds else {
        return Ok(None);
    };
    let mut init = Vec::new();
    for (hb, v) in binds.iter().zip(row.iter()) {
        match hb {
            HeadBind::Slot(s) => init.push((*s, v.clone())),
            HeadBind::Const(c) => {
                if c != v {
                    return Err(format!(
                        "head constant {c} can never equal the target's {v}"
                    ));
                }
            }
        }
    }
    Ok(Some(init))
}

/// The column pattern of an atom under a fully bound environment.
fn stage_pattern(stage: &PStage, env: &[Value], arity: usize) -> Vec<Option<Value>> {
    let mut pattern = vec![None; arity];
    for (col, src) in atom_col_srcs(stage) {
        pattern[col] = Some(match src {
            ColSrc::Const(v) => v,
            ColSrc::Slot(s) => env[s].clone(),
        });
    }
    pattern
}

fn fmt_pattern(relation: &str, pattern: &[Option<Value>]) -> String {
    let cols: Vec<String> = pattern
        .iter()
        .map(|p| match p {
            Some(v) => v.to_string(),
            None => "_".to_string(),
        })
        .collect();
    format!("{}({})", relation, cols.join(", "))
}

/// Build the derivation tree of a visible row.
pub(crate) fn why(ctx: &QueryCtx<'_>, rel: RelId, row: &Row) -> Result<WhyNode> {
    let mut stack = Vec::new();
    why_node(ctx, rel, row, &mut stack, 0)
}

fn why_node(
    ctx: &QueryCtx<'_>,
    rel: RelId,
    row: &Row,
    stack: &mut Vec<(RelId, Row)>,
    depth: usize,
) -> Result<WhyNode> {
    let decl = &ctx.compiled.decls[rel];
    let mut node = WhyNode {
        relation: decl.name.clone(),
        row: (**row).clone(),
        base: decl.role == RelationRole::Input,
        touch: ctx.ledger.and_then(|l| l.last_touch(rel, row)),
        justs: Vec::new(),
        repeated: false,
        note: None,
    };
    if node.base {
        return Ok(node);
    }
    if stack.iter().any(|(r, w)| *r == rel && w == row) {
        node.repeated = true;
        return Ok(node);
    }
    if depth >= MAX_DEPTH {
        node.note = Some(format!("depth limit {MAX_DEPTH} reached"));
        return Ok(node);
    }
    stack.push((rel, row.clone()));
    let result = if ctx.is_recursive(rel) {
        recursive_justs(ctx, rel, row, stack, depth)
    } else {
        ledger_justs(ctx, rel, row, stack, depth)
    };
    stack.pop();
    let (justs, note) = result?;
    node.justs = justs;
    node.note = note;
    Ok(node)
}

/// Justifications of a chain-maintained row, straight from the ledger.
fn ledger_justs(
    ctx: &QueryCtx<'_>,
    rel: RelId,
    row: &Row,
    stack: &mut Vec<(RelId, Row)>,
    depth: usize,
) -> Result<(Vec<WhyJust>, Option<String>)> {
    let Some(ledger) = ctx.ledger else {
        return Err(Error::new(
            Phase::Eval,
            "provenance is disabled; build the engine with ProvenanceConfig::on()".to_string(),
        ));
    };
    let mut entries: Vec<&JustEntry> = ledger.entries_of(rel, row).iter().collect();
    if entries.is_empty() {
        return Err(Error::new(
            Phase::Eval,
            format!(
                "no justification recorded for visible row {} — provenance ledger out of sync",
                fmt_row(&ctx.compiled.decls[rel].name, row)
            ),
        ));
    }
    entries.sort_by(|a, b| (a.plan_idx, &a.env).cmp(&(b.plan_idx, &b.env)));
    let mut justs = Vec::new();
    let mut note = None;
    for e in entries.iter().take(MAX_JUSTS) {
        if e.plan_idx == FACT {
            justs.push(WhyJust {
                rule_index: None,
                rule: "declared fact".to_string(),
                supports: Vec::new(),
                note: None,
            });
            continue;
        }
        justs.push(env_just(ctx, e.plan_idx, &e.env, stack, depth)?);
    }
    if entries.len() > MAX_JUSTS {
        note = Some(format!(
            "{} further justification(s) not shown",
            entries.len() - MAX_JUSTS
        ));
    }
    Ok((justs, note))
}

/// Justifications of a recursive-stratum row, found by driven search
/// over the live stores.
fn recursive_justs(
    ctx: &QueryCtx<'_>,
    rel: RelId,
    row: &Row,
    stack: &mut Vec<(RelId, Row)>,
    depth: usize,
) -> Result<(Vec<WhyJust>, Option<String>)> {
    let describe = ctx.describe();
    let mut justs = Vec::new();
    let mut truncated = false;
    for pi in ctx.rules_of(rel) {
        if justs.len() >= MAX_JUSTS {
            truncated = true;
            break;
        }
        let rule = &ctx.compiled.rules[pi];
        let init = match head_init(rule, row) {
            Ok(Some(init)) => init,
            Ok(None) => Vec::new(),
            Err(_) => continue, // head constant mismatch: not a candidate
        };
        let ex = explain_stages(
            &rule.stages,
            rule.n_slots,
            ctx.stores,
            &describe,
            &init,
            SEARCH_BUDGET,
            MAX_JUSTS,
        )?;
        truncated |= ex.truncated;
        for env in &ex.envs {
            if justs.len() >= MAX_JUSTS {
                truncated = true;
                break;
            }
            if ctx.head_row(rule, env)? != **row {
                continue; // head_binds was None; this valuation derives another row
            }
            justs.push(env_just(ctx, pi, env, stack, depth)?);
        }
    }
    if justs.is_empty() {
        return Err(Error::new(
            Phase::Eval,
            format!(
                "no derivation found for visible recursive row {} — engine state inconsistent",
                fmt_row(&ctx.compiled.decls[rel].name, row)
            ),
        ));
    }
    let note = truncated.then(|| "derivation search truncated".to_string());
    Ok((justs, note))
}

/// Expand one `(rule, environment)` justification into its supports.
fn env_just(
    ctx: &QueryCtx<'_>,
    pi: usize,
    env: &[Value],
    stack: &mut Vec<(RelId, Row)>,
    depth: usize,
) -> Result<WhyJust> {
    let rule = &ctx.compiled.rules[pi];
    let mut just = WhyJust {
        rule_index: Some(rule.rule_index),
        rule: (ctx.rule_text)(rule.rule_index),
        supports: Vec::new(),
        note: None,
    };
    let mut notes = Vec::new();
    if rule.has_aggregate {
        let ai = rule
            .stages
            .iter()
            .position(|s| matches!(s, PStage::Aggregate { .. }))
            .expect("aggregate rule without aggregate stage");
        let PStage::Aggregate { group_slots, .. } = &rule.stages[ai] else {
            unreachable!()
        };
        let key: Vec<Value> = env[..group_slots.len()].to_vec();
        let groups = ctx.rule_states[pi]
            .stage_groups(ai)
            .ok_or_else(|| Error::new(Phase::Eval, "aggregate stage without groups".to_string()))?;
        let mut contributors: Vec<&Binding> = groups
            .get(&key)
            .map(|z| z.support().collect())
            .unwrap_or_default();
        contributors.sort();
        if contributors.is_empty() {
            return Err(Error::new(
                Phase::Eval,
                "aggregation group vanished under a recorded justification — ledger out of sync"
                    .to_string(),
            ));
        }
        if contributors.len() > MAX_CONTRIBUTORS {
            notes.push(format!(
                "{} of {} aggregate contributors shown",
                MAX_CONTRIBUTORS,
                contributors.len()
            ));
            contributors.truncate(MAX_CONTRIBUTORS);
        }
        let mut seen: HashSet<(RelId, Row)> = HashSet::new();
        for contrib in contributors {
            collect_atom_supports(
                ctx,
                &rule.stages[..ai],
                contrib,
                stack,
                depth,
                &mut just.supports,
                &mut seen,
                &mut notes,
            )?;
        }
    } else {
        let mut seen: HashSet<(RelId, Row)> = HashSet::new();
        collect_atom_supports(
            ctx,
            &rule.stages,
            env,
            stack,
            depth,
            &mut just.supports,
            &mut seen,
            &mut notes,
        )?;
    }
    if !notes.is_empty() {
        just.note = Some(notes.join("; "));
    }
    Ok(just)
}

/// Reconstruct and expand the atom supports of one environment.
#[allow(clippy::too_many_arguments)]
fn collect_atom_supports(
    ctx: &QueryCtx<'_>,
    stages: &[PStage],
    env: &[Value],
    stack: &mut Vec<(RelId, Row)>,
    depth: usize,
    supports: &mut Vec<WhySupport>,
    seen: &mut HashSet<(RelId, Row)>,
    notes: &mut Vec<String>,
) -> Result<()> {
    for stage in stages {
        let PStage::Atom { rel, neg, .. } = stage else {
            continue;
        };
        let decl = &ctx.compiled.decls[*rel];
        let pattern = stage_pattern(stage, env, decl.arity());
        if *neg {
            supports.push(WhySupport::Absent {
                relation: decl.name.clone(),
                pattern: fmt_pattern(&decl.name, &pattern),
            });
            continue;
        }
        let (rows, truncated) = ctx.stores[*rel].matching_rows(&pattern, MAX_SUPPORT_ROWS);
        if truncated {
            notes.push(format!(
                "support rows of {} truncated at {MAX_SUPPORT_ROWS}",
                fmt_pattern(&decl.name, &pattern)
            ));
        }
        if rows.is_empty() {
            return Err(Error::new(
                Phase::Eval,
                format!(
                    "justification references {} but no visible row matches — \
                     dangling provenance",
                    fmt_pattern(&decl.name, &pattern)
                ),
            ));
        }
        for r in rows {
            if !seen.insert((*rel, r.clone())) {
                continue;
            }
            supports.push(WhySupport::Fact(why_node(ctx, *rel, &r, stack, depth + 1)?));
        }
    }
    Ok(())
}

/// Report why `row` is absent from `rel`: the first failing literal of
/// every candidate rule.
pub(crate) fn why_not(ctx: &QueryCtx<'_>, rel: RelId, row: &Row) -> Result<WhyNot> {
    let decl = &ctx.compiled.decls[rel];
    let mut report = WhyNot {
        relation: decl.name.clone(),
        row: (**row).clone(),
        present: ctx.stores[rel].contains(row),
        input: decl.role == RelationRole::Input,
        candidates: Vec::new(),
    };
    if report.present || report.input {
        return Ok(report);
    }
    let describe = ctx.describe();
    for pi in ctx.rules_of(rel) {
        let rule = &ctx.compiled.rules[pi];
        let text = (ctx.rule_text)(rule.rule_index);
        let mut push = |stage: Option<usize>, failure: String| {
            report.candidates.push(CandidateReport {
                rule_index: rule.rule_index,
                rule: text.clone(),
                stage,
                failure,
            });
        };
        let init = match head_init(rule, row) {
            Ok(Some(init)) => init,
            Ok(None) => Vec::new(),
            Err(reason) => {
                push(None, reason);
                continue;
            }
        };
        if rule.has_aggregate {
            let ai = rule
                .stages
                .iter()
                .position(|s| matches!(s, PStage::Aggregate { .. }))
                .expect("aggregate rule without aggregate stage");
            let PStage::Aggregate {
                group_slots,
                func,
                arg,
            } = &rule.stages[ai]
            else {
                unreachable!()
            };
            // Map post-aggregate init slots back onto the pre-aggregate
            // layout: slot j < |key| is group_slots[j]; slot |key| is
            // the aggregate result itself.
            let mut pre_init = Vec::new();
            let mut expected_agg = None;
            let mut invertible = !init.is_empty() || group_slots.is_empty();
            for (slot, v) in &init {
                if *slot < group_slots.len() {
                    pre_init.push((group_slots[*slot], v.clone()));
                } else {
                    expected_agg = Some(v.clone());
                }
            }
            if rule.head_binds.is_none() {
                invertible = false;
            }
            if !invertible {
                push(
                    None,
                    "cannot invert an aggregate head with computed arguments".to_string(),
                );
                continue;
            }
            let ex = explain_stages(
                &rule.stages[..ai],
                rule.n_slots,
                ctx.stores,
                &describe,
                &pre_init,
                SEARCH_BUDGET,
                1,
            )?;
            if ex.envs.is_empty() {
                let (stage, failure) = ex
                    .fail
                    .unwrap_or((0, "no rows reach the aggregate for this group".to_string()));
                push(Some(stage), failure);
                continue;
            }
            let key: Vec<Value> = group_slots.iter().map(|s| ex.envs[0][*s].clone()).collect();
            let groups = ctx.rule_states[pi].stage_groups(ai).ok_or_else(|| {
                Error::new(Phase::Eval, "aggregate stage without groups".to_string())
            })?;
            match groups.get(&key) {
                None => push(Some(ai), format!("aggregation group {key:?} is empty")),
                Some(group) => {
                    let agg = eval_aggregate(*func, arg.as_ref(), group)?;
                    match expected_agg {
                        Some(want) if agg != want => push(
                            Some(ai),
                            format!(
                                "the {} contributing row(s) aggregate to {agg}, \
                                 not the target's {want}",
                                group.support().count()
                            ),
                        ),
                        _ => push(
                            Some(ai),
                            "derivable from the current group — engine state inconsistent"
                                .to_string(),
                        ),
                    }
                }
            }
            continue;
        }
        let ex = explain_stages(
            &rule.stages,
            rule.n_slots,
            ctx.stores,
            &describe,
            &init,
            SEARCH_BUDGET,
            8,
        )?;
        if ex.envs.is_empty() {
            let (stage, failure) = ex
                .fail
                .unwrap_or((0, "rule body is never satisfiable".to_string()));
            push(Some(stage), failure);
            continue;
        }
        // Some valuation satisfies the body. With an invertible head the
        // init pinned the target, so this means derivable-but-absent;
        // otherwise the head maps elsewhere.
        let mut sample = None;
        let mut derivable = false;
        for env in &ex.envs {
            let head = ctx.head_row(rule, env)?;
            if head == **row {
                derivable = true;
                break;
            }
            sample.get_or_insert(head);
        }
        if derivable {
            push(
                Some(rule.stages.len()),
                "body satisfied and head matches — engine state inconsistent".to_string(),
            );
        } else {
            let sample = sample.expect("non-empty envs");
            push(
                Some(rule.stages.len()),
                format!(
                    "the rule fires but its head yields {}, not the target{}",
                    fmt_row(&ctx.compiled.decls[rel].name, &sample),
                    if ex.truncated {
                        " (search truncated)"
                    } else {
                        ""
                    }
                ),
            );
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Validation

/// Re-evaluate one recorded justification against the live stores.
fn check_justification(
    ctx: &QueryCtx<'_>,
    rel: RelId,
    row: &Row,
    e: &JustEntry,
) -> std::result::Result<(), String> {
    let rule = &ctx.compiled.rules[e.plan_idx];
    let target = fmt_row(&ctx.compiled.decls[rel].name, row);
    if rule.head_rel != rel {
        return Err(format!(
            "justification of {target} cites a rule with another head"
        ));
    }
    let head = ctx
        .head_row(rule, &e.env)
        .map_err(|err| format!("head of {target} no longer evaluates: {err}"))?;
    if head != **row {
        return Err(format!(
            "environment recorded for {target} now derives {}",
            fmt_row(&ctx.compiled.decls[rel].name, &head)
        ));
    }
    let stages: &[PStage] = if rule.has_aggregate {
        let ai = rule
            .stages
            .iter()
            .position(|s| matches!(s, PStage::Aggregate { .. }))
            .expect("aggregate rule without aggregate stage");
        let PStage::Aggregate {
            group_slots,
            func,
            arg,
        } = &rule.stages[ai]
        else {
            unreachable!()
        };
        let key: Vec<Value> = e.env[..group_slots.len()].to_vec();
        let groups = ctx.rule_states[e.plan_idx]
            .stage_groups(ai)
            .ok_or_else(|| "aggregate stage without groups".to_string())?;
        let group = groups
            .get(&key)
            .filter(|g| g.support().next().is_some())
            .ok_or_else(|| {
                format!("aggregation group of {target} is gone — dangling provenance")
            })?;
        let agg = eval_aggregate(*func, arg.as_ref(), group)
            .map_err(|err| format!("aggregate of {target} no longer evaluates: {err}"))?;
        if agg != e.env[group_slots.len()] {
            return Err(format!(
                "group of {target} now aggregates to {agg}, ledger says {}",
                e.env[group_slots.len()]
            ));
        }
        // The group's bindings are themselves incrementally maintained;
        // nothing further to re-check against the stores here.
        return Ok(());
    } else {
        &rule.stages
    };
    for (si, stage) in stages.iter().enumerate() {
        match stage {
            PStage::Atom { rel: arel, neg, .. } => {
                let decl = &ctx.compiled.decls[*arel];
                let pattern = stage_pattern(stage, &e.env, decl.arity());
                let (rows, _) = ctx.stores[*arel].matching_rows(&pattern, 1);
                if *neg && !rows.is_empty() {
                    return Err(format!(
                        "{target}: negation {} no longer holds",
                        fmt_pattern(&decl.name, &pattern)
                    ));
                }
                if !*neg && rows.is_empty() {
                    return Err(format!(
                        "{target}: support {} is gone — dangling provenance",
                        fmt_pattern(&decl.name, &pattern)
                    ));
                }
            }
            PStage::Filter { expr } => {
                let v = eval(expr, &e.env)
                    .map_err(|err| format!("{target}: filter no longer evaluates: {err}"))?;
                if v != Value::Bool(true) {
                    return Err(format!("{target}: filter at stage {si} is now false"));
                }
            }
            PStage::Assign { slot, expr } => {
                let v = eval(expr, &e.env)
                    .map_err(|err| format!("{target}: assign no longer evaluates: {err}"))?;
                if v != e.env[*slot] {
                    return Err(format!(
                        "{target}: assigned slot {slot} now computes {v}, env says {}",
                        e.env[*slot]
                    ));
                }
            }
            PStage::FlatMap { slot, expr } => {
                let coll = eval(expr, &e.env)
                    .map_err(|err| format!("{target}: flatmap no longer evaluates: {err}"))?;
                let elems = crate::chain::flatten(&coll)
                    .map_err(|err| format!("{target}: flatmap no longer flattens: {err}"))?;
                if !elems.contains(&e.env[*slot]) {
                    return Err(format!(
                        "{target}: flatmap element {} no longer in the collection",
                        e.env[*slot]
                    ));
                }
            }
            PStage::Aggregate { .. } => unreachable!("aggregate handled above"),
        }
    }
    Ok(())
}

/// Validate the whole ledger against the live stores: every recorded
/// justification re-evaluates, counts match the stores' derivation
/// counts, and every visible chain-derived row is justified. The
/// provenance analogue of
/// [`crate::engine::Engine::validate_arrangements`].
pub(crate) fn validate(ctx: &QueryCtx<'_>) -> Result<()> {
    let Some(ledger) = ctx.ledger else {
        return Err(Error::new(
            Phase::Eval,
            "provenance is disabled; build the engine with ProvenanceConfig::on()".to_string(),
        ));
    };
    let fail = |msg: String| Err(Error::new(Phase::Eval, msg));
    for ((rel, row), entries) in ledger.iter() {
        let target = fmt_row(&ctx.compiled.decls[*rel].name, row);
        if !ctx.stores[*rel].contains(row) {
            return fail(format!("ledger justifies {target}, which is not visible"));
        }
        let sum: isize = entries.iter().map(|e| e.count).sum();
        let count = ctx.stores[*rel].derivation_count(row);
        if sum != count {
            return fail(format!(
                "ledger counts for {target} sum to {sum}, store has {count} derivations"
            ));
        }
        for e in entries {
            if e.count <= 0 {
                return fail(format!("non-positive justification count on {target}"));
            }
            if e.plan_idx == FACT {
                let is_fact = ctx
                    .compiled
                    .facts
                    .iter()
                    .any(|(fr, fv)| fr == rel && fv == &**row);
                if !is_fact {
                    return fail(format!(
                        "{target} cites a declared fact that does not exist"
                    ));
                }
                continue;
            }
            if let Err(msg) = check_justification(ctx, *rel, row, e) {
                return fail(msg);
            }
        }
    }
    // Reverse direction: every visible chain-derived row is justified.
    let mut derived: Vec<bool> = vec![false; ctx.compiled.decls.len()];
    for rule in &ctx.compiled.rules {
        derived[rule.head_rel] = true;
    }
    for (rel, fact_row) in &ctx.compiled.facts {
        let _ = fact_row;
        derived[*rel] = true;
    }
    for (rel, is_derived) in derived.iter().enumerate() {
        if !is_derived || ctx.is_recursive(rel) {
            continue;
        }
        if ctx.compiled.decls[rel].role == RelationRole::Input {
            continue;
        }
        for (row, count) in ctx.stores[rel].rows_with_counts() {
            if count <= 0 {
                continue;
            }
            let sum: isize = ledger.entries_of(rel, row).iter().map(|e| e.count).sum();
            if sum != count {
                return fail(format!(
                    "visible row {} has {count} derivation(s) but ledger records {sum}",
                    fmt_row(&ctx.compiled.decls[rel].name, row)
                ));
            }
        }
    }
    Ok(())
}

/// The `/why` exposition document: ledger shape per relation.
pub(crate) fn summary_json(ctx: &QueryCtx<'_>, commits: u64) -> String {
    use std::fmt::Write as _;
    let js = telemetry::metrics::json_string;
    let mut out = String::new();
    let enabled = ctx.ledger.is_some();
    let _ = write!(
        out,
        "{{\"schema\":\"nerpa.why.v1\",\"enabled\":{enabled},\"commits\":{commits}"
    );
    if let Some(ledger) = ctx.ledger {
        let _ = write!(
            out,
            ",\"rows\":{},\"justifications\":{},\"approx_bytes\":{}",
            ledger.total_rows(),
            ledger.total_entries(),
            ledger.approx_bytes()
        );
        let mut per_rel: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for ((rel, _), entries) in ledger.iter() {
            let name = ctx.compiled.decls[*rel].name.as_str();
            let slot = per_rel.entry(name).or_default();
            slot.0 += 1;
            slot.1 += entries.len();
        }
        out.push_str(",\"relations\":[");
        for (i, (name, (rows, justs))) in per_rel.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"relation\":{},\"rows\":{rows},\"justifications\":{justs}}}",
                js(name)
            );
        }
        out.push(']');
    }
    out.push_str(
        ",\"usage\":\"Engine::why(relation, row) / Engine::why_not(relation, row); \
                  CLI: nerpa-why\"}",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::row;
    use std::sync::Arc;

    fn r(vals: &[i128]) -> Row {
        row(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    fn b(vals: &[i128]) -> Binding {
        Arc::new(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn ledger_counts_merge_and_prune() {
        let mut l = Ledger::default();
        l.apply(0, 1, r(&[7]), b(&[7, 1]), 1);
        l.apply(0, 1, r(&[7]), b(&[7, 1]), 1);
        l.apply(0, 1, r(&[7]), b(&[7, 2]), 1);
        assert_eq!(l.entries_of(0, &r(&[7])).len(), 2);
        assert_eq!(l.total_entries(), 2);
        let total: isize = l.entries_of(0, &r(&[7])).iter().map(|e| e.count).sum();
        assert_eq!(total, 3);

        l.apply(0, 1, r(&[7]), b(&[7, 1]), -2);
        assert_eq!(l.entries_of(0, &r(&[7])).len(), 1);
        l.apply(0, 1, r(&[7]), b(&[7, 2]), -1);
        assert!(l.entries_of(0, &r(&[7])).is_empty());
        assert_eq!(l.total_entries(), 0);
        assert_eq!(l.total_rows(), 0);
        assert_eq!(l.approx_bytes(), 0);
    }

    #[test]
    fn touch_stamping() {
        let mut l = Ledger::default();
        l.stamp(2, &r(&[1]), 42, 7);
        assert_eq!(l.last_touch(2, &r(&[1])), Some((42, 7)));
        l.stamp(2, &r(&[1]), 43, 8);
        assert_eq!(l.last_touch(2, &r(&[1])), Some((43, 8)));
        l.unstamp(2, &r(&[1]));
        assert_eq!(l.last_touch(2, &r(&[1])), None);
    }
}
