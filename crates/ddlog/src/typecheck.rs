//! Type checking and rule-safety analysis.
//!
//! This is where the paper's "fully type-checked program that spans the
//! entire network" guarantee lives: relation declarations (hand-written or
//! generated from the management/data planes) are checked against every
//! rule, variables are inferred, literals are coerced to their column
//! types, and unsafe rules (unbound head variables, unbound variables under
//! negation) are rejected.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{Error, Phase, Pos, Result};
use crate::stdlib;
use crate::types::Type;
use crate::value::{mask_to_width, Value, F64};

/// A type-checked program: the (rewritten) AST plus per-rule variable
/// types.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The program with implicit casts inserted.
    pub program: Program,
    /// For each rule (same order), the inferred type of every variable.
    pub var_types: Vec<HashMap<String, Type>>,
}

/// Type-check `program`, returning the annotated version.
pub fn check(program: &Program) -> Result<CheckedProgram> {
    let rels: HashMap<&str, &RelationDecl> = program
        .relations
        .iter()
        .map(|r| (r.name.as_str(), r))
        .collect();

    let mut new_rules = Vec::with_capacity(program.rules.len());
    let mut all_var_types = Vec::with_capacity(program.rules.len());

    for rule in &program.rules {
        let (rule, vars) = check_rule(rule, &rels)?;
        new_rules.push(rule);
        all_var_types.push(vars);
    }

    let mut program = program.clone();
    program.rules = new_rules;
    Ok(CheckedProgram {
        program,
        var_types: all_var_types,
    })
}

fn check_rule(
    rule: &Rule,
    rels: &HashMap<&str, &RelationDecl>,
) -> Result<(Rule, HashMap<String, Type>)> {
    let head_decl = rels.get(rule.head.relation.as_str()).ok_or_else(|| {
        Error::at(
            Phase::Type,
            rule.head.pos,
            format!("unknown relation `{}`", rule.head.relation),
        )
    })?;
    if head_decl.role == RelationRole::Input {
        return Err(Error::at(
            Phase::Type,
            rule.head.pos,
            format!(
                "input relation `{}` cannot appear in a rule head",
                head_decl.name
            ),
        ));
    }
    if rule.head.args.len() != head_decl.arity() {
        return Err(Error::at(
            Phase::Type,
            rule.head.pos,
            format!(
                "relation `{}` has {} column(s) but head has {} argument(s)",
                head_decl.name,
                head_decl.arity(),
                rule.head.args.len()
            ),
        ));
    }

    // The evaluator drives every rule from relation deltas, so a
    // non-empty body must start with a positive atom (facts are the only
    // body-less rules).
    if let Some(first) = rule.body.first() {
        if !matches!(first, BodyItem::Atom(_)) {
            return Err(Error::at(
                Phase::Type,
                first.pos(),
                "a rule body must start with a positive relation atom".to_string(),
            ));
        }
    }

    let mut scope: HashMap<String, Type> = HashMap::new();
    let mut new_body = Vec::with_capacity(rule.body.len());

    for item in &rule.body {
        match item {
            BodyItem::Atom(atom) => {
                let decl = atom_decl(atom, rels)?;
                check_atom_patterns(atom, decl, &mut scope, true)?;
                new_body.push(BodyItem::Atom(atom.clone()));
            }
            BodyItem::Not(atom) => {
                let decl = atom_decl(atom, rels)?;
                // Under negation every variable must already be bound.
                for (i, pat) in atom.args.iter().enumerate() {
                    if let Pattern::Var(v) = pat {
                        if !scope.contains_key(v) {
                            return Err(Error::at(
                                Phase::Type,
                                atom.pos,
                                format!(
                                    "variable `{v}` in negated atom `{}` (column {}) is not bound \
                                     by a preceding positive atom",
                                    decl.name, i
                                ),
                            ));
                        }
                    }
                }
                check_atom_patterns(atom, decl, &mut scope, false)?;
                new_body.push(BodyItem::Not(atom.clone()));
            }
            BodyItem::Cond(expr) => {
                let (ty, e) = check_expr(expr, &scope, Some(&Type::Bool))?;
                if ty != Type::Bool {
                    return Err(Error::at(
                        Phase::Type,
                        expr.pos,
                        format!("condition must be bool, got {ty}"),
                    ));
                }
                new_body.push(BodyItem::Cond(e));
            }
            BodyItem::Assign { var, expr, pos } => {
                if scope.contains_key(var) {
                    return Err(Error::at(
                        Phase::Type,
                        *pos,
                        format!("variable `{var}` is already bound"),
                    ));
                }
                let (ty, e) = check_expr(expr, &scope, None)?;
                scope.insert(var.clone(), ty);
                new_body.push(BodyItem::Assign {
                    var: var.clone(),
                    expr: e,
                    pos: *pos,
                });
            }
            BodyItem::FlatMap { var, expr, pos } => {
                if scope.contains_key(var) {
                    return Err(Error::at(
                        Phase::Type,
                        *pos,
                        format!("variable `{var}` is already bound"),
                    ));
                }
                let (ty, e) = check_expr(expr, &scope, None)?;
                let elem = match ty {
                    Type::Vec(t) | Type::Set(t) => *t,
                    Type::Map(k, v) => Type::Tuple(vec![*k, *v]),
                    other => {
                        return Err(Error::at(
                            Phase::Type,
                            *pos,
                            format!("FlatMap needs a Vec/Set/Map, got {other}"),
                        ))
                    }
                };
                if elem.has_unknown() {
                    return Err(Error::at(
                        Phase::Type,
                        *pos,
                        "cannot infer the element type of this FlatMap".to_string(),
                    ));
                }
                scope.insert(var.clone(), elem);
                new_body.push(BodyItem::FlatMap {
                    var: var.clone(),
                    expr: e,
                    pos: *pos,
                });
            }
            BodyItem::Aggregate {
                out_var,
                func,
                arg,
                by,
                pos,
            } => {
                if scope.contains_key(out_var) {
                    return Err(Error::at(
                        Phase::Type,
                        *pos,
                        format!("variable `{out_var}` is already bound"),
                    ));
                }
                let mut key_types = HashMap::new();
                for k in by {
                    let ty = scope.get(k).ok_or_else(|| {
                        Error::at(
                            Phase::Type,
                            *pos,
                            format!("group_by key `{k}` is not bound"),
                        )
                    })?;
                    key_types.insert(k.clone(), ty.clone());
                }
                let (arg_ty, new_arg) = match arg {
                    Some(a) => {
                        let (t, e) = check_expr(a, &scope, None)?;
                        (Some(t), Some(e))
                    }
                    None => (None, None),
                };
                let out_ty = aggregate_type(*func, arg_ty.as_ref(), *pos)?;
                // Scope collapses to keys + aggregate output.
                scope = key_types;
                scope.insert(out_var.clone(), out_ty);
                new_body.push(BodyItem::Aggregate {
                    out_var: out_var.clone(),
                    func: *func,
                    arg: new_arg,
                    by: by.clone(),
                    pos: *pos,
                });
            }
        }
    }

    // Head expressions: each checked against its column type.
    let mut new_head_args = Vec::with_capacity(rule.head.args.len());
    for (expr, (cname, cty)) in rule.head.args.iter().zip(&head_decl.columns) {
        let (ty, e) = check_expr(expr, &scope, Some(cty))?;
        if !ty.compatible(cty) {
            return Err(Error::at(
                Phase::Type,
                expr.pos,
                format!(
                    "head argument for column `{cname}` of `{}` has type {ty}, expected {cty}",
                    head_decl.name
                ),
            ));
        }
        new_head_args.push(e);
    }

    let new_rule = Rule {
        head: HeadAtom {
            relation: rule.head.relation.clone(),
            args: new_head_args,
            pos: rule.head.pos,
        },
        body: new_body,
        pos: rule.pos,
    };
    Ok((new_rule, scope))
}

fn atom_decl<'a>(atom: &Atom, rels: &HashMap<&str, &'a RelationDecl>) -> Result<&'a RelationDecl> {
    let decl = rels.get(atom.relation.as_str()).ok_or_else(|| {
        Error::at(
            Phase::Type,
            atom.pos,
            format!("unknown relation `{}`", atom.relation),
        )
    })?;
    if atom.args.len() != decl.arity() {
        return Err(Error::at(
            Phase::Type,
            atom.pos,
            format!(
                "relation `{}` has {} column(s) but atom has {} argument(s)",
                decl.name,
                decl.arity(),
                atom.args.len()
            ),
        ));
    }
    Ok(decl)
}

/// Check the patterns of an atom against its declaration, binding new
/// variables into `scope` when `bind` is true.
fn check_atom_patterns(
    atom: &Atom,
    decl: &RelationDecl,
    scope: &mut HashMap<String, Type>,
    bind: bool,
) -> Result<()> {
    for (pat, (cname, cty)) in atom.args.iter().zip(&decl.columns) {
        match pat {
            Pattern::Wildcard => {}
            Pattern::Var(v) => match scope.get(v) {
                Some(prev) => {
                    if !prev.compatible(cty) {
                        return Err(Error::at(
                            Phase::Type,
                            atom.pos,
                            format!(
                                "variable `{v}` has type {prev} but column `{cname}` of `{}` \
                                 is {cty}",
                                decl.name
                            ),
                        ));
                    }
                }
                None => {
                    if bind {
                        scope.insert(v.clone(), cty.clone());
                    }
                }
            },
            Pattern::Lit(lit) => {
                literal_value(lit, cty).map_err(|msg| Error::at(Phase::Type, atom.pos, msg))?;
            }
        }
    }
    Ok(())
}

/// The output type of an aggregate function applied to `arg_ty`.
pub fn aggregate_type(func: AggFunc, arg_ty: Option<&Type>, pos: Pos) -> Result<Type> {
    match func {
        AggFunc::Count | AggFunc::CountDistinct => Ok(Type::Int),
        AggFunc::Sum => {
            let t = arg_ty.unwrap();
            if !t.is_numeric() {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("sum over non-numeric {t}"),
                ));
            }
            Ok(t.clone())
        }
        AggFunc::Min | AggFunc::Max => Ok(arg_ty.unwrap().clone()),
        AggFunc::CollectVec => Ok(Type::Vec(Box::new(arg_ty.unwrap().clone()))),
        AggFunc::CollectSet => Ok(Type::Set(Box::new(arg_ty.unwrap().clone()))),
    }
}

/// Convert a literal to a [`Value`] of type `ty`, checking range.
pub fn literal_value(lit: &Literal, ty: &Type) -> std::result::Result<Value, String> {
    match (lit, ty) {
        (Literal::Bool(b), Type::Bool) => Ok(Value::Bool(*b)),
        (Literal::Int(i), Type::Int) => Ok(Value::Int(*i)),
        (Literal::Int(i), Type::Bit(w)) => {
            if *i < 0 {
                return Err(format!("negative literal {i} for bit<{w}>"));
            }
            let u = *i as u128;
            if mask_to_width(u, *w) != u {
                return Err(format!("literal {i} does not fit in bit<{w}>"));
            }
            Ok(Value::Bit { width: *w, val: u })
        }
        (Literal::Int(i), Type::Double) => Ok(Value::Double(F64(*i as f64))),
        (Literal::Double(d), Type::Double) => Ok(Value::Double(F64(*d))),
        (Literal::Str(s), Type::Str) => Ok(Value::str(s)),
        (Literal::Str(s), Type::Uuid) => match crate::value::Uuid::parse(s) {
            Some(u) => Ok(Value::Uuid(u)),
            None => Err(format!("string {s:?} is not a valid uuid")),
        },
        (l, t) => Err(format!("literal {l:?} is not of type {t}")),
    }
}

/// The natural type of a literal with no context.
fn literal_type(lit: &Literal) -> Type {
    match lit {
        Literal::Bool(_) => Type::Bool,
        Literal::Int(_) => Type::Int,
        Literal::Double(_) => Type::Double,
        Literal::Str(_) => Type::Str,
    }
}

/// Type-check an expression in `scope`, optionally against an expected
/// type. Returns the resolved type and a rewritten expression with any
/// implicit casts made explicit.
pub fn check_expr(
    expr: &Expr,
    scope: &HashMap<String, Type>,
    expected: Option<&Type>,
) -> Result<(Type, Expr)> {
    let (ty, mut e) = infer_expr(expr, scope)?;
    if let Some(want) = expected {
        if ty.compatible(want) {
            return Ok((ty.unify(want).unwrap(), e));
        }
        // Implicit coercion: integer literals adapt to bit<N>/double.
        if let Some(coerced) = coerce_literal(&e, want) {
            e = coerced;
            return Ok((want.clone(), e));
        }
        return Err(Error::at(
            Phase::Type,
            expr.pos,
            format!("expected {want}, found {ty}"),
        ));
    }
    Ok((ty, e))
}

/// If `e` is an integer literal and `want` is bit<N>/double/bigint, wrap it
/// in a cast. Returns `None` when no coercion applies.
fn coerce_literal(e: &Expr, want: &Type) -> Option<Expr> {
    if let ExprKind::Lit(Literal::Int(i)) = &e.kind {
        match want {
            Type::Bit(w) => {
                if *i >= 0 && mask_to_width(*i as u128, *w) == *i as u128 {
                    return Some(Expr::new(
                        ExprKind::Cast(Box::new(e.clone()), want.clone()),
                        e.pos,
                    ));
                }
                None
            }
            Type::Double => Some(Expr::new(
                ExprKind::Cast(Box::new(e.clone()), want.clone()),
                e.pos,
            )),
            _ => None,
        }
    } else {
        None
    }
}

fn infer_expr(expr: &Expr, scope: &HashMap<String, Type>) -> Result<(Type, Expr)> {
    let pos = expr.pos;
    match &expr.kind {
        ExprKind::Lit(l) => Ok((literal_type(l), expr.clone())),
        ExprKind::Var(v) => match scope.get(v) {
            Some(t) => Ok((t.clone(), expr.clone())),
            None => Err(Error::at(
                Phase::Type,
                pos,
                format!("unbound variable `{v}`"),
            )),
        },
        ExprKind::Unary(op, inner) => {
            let (t, e) = infer_expr(inner, scope)?;
            let ty = match op {
                UnOp::Neg => {
                    if !t.is_numeric() {
                        return Err(Error::at(Phase::Type, pos, format!("cannot negate {t}")));
                    }
                    t
                }
                UnOp::Not => {
                    if t != Type::Bool {
                        return Err(Error::at(
                            Phase::Type,
                            pos,
                            format!("`not` needs bool, got {t}"),
                        ));
                    }
                    Type::Bool
                }
                UnOp::BitNot => {
                    if !t.is_integral() {
                        return Err(Error::at(
                            Phase::Type,
                            pos,
                            format!("`~` needs an integer, got {t}"),
                        ));
                    }
                    t
                }
            };
            Ok((ty, Expr::new(ExprKind::Unary(*op, Box::new(e)), pos)))
        }
        ExprKind::Binary(op, lhs, rhs) => {
            let (tl, el) = infer_expr(lhs, scope)?;
            let (tr, er) = infer_expr(rhs, scope)?;
            // Adapt integer literals to the other operand's type.
            let (tl, el, tr, er) = if tl != tr {
                if let Some(el2) = coerce_literal(&el, &tr) {
                    (tr.clone(), el2, tr, er)
                } else if let Some(er2) = coerce_literal(&er, &tl) {
                    (tl.clone(), el, tl, er2)
                } else {
                    (tl, el, tr, er)
                }
            } else {
                (tl, el, tr, er)
            };
            let result = binary_type(*op, &tl, &tr, pos)?;
            Ok((
                result,
                Expr::new(ExprKind::Binary(*op, Box::new(el), Box::new(er)), pos),
            ))
        }
        ExprKind::Call(name, args) => {
            let mut arg_tys = Vec::with_capacity(args.len());
            let mut new_args = Vec::with_capacity(args.len());
            for a in args {
                let (t, e) = infer_expr(a, scope)?;
                arg_tys.push(t);
                new_args.push(e);
            }
            let ret = stdlib::check_call(name, &arg_tys, pos)?;
            Ok((ret, Expr::new(ExprKind::Call(name.clone(), new_args), pos)))
        }
        ExprKind::IfElse(c, t, f) => {
            let (tc, ec) = infer_expr(c, scope)?;
            if tc != Type::Bool {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("if condition must be bool, got {tc}"),
                ));
            }
            let (tt, et) = infer_expr(t, scope)?;
            let (tf, ef) = infer_expr(f, scope)?;
            // Unify branches, coercing literal sides if needed.
            let (tt, et, tf, ef) = if tt != tf {
                if let Some(et2) = coerce_literal(&et, &tf) {
                    (tf.clone(), et2, tf, ef)
                } else if let Some(ef2) = coerce_literal(&ef, &tt) {
                    (tt.clone(), et, tt, ef2)
                } else {
                    (tt, et, tf, ef)
                }
            } else {
                (tt, et, tf, ef)
            };
            let ty = tt.unify(&tf).ok_or_else(|| {
                Error::at(
                    Phase::Type,
                    pos,
                    format!("if branches have different types: {tt} vs {tf}"),
                )
            })?;
            Ok((
                ty,
                Expr::new(
                    ExprKind::IfElse(Box::new(ec), Box::new(et), Box::new(ef)),
                    pos,
                ),
            ))
        }
        ExprKind::Cast(inner, to) => {
            let (from, e) = infer_expr(inner, scope)?;
            let ok = matches!(
                (&from, to),
                (Type::Int, Type::Bit(_))
                    | (Type::Int, Type::Double)
                    | (Type::Int, Type::Int)
                    | (Type::Bit(_), Type::Int)
                    | (Type::Bit(_), Type::Bit(_))
                    | (Type::Bit(_), Type::Double)
                    | (Type::Double, Type::Int)
                    | (Type::Double, Type::Double)
            );
            if !ok {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("cannot cast {from} to {to}"),
                ));
            }
            Ok((
                to.clone(),
                Expr::new(ExprKind::Cast(Box::new(e), to.clone()), pos),
            ))
        }
        ExprKind::Tuple(elems) => {
            let mut tys = Vec::with_capacity(elems.len());
            let mut new = Vec::with_capacity(elems.len());
            for e in elems {
                let (t, ne) = infer_expr(e, scope)?;
                tys.push(t);
                new.push(ne);
            }
            Ok((Type::Tuple(tys), Expr::new(ExprKind::Tuple(new), pos)))
        }
    }
}

fn binary_type(op: BinOp, tl: &Type, tr: &Type, pos: Pos) -> Result<Type> {
    use BinOp::*;
    let same = || -> Result<Type> {
        tl.unify(tr).ok_or_else(|| {
            Error::at(
                Phase::Type,
                pos,
                format!("operands have different types: {tl} vs {tr}"),
            )
        })
    };
    match op {
        Or | And => {
            if *tl == Type::Bool && *tr == Type::Bool {
                Ok(Type::Bool)
            } else {
                Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("boolean operator on {tl} and {tr}"),
                ))
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            same()?;
            Ok(Type::Bool)
        }
        Add | Sub | Mul | Div | Mod => {
            let t = same()?;
            if !t.is_numeric() {
                return Err(Error::at(Phase::Type, pos, format!("arithmetic on {t}")));
            }
            if matches!(op, Mod) && t == Type::Double {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    "`%` is not defined on double".to_string(),
                ));
            }
            Ok(t)
        }
        Shl | Shr => {
            if !tl.is_integral() || !tr.is_integral() {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("shift on {tl} and {tr}"),
                ));
            }
            Ok(tl.clone())
        }
        BitOr | BitXor | BitAnd => {
            let t = same()?;
            if !t.is_integral() {
                return Err(Error::at(
                    Phase::Type,
                    pos,
                    format!("bitwise operator on {t}"),
                ));
            }
            Ok(t)
        }
        Concat => match (tl, tr) {
            (Type::Str, Type::Str) => Ok(Type::Str),
            (Type::Vec(a), Type::Vec(b)) => {
                let e = a.unify(b).ok_or_else(|| {
                    Error::at(
                        Phase::Type,
                        pos,
                        "concatenating vectors of different types".to_string(),
                    )
                })?;
                Ok(Type::Vec(Box::new(e)))
            }
            _ => Err(Error::at(
                Phase::Type,
                pos,
                format!("`++` on {tl} and {tr}"),
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check_src(src: &str) -> Result<CheckedProgram> {
        check(&parse_program(src).unwrap())
    }

    #[test]
    fn ok_program() {
        let cp = check_src(
            "
            input relation Port(id: bit<32>, vlan: bit<12>, tag: string)
            output relation InVlan(port: bit<32>, vlan: bit<12>)
            InVlan(p, v) :- Port(p, v, \"access\").
            ",
        )
        .unwrap();
        assert_eq!(cp.var_types[0].get("p"), Some(&Type::Bit(32)));
        assert_eq!(cp.var_types[0].get("v"), Some(&Type::Bit(12)));
    }

    #[test]
    fn head_literal_coerced_to_bit() {
        let cp = check_src(
            "
            input relation S(x: bigint)
            output relation R(v: bit<12>)
            R(5) :- S(_).
            ",
        )
        .unwrap();
        // The head literal must have been wrapped in a cast to bit<12>.
        match &cp.program.rules[0].head.args[0].kind {
            ExprKind::Cast(_, Type::Bit(12)) => {}
            other => panic!("expected cast, got {other:?}"),
        }
    }

    #[test]
    fn rejects_head_on_input() {
        let e = check_src(
            "
            input relation S(x: bigint)
            S(1) :- S(_).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("input relation"));
    }

    #[test]
    fn rejects_unbound_head_var() {
        let e = check_src(
            "
            input relation S(x: bigint)
            output relation R(x: bigint, y: bigint)
            R(x, y) :- S(x).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("unbound variable `y`"), "{}", e.msg);
    }

    #[test]
    fn rejects_unbound_negation_var() {
        let e = check_src(
            "
            input relation S(x: bigint)
            input relation T(x: bigint, y: bigint)
            output relation R(x: bigint)
            R(x) :- S(x), not T(x, y).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("negated atom"), "{}", e.msg);
    }

    #[test]
    fn wildcard_negation_ok() {
        check_src(
            "
            input relation S(x: bigint)
            input relation T(x: bigint, y: bigint)
            output relation R(x: bigint)
            R(x) :- S(x), not T(x, _).
            ",
        )
        .unwrap();
    }

    #[test]
    fn rejects_type_mismatch_in_join() {
        let e = check_src(
            "
            input relation S(x: bigint)
            input relation T(x: string)
            output relation R(x: bigint)
            R(x) :- S(x), T(x).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("variable `x`"), "{}", e.msg);
    }

    #[test]
    fn literal_width_check() {
        let e = check_src(
            "
            input relation S(x: bigint)
            output relation R(v: bit<4>)
            R(99) :- S(_).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("expected"), "{}", e.msg);
    }

    #[test]
    fn aggregate_scoping() {
        // After group_by, only keys + output var are visible.
        let e = check_src(
            "
            input relation P(p: bigint, sw: string)
            output relation N(sw: string, n: bigint, p: bigint)
            N(sw, n, p) :- P(p, sw), var n = count(p) group_by (sw).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("unbound variable `p`"), "{}", e.msg);

        check_src(
            "
            input relation P(p: bigint, sw: string)
            output relation N(sw: string, n: bigint)
            N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
            ",
        )
        .unwrap();
    }

    #[test]
    fn arith_coercion_with_bit() {
        check_src(
            "
            input relation S(x: bit<16>)
            output relation R(y: bit<16>)
            R(x + 1) :- S(x).
            ",
        )
        .unwrap();
    }

    #[test]
    fn flatmap_infers_element() {
        let cp = check_src(
            "
            input relation T(vs: Vec<bit<12>>)
            output relation V(v: bit<12>)
            V(v) :- T(vs), var v = FlatMap(vs).
            ",
        )
        .unwrap();
        assert_eq!(cp.var_types[0].get("v"), Some(&Type::Bit(12)));
    }

    #[test]
    fn map_flatmap_gives_tuple() {
        let e = check_src(
            "
            input relation T(m: Map<string, bigint>)
            output relation V(v: string)
            V(kv) :- T(m), var kv = FlatMap(m).
            ",
        )
        .unwrap_err();
        // kv is a tuple (string, bigint), not a string.
        assert!(e.msg.contains("expected string"), "{}", e.msg);
    }

    #[test]
    fn cond_must_be_bool() {
        let e = check_src(
            "
            input relation S(x: bigint)
            output relation R(x: bigint)
            R(x) :- S(x), x + 1.
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("bool"), "{}", e.msg);
    }

    #[test]
    fn arity_mismatch() {
        let e = check_src(
            "
            input relation S(x: bigint, y: bigint)
            output relation R(x: bigint)
            R(x) :- S(x).
            ",
        )
        .unwrap_err();
        assert!(e.msg.contains("argument"), "{}", e.msg);
    }
}
