//! Incremental evaluation of non-recursive strata.
//!
//! Each rule's pipeline is processed as a chain of bilinear delta
//! operators. For a join stage with incoming binding delta δL and relation
//! delta δR, the output delta is
//!
//! ```text
//! δ(L ⋈ R) = δL ⋈ R_new  +  L_old ⋈ δR
//! ```
//!
//! where `R_new` is the relation store (already updated for this
//! transaction) and `L_old` is the stage's maintained arrangement of the
//! bindings that flowed through in earlier transactions. Antijoins and
//! aggregations are handled by recomputing only the *affected keys*. The
//! result is work proportional to the size of the change — the paper's
//! central scalability argument (§2.1–§2.2).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use crate::cexpr::{eval, eval_aggregate, Binding};
use crate::error::{Error, Phase, Result};
use crate::plan::{CompiledRule, KeySrc, PStage};
use crate::profile::{OpId, WorkProfile};
use crate::store::{Key, RelId, RelationStore};
use crate::value::{Row, Value};
use crate::zset::ZSet;

/// Approx-bytes cost of one arrangement/group key.
fn key_cost(k: &Key) -> usize {
    k.len() * std::mem::size_of::<Value>() + 32
}

/// Approx-bytes cost of one arranged binding.
fn binding_cost(b: &Binding) -> usize {
    std::mem::size_of::<Binding>() + 24 + b.len() * std::mem::size_of::<Value>()
}

/// Add `(b, w)` to the z-set stored under `key` in `map`, keeping the
/// incremental byte count in sync (key/binding creation and removal).
fn arrange_add(
    map: &mut HashMap<Key, ZSet<Binding>>,
    bytes: &mut usize,
    key: Key,
    b: &Binding,
    w: isize,
) {
    let kc = key_cost(&key);
    let bc = binding_cost(b);
    match map.entry(key) {
        Entry::Occupied(mut o) => {
            let z = o.get_mut();
            let had = z.weight(b) != 0;
            z.add(b.clone(), w);
            let has = z.weight(b) != 0;
            if !had && has {
                *bytes += bc;
            } else if had && !has {
                *bytes = bytes.saturating_sub(bc);
            }
            if z.is_empty() {
                o.remove();
                *bytes = bytes.saturating_sub(kc);
            }
        }
        Entry::Vacant(v) => {
            if w != 0 {
                v.insert(ZSet::singleton(b.clone(), w));
                *bytes += kc + bc;
            }
        }
    }
}

/// Mutable per-stage state for one rule.
#[derive(Debug, Default, Clone)]
pub enum StageState {
    /// Stage needs no state (stage 0, filters, assigns, flatmaps).
    #[default]
    None,
    /// Arrangement of the stage's input bindings, keyed by join key.
    Arrangement(HashMap<Key, ZSet<Binding>>),
    /// Aggregation groups, keyed by group key.
    Groups(HashMap<Key, ZSet<Binding>>),
}

/// Per-rule evaluation state (arrangements).
#[derive(Debug, Clone)]
pub struct RuleState {
    states: Vec<StageState>,
    /// Incrementally maintained approximate resident bytes; always equal
    /// to what [`RuleState::approx_bytes_recompute`] would return.
    bytes: usize,
}

impl RuleState {
    /// Initialize state for a rule plan.
    pub fn new(rule: &CompiledRule) -> RuleState {
        let states = rule
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                PStage::Atom { .. } if i > 0 => StageState::Arrangement(HashMap::new()),
                PStage::Aggregate { .. } => StageState::Groups(HashMap::new()),
                _ => StageState::None,
            })
            .collect();
        RuleState { states, bytes: 0 }
    }

    /// Approximate resident bytes of all arrangements (for the memory
    /// experiments). O(1): maintained incrementally as bindings flow in.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// The live aggregation groups of stage `i`, when that stage is an
    /// aggregate. The provenance layer reads these to reconstruct the
    /// contributing bindings of an aggregated tuple on demand.
    pub(crate) fn stage_groups(&self, i: usize) -> Option<&HashMap<Key, ZSet<Binding>>> {
        match self.states.get(i) {
            Some(StageState::Groups(m)) => Some(m),
            _ => None,
        }
    }

    /// Recompute [`RuleState::approx_bytes`] by walking every
    /// arrangement. Test/debug aid for validating the incremental count.
    pub fn approx_bytes_recompute(&self) -> usize {
        let mut total = 0;
        for st in &self.states {
            let map = match st {
                StageState::Arrangement(m) | StageState::Groups(m) => m,
                StageState::None => continue,
            };
            for (k, z) in map {
                total += key_cost(k);
                for (b, _) in z.iter() {
                    total += binding_cost(b);
                }
            }
        }
        total
    }
}

/// Build the lookup key for a binding according to `key_srcs`.
fn key_from_binding(key_srcs: &[KeySrc], b: &[Value]) -> Key {
    key_srcs
        .iter()
        .map(|s| match s {
            KeySrc::Const(v) => v.clone(),
            KeySrc::Slot(i) => b[*i].clone(),
        })
        .collect()
}

/// Check a row against the constant components of the key and intra-atom
/// equalities; used when driving from the relation-delta side.
fn row_admissible(
    key_cols: &[usize],
    key_srcs: &[KeySrc],
    checks: &[(usize, usize)],
    row: &Row,
) -> bool {
    for (col, src) in key_cols.iter().zip(key_srcs) {
        if let KeySrc::Const(v) = src {
            if &row[*col] != v {
                return false;
            }
        }
    }
    checks.iter().all(|(a, b)| row[*a] == row[*b])
}

/// Extend a binding with the columns an atom binds. Returns `None` when an
/// intra-atom check fails.
fn extend(
    b: &[Value],
    checks: &[(usize, usize)],
    binds: &[(usize, usize)],
    row: &Row,
) -> Option<Binding> {
    if !checks.iter().all(|(a, c)| row[*a] == row[*c]) {
        return None;
    }
    let mut out = Vec::with_capacity(b.len() + binds.len());
    out.extend_from_slice(b);
    for (col, slot) in binds {
        debug_assert_eq!(*slot, out.len());
        out.push(row[*col].clone());
    }
    Some(Arc::new(out))
}

/// Profiling context for one rule: the rule's operator ids (parallel to
/// its stages), the per-stage binding-arrangement operator ids (also
/// parallel; `Some` for join/antijoin stages), and the transaction's
/// [`WorkProfile`] to record into.
pub type RuleProf<'a> = (&'a [OpId], &'a [Option<OpId>], &'a mut WorkProfile);

/// Process one rule for a transaction.
///
/// * `rel_deltas` — set-level deltas of relations already updated this
///   transaction (lower strata and inputs).
/// * `prof` — when profiling, the rule's [`RuleProf`]. Arrangement
///   upkeep is recorded to its own operator and subtracted from the
///   stage wall so "index too big" and "probe too hot" are
///   distinguishable.
/// * `capture` — when provenance is enabled, every derived head row is
///   also pushed here with the final binding that produced it and its
///   derivation weight; the captures mirror the returned delta exactly.
/// * Returns the delta of head-row derivations (weighted).
pub fn process_rule(
    rule: &CompiledRule,
    state: &mut RuleState,
    stores: &[RelationStore],
    rel_deltas: &HashMap<RelId, ZSet<Row>>,
    mut prof: Option<RuleProf<'_>>,
    capture: Option<&mut Vec<(Row, Binding, isize)>>,
) -> Result<ZSet<Row>> {
    // Fast path: nothing this rule depends on changed.
    if !rule
        .body_rels
        .iter()
        .any(|r| rel_deltas.get(r).is_some_and(|d| !d.is_empty()))
    {
        return Ok(ZSet::new());
    }

    let RuleState { states, bytes } = state;
    let empty = ZSet::new();
    let mut cur: ZSet<Binding> = ZSet::new();

    for (i, stage) in rule.stages.iter().enumerate() {
        // Tuples entering this stage: the upstream binding delta plus,
        // for atoms, the relation-side delta.
        let tuples_in = cur.len()
            + match stage {
                PStage::Atom { rel, .. } => rel_deltas.get(rel).map(ZSet::len).unwrap_or(0),
                _ => 0,
            };
        let stage_start = prof.is_some().then(std::time::Instant::now);
        // (tuples, wall_ns) of this stage's binding-arrangement upkeep,
        // reported separately from the probe work.
        let mut arrange_work: Option<(u64, u64)> = None;
        match stage {
            PStage::Atom {
                rel,
                neg,
                key_cols,
                key_srcs,
                checks,
                binds,
            } if i == 0 => {
                debug_assert!(!neg);
                // Source stage: map relation delta to bindings.
                let delta_r = rel_deltas.get(rel).unwrap_or(&empty);
                let mut out = ZSet::new();
                for (row, w) in delta_r.iter() {
                    if !row_admissible(key_cols, key_srcs, checks, row) {
                        continue;
                    }
                    if let Some(nb) = extend(&[], &[], binds, row) {
                        out.add(nb, w);
                    }
                }
                cur = out;
            }
            PStage::Atom {
                rel,
                neg,
                key_cols,
                key_srcs,
                checks,
                binds,
            } => {
                let store = &stores[*rel];
                let delta_r = rel_deltas.get(rel).unwrap_or(&empty);
                let arr = match &mut states[i] {
                    StageState::Arrangement(m) => m,
                    _ => unreachable!("atom stage without arrangement"),
                };
                let mut out = ZSet::new();
                if *neg {
                    // δL side against R_new.
                    for (b, w) in cur.iter() {
                        let key = key_from_binding(key_srcs, b);
                        if store.lookup_count(key_cols, &key) == 0 {
                            out.add(b.clone(), w);
                        }
                    }
                    // Affected keys from δR: absence flips retract/insert
                    // the old bindings.
                    let mut affected: HashMap<Key, isize> = HashMap::new();
                    for (row, w) in delta_r.iter() {
                        if !row_admissible(key_cols, key_srcs, checks, row) {
                            continue;
                        }
                        let key: Key = key_cols.iter().map(|c| row[*c].clone()).collect();
                        *affected.entry(key).or_insert(0) += w;
                    }
                    for (key, cd) in affected {
                        let cn = store.lookup_count(key_cols, &key) as isize;
                        let co = cn - cd;
                        let absent_old = co == 0;
                        let absent_new = cn == 0;
                        if absent_old == absent_new {
                            continue;
                        }
                        if let Some(group) = arr.get(&key) {
                            let sign = if absent_new { 1 } else { -1 };
                            for (b, w) in group.iter() {
                                out.add(b.clone(), sign * w);
                            }
                        }
                    }
                } else {
                    // δL ⋈ R_new.
                    for (b, w) in cur.iter() {
                        if key_cols.is_empty() {
                            for row in store.rows() {
                                if let Some(nb) = extend(b, checks, binds, row) {
                                    out.add(nb, w);
                                }
                            }
                        } else {
                            let key = key_from_binding(key_srcs, b);
                            for row in store.lookup(key_cols, &key) {
                                if let Some(nb) = extend(b, checks, binds, row) {
                                    out.add(nb, w);
                                }
                            }
                        }
                    }
                    // L_old ⋈ δR.
                    for (row, wr) in delta_r.iter() {
                        if !row_admissible(key_cols, key_srcs, checks, row) {
                            continue;
                        }
                        let key: Key = key_cols.iter().map(|c| row[*c].clone()).collect();
                        if let Some(group) = arr.get(&key) {
                            for (b, wl) in group.iter() {
                                if let Some(nb) = extend(b, &[], binds, row) {
                                    out.add(nb, wl * wr);
                                }
                            }
                        }
                    }
                }
                // Update the arrangement with δL.
                let t_arr = stage_start.map(|_| std::time::Instant::now());
                for (b, w) in cur.iter() {
                    let key = key_from_binding(key_srcs, b);
                    arrange_add(arr, bytes, key, b, w);
                }
                if let Some(t) = t_arr {
                    arrange_work = Some((cur.len() as u64, t.elapsed().as_nanos() as u64));
                }
                cur = out;
            }
            PStage::Filter { expr } => {
                let mut out = ZSet::new();
                for (b, w) in cur.iter() {
                    if eval(expr, b)? == Value::Bool(true) {
                        out.add(b.clone(), w);
                    }
                }
                cur = out;
            }
            PStage::Assign { slot, expr } => {
                let mut out = ZSet::new();
                for (b, w) in cur.iter() {
                    let v = eval(expr, b)?;
                    let mut nb = Vec::with_capacity(b.len() + 1);
                    nb.extend_from_slice(b);
                    debug_assert_eq!(*slot, nb.len());
                    nb.push(v);
                    out.add(Arc::new(nb), w);
                }
                cur = out;
            }
            PStage::FlatMap { slot, expr } => {
                let mut out = ZSet::new();
                for (b, w) in cur.iter() {
                    let coll = eval(expr, b)?;
                    for elem in flatten(&coll)? {
                        let mut nb = Vec::with_capacity(b.len() + 1);
                        nb.extend_from_slice(b);
                        debug_assert_eq!(*slot, nb.len());
                        nb.push(elem);
                        out.add(Arc::new(nb), w);
                    }
                }
                cur = out;
            }
            PStage::Aggregate {
                group_slots,
                func,
                arg,
            } => {
                let groups = match &mut states[i] {
                    StageState::Groups(m) => m,
                    _ => unreachable!("aggregate stage without groups"),
                };
                // Group δL by key.
                let mut affected: HashMap<Key, ZSet<Binding>> = HashMap::new();
                for (b, w) in cur.iter() {
                    let key: Key = group_slots.iter().map(|s| b[*s].clone()).collect();
                    affected.entry(key).or_default().add(b.clone(), w);
                }
                let mut out = ZSet::new();
                for (key, dg) in affected {
                    if !groups.contains_key(&key) {
                        *bytes += key_cost(&key);
                        groups.insert(key.clone(), ZSet::new());
                    }
                    let group = groups.get_mut(&key).expect("group just ensured");
                    let old_nonempty = group.support().next().is_some();
                    let agg_old = if old_nonempty {
                        Some(eval_aggregate(*func, arg.as_ref(), group)?)
                    } else {
                        None
                    };
                    for (b, w) in dg.iter() {
                        let had = group.weight(b) != 0;
                        group.add(b.clone(), w);
                        let has = group.weight(b) != 0;
                        if !had && has {
                            *bytes += binding_cost(b);
                        } else if had && !has {
                            *bytes = bytes.saturating_sub(binding_cost(b));
                        }
                    }
                    let new_nonempty = group.support().next().is_some();
                    let agg_new = if new_nonempty {
                        Some(eval_aggregate(*func, arg.as_ref(), group)?)
                    } else {
                        None
                    };
                    if group.is_empty() {
                        groups.remove(&key);
                        *bytes = bytes.saturating_sub(key_cost(&key));
                    }
                    if agg_old == agg_new {
                        continue;
                    }
                    if let Some(a) = agg_old {
                        let mut nb = key.clone();
                        nb.push(a);
                        out.add(Arc::new(nb), -1);
                    }
                    if let Some(a) = agg_new {
                        let mut nb = key.clone();
                        nb.push(a);
                        out.add(Arc::new(nb), 1);
                    }
                }
                cur = out;
            }
        }
        if let Some((ops, arr_ops, wp)) = prof.as_mut() {
            let mut wall = stage_start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            if let Some((arr_tuples, arr_ns)) = arrange_work {
                if let Some(op) = arr_ops[i] {
                    wp.record(op, arr_tuples, 0, arr_tuples, arr_ns);
                }
                wall = wall.saturating_sub(arr_ns);
            }
            let tuples_out = cur.len() as u64;
            let peak = (tuples_in as u64).max(tuples_out);
            wp.record(ops[i], tuples_in as u64, tuples_out, peak, wall);
        }
        if cur.is_empty() && !more_deltas_ahead(rule, i, rel_deltas) {
            return Ok(ZSet::new());
        }
    }

    // Map final bindings through the head expressions.
    let mut head_delta = ZSet::new();
    let mut capture = capture;
    for (b, w) in cur.iter() {
        let mut row = Vec::with_capacity(rule.head_exprs.len());
        for e in &rule.head_exprs {
            row.push(eval(e, b)?);
        }
        let row: Row = Arc::new(row);
        if let Some(cap) = capture.as_deref_mut() {
            cap.push((row.clone(), b.clone(), w));
        }
        head_delta.add(row, w);
    }
    Ok(head_delta)
}

/// True if any stage after `i` has its own relation delta to process.
fn more_deltas_ahead(
    rule: &CompiledRule,
    i: usize,
    rel_deltas: &HashMap<RelId, ZSet<Row>>,
) -> bool {
    rule.stages[i + 1..].iter().any(|s| match s {
        PStage::Atom { rel, .. } => rel_deltas.get(rel).is_some_and(|d| !d.is_empty()),
        _ => false,
    })
}

/// Enumerate the elements of a collection value for FlatMap.
pub fn flatten(v: &Value) -> Result<Vec<Value>> {
    Ok(match v {
        Value::Vec(items) => items.as_ref().clone(),
        Value::Set(items) => items.iter().cloned().collect(),
        Value::Map(m) => m
            .iter()
            .map(|(k, v)| Value::tuple(vec![k.clone(), v.clone()]))
            .collect(),
        other => {
            return Err(Error::new(
                Phase::Eval,
                format!("internal: FlatMap over non-collection {other}"),
            ))
        }
    })
}
