//! Evaluation of recursive strata: semi-naive fixpoint for insertions and
//! delete–re-derive (DRed) for retractions.
//!
//! Recursive relations (graph reachability, routing tables — §2.2 of the
//! paper calls these out as the queries classical IVM cannot handle) are
//! maintained with set semantics. Insertions propagate by driving each
//! rule from the newly added rows until a fixpoint. Deletions use DRed:
//! over-delete everything derivable from the removed rows, then re-derive
//! the survivors that have alternative derivations.

use std::collections::{HashMap, HashSet};

use crate::cexpr::eval;
use crate::chain::flatten;
use crate::error::{Error, Phase, Result};
use crate::plan::{CompiledRule, HeadBind, KeySrc, PStage};
use crate::profile::FixpointProbe;
use crate::store::{Key, RelId, RelationStore};
use crate::value::{Row, Value};
use crate::zset::ZSet;

/// A read view over the stores, optionally adjusted backwards by the
/// transaction's set-level deltas (to reconstruct the pre-transaction
/// contents of relations that were already updated).
pub struct View<'a> {
    stores: &'a [RelationStore],
    /// When present: subtract these deltas, i.e. present the OLD contents.
    rewind: Option<&'a HashMap<RelId, ZSet<Row>>>,
    /// Rows this view has handed out — the fixpoint's probe/scan work,
    /// surfaced as Fixpoint tuples so the incrementality audit sees it.
    examined: std::cell::Cell<u64>,
}

impl<'a> View<'a> {
    /// A view of the current (new) contents.
    pub fn new(stores: &'a [RelationStore]) -> Self {
        View {
            stores,
            rewind: None,
            examined: std::cell::Cell::new(0),
        }
    }

    /// A view of the pre-transaction contents of the relations present in
    /// `deltas`; other relations read as-is.
    pub fn old(stores: &'a [RelationStore], deltas: &'a HashMap<RelId, ZSet<Row>>) -> Self {
        View {
            stores,
            rewind: Some(deltas),
            examined: std::cell::Cell::new(0),
        }
    }

    fn delta_of(&self, rel: RelId) -> Option<&'a ZSet<Row>> {
        self.rewind.and_then(|m| m.get(&rel))
    }

    /// Drain the count of rows handed out by lookups and scans.
    pub fn take_examined(&self) -> u64 {
        self.examined.replace(0)
    }

    /// Rows matching `key` under the registered `key_cols` index.
    pub fn lookup(&self, rel: RelId, key_cols: &[usize], key: &Key) -> Vec<Row> {
        let mut rows: Vec<Row> = match self.delta_of(rel) {
            None => self.stores[rel].lookup(key_cols, key).cloned().collect(),
            Some(d) => {
                // OLD = NEW − delta: drop rows added this txn, restore
                // rows removed this txn.
                let mut v: Vec<Row> = self.stores[rel]
                    .lookup(key_cols, key)
                    .filter(|r| d.weight(r) <= 0)
                    .cloned()
                    .collect();
                for (r, w) in d.iter() {
                    if w < 0 && key_cols.iter().zip(key).all(|(c, k)| &r[*c] == k) {
                        v.push(r.clone());
                    }
                }
                v
            }
        };
        rows.sort();
        self.examined.set(self.examined.get() + rows.len() as u64);
        rows
    }

    /// Count of rows matching `key`.
    pub fn count(&self, rel: RelId, key_cols: &[usize], key: &Key) -> usize {
        let n = match self.delta_of(rel) {
            None => self.stores[rel].lookup_count(key_cols, key),
            Some(_) => self.lookup(rel, key_cols, key).len(),
        };
        self.examined.set(self.examined.get() + 1);
        n
    }

    /// All visible rows of a relation.
    pub fn scan(&self, rel: RelId) -> Vec<Row> {
        let rows = match self.delta_of(rel) {
            None => self.stores[rel].rows().cloned().collect(),
            Some(d) => {
                let mut v: Vec<Row> = self.stores[rel]
                    .rows()
                    .filter(|r| d.weight(r) <= 0)
                    .cloned()
                    .collect();
                for (r, w) in d.iter() {
                    if w < 0 {
                        v.push(r.clone());
                    }
                }
                v
            }
        };
        self.examined.set(self.examined.get() + rows.len() as u64);
        rows
    }
}

/// A partially bound environment for driven evaluation.
struct Env {
    vals: Vec<Value>,
    bound: Vec<bool>,
}

impl Env {
    fn new(n: usize) -> Env {
        Env {
            vals: vec![Value::Bool(false); n],
            bound: vec![false; n],
        }
    }

    /// Bind a slot or, if already bound, check equality. Returns false on
    /// mismatch; on success returns true and records whether the slot was
    /// newly bound in `newly`.
    fn bind_or_check(&mut self, slot: usize, v: &Value, newly: &mut Vec<usize>) -> bool {
        if self.bound[slot] {
            self.vals[slot] == *v
        } else {
            self.vals[slot] = v.clone();
            self.bound[slot] = true;
            newly.push(slot);
            true
        }
    }

    fn unbind(&mut self, slots: &[usize]) {
        for s in slots {
            self.bound[*s] = false;
        }
    }
}

/// Pre-bind the environment from a row driving an atom stage. Returns
/// `None` (after unbinding) if the row is inconsistent with the stage.
fn prebind(stage: &PStage, row: &Row, env: &mut Env) -> Option<Vec<usize>> {
    let (key_cols, key_srcs, checks, binds) = match stage {
        PStage::Atom {
            key_cols,
            key_srcs,
            checks,
            binds,
            ..
        } => (key_cols, key_srcs, checks, binds),
        _ => unreachable!("driving a non-atom stage"),
    };
    let mut newly = Vec::new();
    let mut ok = checks.iter().all(|(a, b)| row[*a] == row[*b]);
    if ok {
        for (col, src) in key_cols.iter().zip(key_srcs) {
            match src {
                KeySrc::Const(v) => {
                    if &row[*col] != v {
                        ok = false;
                        break;
                    }
                }
                KeySrc::Slot(s) => {
                    if !env.bind_or_check(*s, &row[*col], &mut newly) {
                        ok = false;
                        break;
                    }
                }
            }
        }
    }
    if ok {
        for (col, slot) in binds {
            if !env.bind_or_check(*slot, &row[*col], &mut newly) {
                ok = false;
                break;
            }
        }
    }
    if ok {
        Some(newly)
    } else {
        env.unbind(&newly);
        None
    }
}

/// Evaluate a rule by driving a delta row through one atom occurrence (or
/// fully forward when `drive` is `None`), collecting derived head rows.
///
/// `init` pre-binds slots (used for backward re-derivation). Rules with
/// aggregates are rejected at compile time for recursive strata, so this
/// evaluator never sees one.
pub fn eval_rule_driven(
    rule: &CompiledRule,
    view: &View<'_>,
    drive: Option<(usize, &Row)>,
    init: &[(usize, Value)],
    out: &mut HashSet<Row>,
) -> Result<()> {
    debug_assert!(!rule.has_aggregate);
    let mut env = Env::new(rule.n_slots);
    let mut init_newly = Vec::new();
    for (slot, v) in init {
        if !env.bind_or_check(*slot, v, &mut init_newly) {
            return Ok(()); // conflicting init bindings (e.g. R(x,x) head)
        }
    }
    if let Some((idx, row)) = drive {
        if prebind(&rule.stages[idx], row, &mut env).is_none() {
            return Ok(());
        }
    }
    // Pick the context-specific pipeline: a re-planned order probes
    // maintained arrangements from the slots this context pre-binds
    // (see [`crate::plan::DrivePlans`]); without one, fall back to the
    // original order, skipping the driven stage.
    let (stages, skip): (&[PStage], Option<usize>) = match drive {
        Some((idx, _)) => match rule.drive_plans.from.get(idx).and_then(Option::as_ref) {
            Some(replanned) => (replanned, None),
            None => (&rule.stages, Some(idx)),
        },
        None if !init.is_empty() => match &rule.drive_plans.rederive {
            Some(replanned) => (replanned, None),
            None => (&rule.stages, None),
        },
        None => (&rule.stages, None),
    };
    walk(rule, stages, view, skip, 0, &mut env, out)
}

fn walk(
    rule: &CompiledRule,
    stages: &[PStage],
    view: &View<'_>,
    skip: Option<usize>,
    i: usize,
    env: &mut Env,
    out: &mut HashSet<Row>,
) -> Result<()> {
    if i == stages.len() {
        let vals = &env.vals;
        debug_assert!(env.bound.iter().all(|b| *b), "unbound slot at head");
        let mut row = Vec::with_capacity(rule.head_exprs.len());
        for e in &rule.head_exprs {
            row.push(eval(e, vals)?);
        }
        out.insert(std::sync::Arc::new(row));
        return Ok(());
    }
    if skip == Some(i) {
        return walk(rule, stages, view, skip, i + 1, env, out);
    }
    match &stages[i] {
        PStage::Atom {
            rel,
            neg,
            key_cols,
            key_srcs,
            checks,
            binds,
        } => {
            if *neg {
                let key: Key = key_srcs
                    .iter()
                    .map(|s| match s {
                        KeySrc::Const(v) => v.clone(),
                        KeySrc::Slot(slot) => env.vals[*slot].clone(),
                    })
                    .collect();
                let absent = if key_cols.is_empty() {
                    view.scan(*rel).is_empty()
                } else {
                    view.count(*rel, key_cols, &key) == 0
                };
                if absent {
                    walk(rule, stages, view, skip, i + 1, env, out)?;
                }
                return Ok(());
            }
            let rows = if key_cols.is_empty() {
                view.scan(*rel)
            } else {
                let key: Key = key_srcs
                    .iter()
                    .map(|s| match s {
                        KeySrc::Const(v) => v.clone(),
                        KeySrc::Slot(slot) => env.vals[*slot].clone(),
                    })
                    .collect();
                view.lookup(*rel, key_cols, &key)
            };
            for row in rows {
                if !checks.iter().all(|(a, b)| row[*a] == row[*b]) {
                    continue;
                }
                // When key_cols is empty the Const/Slot constraints were
                // never applied by the lookup; nothing to re-check since
                // empty key_cols means no constrained columns.
                let mut newly = Vec::new();
                let mut ok = true;
                for (col, slot) in binds {
                    if !env.bind_or_check(*slot, &row[*col], &mut newly) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    walk(rule, stages, view, skip, i + 1, env, out)?;
                }
                env.unbind(&newly);
            }
            Ok(())
        }
        PStage::Filter { expr } => {
            if eval(expr, &env.vals)? == Value::Bool(true) {
                walk(rule, stages, view, skip, i + 1, env, out)?;
            }
            Ok(())
        }
        PStage::Assign { slot, expr } => {
            let v = eval(expr, &env.vals)?;
            let mut newly = Vec::new();
            if env.bind_or_check(*slot, &v, &mut newly) {
                walk(rule, stages, view, skip, i + 1, env, out)?;
            }
            env.unbind(&newly);
            Ok(())
        }
        PStage::FlatMap { slot, expr } => {
            let coll = eval(expr, &env.vals)?;
            for elem in flatten(&coll)? {
                let mut newly = Vec::new();
                if env.bind_or_check(*slot, &elem, &mut newly) {
                    walk(rule, stages, view, skip, i + 1, env, out)?;
                }
                env.unbind(&newly);
            }
            Ok(())
        }
        PStage::Aggregate { .. } => Err(Error::new(
            Phase::Eval,
            "internal: aggregate in recursive stratum".to_string(),
        )),
    }
}

/// Outcome of an explanatory enumeration over a rule pipeline prefix
/// (provenance queries): the complete environments that satisfy it,
/// plus the deepest failing literal met while searching — the raw
/// material of `why` (recursive relations) and `why_not`.
pub(crate) struct Explain {
    /// Snapshots of `env.vals` for every valuation that passed all
    /// stages (capped; see `truncated`).
    pub envs: Vec<Vec<Value>>,
    /// The deepest dead-end: (stage index, human description of the
    /// first failing literal there). `None` when some valuation passed
    /// every stage or no stage was ever entered.
    pub fail: Option<(usize, String)>,
    /// True when the row-examination budget or the env cap cut the
    /// search short.
    pub truncated: bool,
}

/// Search state threaded through [`explain_walk`].
struct ExplainCtx<'a> {
    stores: &'a [RelationStore],
    /// Relation id → (name, arity) for rendering failure descriptions.
    describe: &'a dyn Fn(RelId) -> (String, usize),
    budget: usize,
    env_cap: usize,
    out: Explain,
}

impl ExplainCtx<'_> {
    /// Spend `n` rows of budget; false once exhausted.
    fn spend(&mut self, n: usize) -> bool {
        if self.budget < n {
            self.budget = 0;
            self.out.truncated = true;
            return false;
        }
        self.budget -= n;
        true
    }

    fn dead_end(&mut self, stage: usize, msg: String) {
        if self.out.fail.as_ref().is_none_or(|(s, _)| stage >= *s) {
            self.out.fail = Some((stage, msg));
        }
    }
}

/// Render the constrained columns of an atom under a partial
/// environment: `Rel(v, _, w)` with `_` for unconstrained columns.
fn atom_pattern(
    rel: RelId,
    stage: &PStage,
    env: &Env,
    describe: &dyn Fn(RelId) -> (String, usize),
) -> String {
    let (name, arity) = describe(rel);
    let mut cols: Vec<String> = vec!["_".to_string(); arity];
    for (col, src) in crate::plan::atom_col_srcs(stage) {
        match src {
            crate::plan::ColSrc::Const(v) => cols[col] = v.to_string(),
            crate::plan::ColSrc::Slot(s) if env.bound[s] => cols[col] = env.vals[s].to_string(),
            crate::plan::ColSrc::Slot(_) => {}
        }
    }
    format!("{}({})", name, cols.join(", "))
}

/// Enumerate every valuation of `stages` consistent with `init`,
/// recording the deepest failing literal along the way. Aggregate
/// stages are not handled here — callers split pipelines at the
/// aggregate and resolve the group against the chain evaluator's live
/// state instead.
pub(crate) fn explain_stages(
    stages: &[PStage],
    n_slots: usize,
    stores: &[RelationStore],
    describe: &dyn Fn(RelId) -> (String, usize),
    init: &[(usize, Value)],
    budget: usize,
    env_cap: usize,
) -> Result<Explain> {
    let mut ctx = ExplainCtx {
        stores,
        describe,
        budget,
        env_cap,
        out: Explain {
            envs: Vec::new(),
            fail: None,
            truncated: false,
        },
    };
    let mut env = Env::new(n_slots);
    let mut newly = Vec::new();
    let mut feasible = true;
    for (slot, v) in init {
        if !env.bind_or_check(*slot, v, &mut newly) {
            feasible = false;
            break;
        }
    }
    if feasible {
        explain_walk(stages, 0, &mut env, &mut ctx)?;
    } else {
        ctx.out.fail = Some((
            0,
            "the target row binds the same variable twice with different values".to_string(),
        ));
    }
    Ok(ctx.out)
}

fn explain_walk(
    stages: &[PStage],
    i: usize,
    env: &mut Env,
    ctx: &mut ExplainCtx<'_>,
) -> Result<()> {
    if ctx.out.truncated {
        return Ok(());
    }
    if i == stages.len() {
        if ctx.out.envs.len() >= ctx.env_cap {
            ctx.out.truncated = true;
        } else {
            ctx.out.envs.push(env.vals.clone());
        }
        return Ok(());
    }
    match &stages[i] {
        PStage::Atom {
            rel,
            neg,
            key_cols,
            key_srcs,
            checks,
            binds,
        } => {
            let key: Key = key_srcs
                .iter()
                .map(|s| match s {
                    KeySrc::Const(v) => v.clone(),
                    KeySrc::Slot(slot) => {
                        debug_assert!(env.bound[*slot], "unbound key slot in original order");
                        env.vals[*slot].clone()
                    }
                })
                .collect();
            if *neg {
                let witness: Option<Row> = if key_cols.is_empty() {
                    ctx.spend(1);
                    ctx.stores[*rel].rows().next().cloned()
                } else {
                    ctx.spend(1);
                    ctx.stores[*rel].lookup(key_cols, &key).next().cloned()
                };
                match witness {
                    None => explain_walk(stages, i + 1, env, ctx)?,
                    Some(w) => {
                        let (name, _) = (ctx.describe)(*rel);
                        let vals: Vec<String> = w.iter().map(|v| v.to_string()).collect();
                        ctx.dead_end(
                            i,
                            format!(
                                "negation violated: {}({}) is present, but the rule requires \
                                 `not {}`",
                                name,
                                vals.join(", "),
                                atom_pattern(*rel, &stages[i], env, ctx.describe)
                            ),
                        );
                    }
                }
                return Ok(());
            }
            let rows: Vec<Row> = if key_cols.is_empty() {
                ctx.stores[*rel].rows().cloned().collect()
            } else {
                ctx.stores[*rel].lookup(key_cols, &key).cloned().collect()
            };
            if !ctx.spend(rows.len().max(1)) {
                return Ok(());
            }
            if rows.is_empty() {
                ctx.dead_end(
                    i,
                    format!(
                        "no row matches {}",
                        atom_pattern(*rel, &stages[i], env, ctx.describe)
                    ),
                );
                return Ok(());
            }
            let mut advanced = false;
            for row in &rows {
                if !checks.iter().all(|(a, b)| row[*a] == row[*b]) {
                    continue;
                }
                let mut newly = Vec::new();
                let mut ok = true;
                for (col, slot) in binds {
                    if !env.bind_or_check(*slot, &row[*col], &mut newly) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    advanced = true;
                    explain_walk(stages, i + 1, env, ctx)?;
                }
                env.unbind(&newly);
                if ctx.out.truncated {
                    return Ok(());
                }
            }
            if !advanced {
                ctx.dead_end(
                    i,
                    format!(
                        "{} row(s) match the join key of {} but none agrees with the \
                         already-bound variables",
                        rows.len(),
                        atom_pattern(*rel, &stages[i], env, ctx.describe)
                    ),
                );
            }
            Ok(())
        }
        PStage::Filter { expr } => {
            if eval(expr, &env.vals)? == Value::Bool(true) {
                explain_walk(stages, i + 1, env, ctx)
            } else {
                ctx.dead_end(i, "filter condition evaluates to false".to_string());
                Ok(())
            }
        }
        PStage::Assign { slot, expr } => {
            let v = eval(expr, &env.vals)?;
            let mut newly = Vec::new();
            if env.bind_or_check(*slot, &v, &mut newly) {
                explain_walk(stages, i + 1, env, ctx)?;
            } else {
                ctx.dead_end(
                    i,
                    format!(
                        "assignment computes {v} but the target row requires {}",
                        env.vals[*slot]
                    ),
                );
            }
            env.unbind(&newly);
            Ok(())
        }
        PStage::FlatMap { slot, expr } => {
            let coll = eval(expr, &env.vals)?;
            let elems = flatten(&coll)?;
            if elems.is_empty() {
                ctx.dead_end(i, "FlatMap collection is empty".to_string());
                return Ok(());
            }
            let mut advanced = false;
            for elem in elems {
                let mut newly = Vec::new();
                if env.bind_or_check(*slot, &elem, &mut newly) {
                    advanced = true;
                    explain_walk(stages, i + 1, env, ctx)?;
                }
                env.unbind(&newly);
                if ctx.out.truncated {
                    return Ok(());
                }
            }
            if !advanced {
                ctx.dead_end(
                    i,
                    format!(
                        "no FlatMap element equals the required value {}",
                        env.vals[*slot]
                    ),
                );
            }
            Ok(())
        }
        PStage::Aggregate { .. } => Err(Error::new(
            Phase::Eval,
            "internal: explain_stages over an aggregate stage".to_string(),
        )),
    }
}

/// Process a recursive stratum for one transaction.
///
/// `scc_rels` — the relations of this stratum; `rules` — the compiled
/// rules headed in it; `rel_deltas` — set-level deltas of all relations
/// already updated this transaction (lower strata and inputs).
///
/// Returns the net set-level delta per SCC relation, already applied to
/// the stores. When `probe` is given, frontier pops and peak frontier
/// length are recorded into it (the fixpoint's work accounting).
pub fn process_recursive_stratum(
    rules: &[&CompiledRule],
    scc_rels: &HashSet<RelId>,
    stores: &mut [RelationStore],
    rel_deltas: &HashMap<RelId, ZSet<Row>>,
    mut probe: Option<&mut FixpointProbe>,
) -> Result<HashMap<RelId, ZSet<Row>>> {
    let mut net: HashMap<RelId, ZSet<Row>> = HashMap::new();

    // ---- Phase 1: over-delete (DRed) with the OLD view -----------------
    // Seeds: lower-relation deletions at positive atoms; lower-relation
    // insertions at negated atoms (a new row can kill derivations).
    let mut over_deleted: HashMap<RelId, HashSet<Row>> = HashMap::new();
    let mut frontier: Vec<(RelId, Row)> = Vec::new();
    {
        let old_view = View::old(stores, rel_deltas);
        let mut candidates: HashSet<(RelId, Row)> = HashSet::new();
        for rule in rules {
            for (idx, stage) in rule.stages.iter().enumerate() {
                let (rel, neg) = match stage {
                    PStage::Atom { rel, neg, .. } => (*rel, *neg),
                    _ => continue,
                };
                if scc_rels.contains(&rel) {
                    continue; // SCC deletions propagate via the frontier
                }
                let Some(delta) = rel_deltas.get(&rel) else {
                    continue;
                };
                let mut heads = HashSet::new();
                for (row, w) in delta.iter() {
                    let kills = if neg { w > 0 } else { w < 0 };
                    if kills {
                        eval_rule_driven(rule, &old_view, Some((idx, row)), &[], &mut heads)?;
                    }
                }
                for h in heads {
                    candidates.insert((rule.head_rel, h));
                }
            }
        }
        for (rel, row) in candidates {
            if stores[rel].contains(&row)
                && over_deleted.entry(rel).or_default().insert(row.clone())
            {
                frontier.push((rel, row));
            }
        }
        // Iterate: deletions of SCC rows propagate through SCC atoms.
        while let Some((drel, drow)) = frontier.pop() {
            if let Some(p) = probe.as_deref_mut() {
                p.observe_frontier(frontier.len() + 1);
                p.pop();
            }
            for rule in rules {
                for (idx, stage) in rule.stages.iter().enumerate() {
                    match stage {
                        PStage::Atom {
                            rel, neg: false, ..
                        } if *rel == drel => {}
                        _ => continue,
                    }
                    let mut heads = HashSet::new();
                    eval_rule_driven(rule, &old_view, Some((idx, &drow)), &[], &mut heads)?;
                    for h in heads {
                        let hrel = rule.head_rel;
                        if stores[hrel].contains(&h)
                            && !over_deleted.get(&hrel).is_some_and(|s| s.contains(&h))
                        {
                            over_deleted.entry(hrel).or_default().insert(h.clone());
                            frontier.push((hrel, h));
                        }
                    }
                }
            }
        }
        if let Some(p) = probe.as_deref_mut() {
            p.examine(old_view.take_examined());
        }
    }

    // ---- Phase 2: apply over-deletions ---------------------------------
    for (rel, rows) in &over_deleted {
        let mut d = ZSet::new();
        for r in rows {
            d.add(r.clone(), -1);
        }
        let sd = stores[*rel].apply_derivation_delta(&d);
        net.entry(*rel).or_default().merge(sd);
    }

    // ---- Phase 3: re-derive --------------------------------------------
    // A deleted row survives if some rule still derives it from the
    // remaining contents.
    let mut pending: Vec<(RelId, Row)> = Vec::new();
    {
        let new_view = View::new(stores);
        // Forward fallback caches for rules with complex heads.
        let mut forward_cache: HashMap<usize, HashSet<Row>> = HashMap::new();
        for (rel, rows) in &over_deleted {
            for row in rows {
                let mut rederived = false;
                for rule in rules {
                    if rule.head_rel != *rel {
                        continue;
                    }
                    match &rule.head_binds {
                        Some(binds) => {
                            let mut init = Vec::new();
                            let mut feasible = true;
                            for (hb, v) in binds.iter().zip(row.iter()) {
                                match hb {
                                    HeadBind::Slot(s) => init.push((*s, v.clone())),
                                    HeadBind::Const(c) => {
                                        if c != v {
                                            feasible = false;
                                            break;
                                        }
                                    }
                                }
                            }
                            if !feasible {
                                continue;
                            }
                            let mut heads = HashSet::new();
                            eval_rule_driven(rule, &new_view, None, &init, &mut heads)?;
                            if heads.contains(row) {
                                rederived = true;
                                break;
                            }
                        }
                        None => {
                            let heads = match forward_cache.get(&rule.rule_index) {
                                Some(h) => h,
                                None => {
                                    let mut h = HashSet::new();
                                    eval_rule_driven(rule, &new_view, None, &[], &mut h)?;
                                    forward_cache.insert(rule.rule_index, h);
                                    &forward_cache[&rule.rule_index]
                                }
                            };
                            if heads.contains(row) {
                                rederived = true;
                                break;
                            }
                        }
                    }
                }
                if rederived {
                    pending.push((*rel, row.clone()));
                }
            }
        }
        if let Some(p) = probe.as_deref_mut() {
            p.examine(new_view.take_examined());
        }
    }
    // Reinstate re-derived rows.
    for (rel, row) in &pending {
        let sd = stores[*rel].apply_derivation_delta(&ZSet::singleton(row.clone(), 1));
        net.entry(*rel).or_default().merge(sd);
    }

    // ---- Phase 4: insertions (semi-naive) ------------------------------
    // Seeds: lower-relation insertions at positive atoms; lower-relation
    // deletions at negated atoms (absence can enable derivations). Plus
    // the re-derived rows from phase 3.
    {
        // Rows of SCC relations inserted from outside this stratum (only
        // constant facts do this) are already in the stores; they still
        // need to drive the fixpoint.
        for rel in scc_rels {
            if let Some(d) = rel_deltas.get(rel) {
                for (row, w) in d.iter() {
                    if w > 0 {
                        pending.push((*rel, row.clone()));
                    }
                }
            }
        }
        // Seed from external deltas.
        let mut seed_heads: HashSet<(RelId, Row)> = HashSet::new();
        {
            let new_view = View::new(stores);
            for rule in rules {
                for (idx, stage) in rule.stages.iter().enumerate() {
                    let (rel, neg) = match stage {
                        PStage::Atom { rel, neg, .. } => (*rel, *neg),
                        _ => continue,
                    };
                    if scc_rels.contains(&rel) {
                        continue;
                    }
                    let Some(delta) = rel_deltas.get(&rel) else {
                        continue;
                    };
                    let mut heads = HashSet::new();
                    for (row, w) in delta.iter() {
                        let enables = if neg { w < 0 } else { w > 0 };
                        if enables {
                            eval_rule_driven(rule, &new_view, Some((idx, row)), &[], &mut heads)?;
                        }
                    }
                    for h in heads {
                        seed_heads.insert((rule.head_rel, h));
                    }
                }
            }
            if let Some(p) = probe.as_deref_mut() {
                p.examine(new_view.take_examined());
            }
        }
        for (rel, row) in seed_heads {
            if !stores[rel].contains(&row) {
                let sd = stores[rel].apply_derivation_delta(&ZSet::singleton(row.clone(), 1));
                net.entry(rel).or_default().merge(sd);
                pending.push((rel, row));
            }
        }

        // Fixpoint.
        while let Some((drel, drow)) = pending.pop() {
            if let Some(p) = probe.as_deref_mut() {
                p.observe_frontier(pending.len() + 1);
                p.pop();
            }
            let mut derived: Vec<(RelId, Row)> = Vec::new();
            {
                let new_view = View::new(stores);
                for rule in rules {
                    for (idx, stage) in rule.stages.iter().enumerate() {
                        match stage {
                            PStage::Atom {
                                rel, neg: false, ..
                            } if *rel == drel => {}
                            _ => continue,
                        }
                        let mut heads = HashSet::new();
                        eval_rule_driven(rule, &new_view, Some((idx, &drow)), &[], &mut heads)?;
                        for h in heads {
                            derived.push((rule.head_rel, h));
                        }
                    }
                }
                if let Some(p) = probe.as_deref_mut() {
                    p.examine(new_view.take_examined());
                }
            }
            for (rel, row) in derived {
                if !stores[rel].contains(&row) {
                    let sd = stores[rel].apply_derivation_delta(&ZSet::singleton(row.clone(), 1));
                    net.entry(rel).or_default().merge(sd);
                    pending.push((rel, row));
                }
            }
        }
    }

    net.retain(|_, z| !z.is_empty());
    Ok(net)
}
