//! Rule planning: lowering type-checked rules into stage pipelines.
//!
//! Every rule becomes a left-to-right pipeline of [`PStage`]s. The same
//! plan is interpreted two ways:
//!
//! * by [`crate::chain`] for non-recursive strata — fully incremental with
//!   maintained arrangements (work ∝ |Δ|);
//! * by [`crate::recursive`] for recursive strata — semi-naive fixpoint and
//!   delete–re-derive, driving deltas through any atom position.
//!
//! Planning also registers every hash index the pipelines will need on the
//! relation stores (indexes must exist before data arrives).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ast::*;
use crate::cexpr::CExpr;
use crate::error::{Error, Phase, Result};
use crate::store::{RelId, RelationStore};
use crate::typecheck::{literal_value, CheckedProgram};
use crate::types::Type;
use crate::value::Value;

/// Where a key component comes from at lookup time.
#[derive(Debug, Clone, PartialEq)]
pub enum KeySrc {
    /// A literal from the atom pattern.
    Const(Value),
    /// An environment slot bound by an earlier stage.
    Slot(usize),
}

/// One pipeline stage.
#[derive(Debug, Clone)]
pub enum PStage {
    /// Join (or antijoin when `neg`) with a relation.
    Atom {
        /// The relation joined against.
        rel: RelId,
        /// True for `not Rel(..)`.
        neg: bool,
        /// Columns forming the lookup key, ascending.
        key_cols: Vec<usize>,
        /// Value source for each key column (parallel to `key_cols`).
        key_srcs: Vec<KeySrc>,
        /// Intra-atom repeated variables: (column, column bound earlier in
        /// this same atom) equality checks.
        checks: Vec<(usize, usize)>,
        /// Columns bound into fresh environment slots: (column, slot).
        binds: Vec<(usize, usize)>,
    },
    /// Boolean condition.
    Filter {
        /// Must evaluate to `true` for the binding to pass.
        expr: CExpr,
    },
    /// `var x = expr` appends one slot.
    Assign {
        /// Destination slot.
        slot: usize,
        /// Defining expression.
        expr: CExpr,
    },
    /// `var x = FlatMap(e)` appends one slot per element.
    FlatMap {
        /// Destination slot.
        slot: usize,
        /// Collection expression.
        expr: CExpr,
    },
    /// Aggregation; collapses the environment to `group_slots` + result.
    Aggregate {
        /// Slots (old layout) forming the group key.
        group_slots: Vec<usize>,
        /// The aggregation function.
        func: AggFunc,
        /// Aggregated expression over the old layout.
        arg: Option<CExpr>,
    },
}

/// How a head argument can be matched backwards (head row → bindings),
/// used by delete–re-derive.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadBind {
    /// The argument is a plain variable in this slot.
    Slot(usize),
    /// The argument is this constant.
    Const(Value),
}

/// Re-planned pipelines for the drive contexts of recursive evaluation.
///
/// The statically planned left-to-right pipeline keys each atom only on
/// slots bound by *earlier* stages. Driven evaluation binds slots in a
/// different order — a delta row pre-binds the driven atom's slots, and
/// backward re-derivation pre-binds the head's slots — so under the
/// static plan the remaining atoms can degrade to full scans (cost ∝
/// relation size per driven row). These pipelines are re-ordered and
/// re-keyed per context so every probe hits a maintained arrangement.
#[derive(Debug, Clone, Default)]
pub struct DrivePlans {
    /// Per stage index: the pipeline over the *other* stages when a
    /// delta row drives that atom. `None` entries (non-atom stages, or
    /// where re-planning bailed) fall back to original order + skip.
    pub from: Vec<Option<Vec<PStage>>>,
    /// The pipeline for backward re-derivation, where the head row binds
    /// slots first. `None` falls back to original order.
    pub rederive: Option<Vec<PStage>>,
}

/// A fully planned rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Index of the source rule in the program.
    pub rule_index: usize,
    /// Head relation.
    pub head_rel: RelId,
    /// Head expressions over the final environment layout.
    pub head_exprs: Vec<CExpr>,
    /// Backward head matching, if every head argument is a variable or
    /// constant. `None` forces forward evaluation during re-derivation.
    pub head_binds: Option<Vec<HeadBind>>,
    /// The pipeline.
    pub stages: Vec<PStage>,
    /// Final environment size. Only meaningful when the rule has no
    /// aggregate (recursive rules never do).
    pub n_slots: usize,
    /// True if the rule contains an [`PStage::Aggregate`].
    pub has_aggregate: bool,
    /// The distinct relations referenced by body atoms.
    pub body_rels: Vec<RelId>,
    /// Context-specific pipelines for driven evaluation, built by
    /// [`build_drive_plans`] for recursive rules. Empty for chain rules.
    pub drive_plans: DrivePlans,
}

/// One shared, maintained arrangement: a keyed hash index over `rel`'s
/// visible rows by `cols`, probed by every operator listed in `users`.
/// The spec's position in [`CompiledProgram::arrangements`] is its
/// catalog id, which its [`crate::profile::OpKind::Arrange`] operator
/// and the store-side [`crate::arrange::Arrangement`] both carry.
#[derive(Debug, Clone)]
pub struct ArrangementSpec {
    /// The indexed relation.
    pub rel: RelId,
    /// Key columns, ascending.
    pub cols: Vec<usize>,
    /// Labels of the operators sharing this arrangement.
    pub users: Vec<String>,
}

/// A compiled program: relation metadata plus per-rule plans.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Relation name → id.
    pub rel_ids: HashMap<String, RelId>,
    /// Relation id → declaration (same order as stores).
    pub decls: Vec<RelationDecl>,
    /// Plans, one per rule with a non-empty body.
    pub rules: Vec<CompiledRule>,
    /// Constant facts: `(relation, row)` from empty-body rules.
    pub facts: Vec<(RelId, Vec<Value>)>,
    /// Every maintained arrangement, deduplicated by `(rel, cols)` and
    /// shared across operators. Indexed by catalog id.
    pub arrangements: Vec<ArrangementSpec>,
}

/// Register (or join) the shared arrangement over `(rel, cols)`,
/// recording `user` as one of its operators and making sure the store
/// maintains it. Returns the arrangement's catalog id. Must run before
/// data arrives (registration is a plan-time act).
fn register_arrangement(
    specs: &mut Vec<ArrangementSpec>,
    stores: &mut [RelationStore],
    rel: RelId,
    cols: &[usize],
    user: String,
) -> usize {
    if let Some(i) = specs.iter().position(|s| s.rel == rel && s.cols == cols) {
        stores[rel].register_arrangement(cols, Some(i));
        if !specs[i].users.contains(&user) {
            specs[i].users.push(user);
        }
        return i;
    }
    let id = specs.len();
    stores[rel].register_arrangement(cols, Some(id));
    specs.push(ArrangementSpec {
        rel,
        cols: cols.to_vec(),
        users: vec![user],
    });
    id
}

/// Plan all rules of a checked program, registering needed indexes on
/// `stores` (which must be freshly created, one per relation, in
/// declaration order).
pub fn plan(checked: &CheckedProgram, stores: &mut [RelationStore]) -> Result<CompiledProgram> {
    let program = &checked.program;
    let rel_ids: HashMap<String, RelId> = program
        .relations
        .iter()
        .enumerate()
        .map(|(i, r)| (r.name.clone(), i))
        .collect();

    let mut rules = Vec::new();
    let mut facts = Vec::new();
    let mut arrangements = Vec::new();

    for (rule_index, rule) in program.rules.iter().enumerate() {
        if rule.body.is_empty() {
            facts.push(plan_fact(rule, &rel_ids, program)?);
            continue;
        }
        let compiled = plan_rule(
            rule_index,
            rule,
            &rel_ids,
            program,
            stores,
            &mut arrangements,
        )?;
        rules.push(compiled);
    }

    Ok(CompiledProgram {
        rel_ids,
        decls: program.relations.clone(),
        rules,
        facts,
        arrangements,
    })
}

fn plan_fact(
    rule: &Rule,
    rel_ids: &HashMap<String, RelId>,
    program: &Program,
) -> Result<(RelId, Vec<Value>)> {
    let rel = rel_ids[&rule.head.relation];
    let decl = program.relation(&rule.head.relation).unwrap();
    let empty_layout = HashMap::new();
    let mut row = Vec::with_capacity(rule.head.args.len());
    for (expr, (cname, _)) in rule.head.args.iter().zip(&decl.columns) {
        let ce = lower_expr(expr, &empty_layout)?;
        match const_fold(&ce) {
            Some(v) => row.push(v),
            None => {
                return Err(Error::at(
                    Phase::Type,
                    expr.pos,
                    format!("fact argument for column `{cname}` is not constant"),
                ))
            }
        }
    }
    Ok((rel, row))
}

fn plan_rule(
    rule_index: usize,
    rule: &Rule,
    rel_ids: &HashMap<String, RelId>,
    program: &Program,
    stores: &mut [RelationStore],
    arrangements: &mut Vec<ArrangementSpec>,
) -> Result<CompiledRule> {
    // slot layout: var name → slot, in binding order.
    let mut layout: HashMap<String, usize> = HashMap::new();
    let mut stages = Vec::with_capacity(rule.body.len());
    let mut has_aggregate = false;
    let mut body_rels = Vec::new();

    for item in &rule.body {
        match item {
            BodyItem::Atom(atom) | BodyItem::Not(atom) => {
                let neg = matches!(item, BodyItem::Not(_));
                let rel = rel_ids[&atom.relation];
                if !body_rels.contains(&rel) {
                    body_rels.push(rel);
                }
                let decl = program.relation(&atom.relation).unwrap();
                let mut key_cols = Vec::new();
                let mut key_srcs = Vec::new();
                let mut checks = Vec::new();
                let mut binds = Vec::new();
                // Track columns bound within this atom: var → first col.
                let mut local: HashMap<&str, usize> = HashMap::new();
                for (col, (pat, (_, cty))) in atom.args.iter().zip(&decl.columns).enumerate() {
                    match pat {
                        Pattern::Wildcard => {}
                        Pattern::Lit(lit) => {
                            let v = literal_value(lit, cty)
                                .map_err(|m| Error::at(Phase::Type, atom.pos, m))?;
                            key_cols.push(col);
                            key_srcs.push(KeySrc::Const(v));
                        }
                        Pattern::Var(name) => {
                            if let Some(&first_col) = local.get(name.as_str()) {
                                // Repeated within this atom → check.
                                checks.push((col, first_col));
                            } else if let Some(&slot) = layout.get(name.as_str()) {
                                // Bound by an earlier stage → join key.
                                key_cols.push(col);
                                key_srcs.push(KeySrc::Slot(slot));
                            } else {
                                // Fresh binding.
                                let slot = layout.len();
                                layout.insert(name.clone(), slot);
                                local.insert(name.as_str(), col);
                                binds.push((col, slot));
                            }
                        }
                    }
                }
                if !key_cols.is_empty() {
                    register_arrangement(
                        arrangements,
                        stores,
                        rel,
                        &key_cols,
                        format!("rule {rule_index} stage {}", stages.len()),
                    );
                }
                stages.push(PStage::Atom {
                    rel,
                    neg,
                    key_cols,
                    key_srcs,
                    checks,
                    binds,
                });
            }
            BodyItem::Cond(expr) => {
                stages.push(PStage::Filter {
                    expr: lower_expr(expr, &layout)?,
                });
            }
            BodyItem::Assign { var, expr, .. } => {
                let ce = lower_expr(expr, &layout)?;
                let slot = layout.len();
                layout.insert(var.clone(), slot);
                stages.push(PStage::Assign { slot, expr: ce });
            }
            BodyItem::FlatMap { var, expr, .. } => {
                let ce = lower_expr(expr, &layout)?;
                let slot = layout.len();
                layout.insert(var.clone(), slot);
                stages.push(PStage::FlatMap { slot, expr: ce });
            }
            BodyItem::Aggregate {
                out_var,
                func,
                arg,
                by,
                ..
            } => {
                has_aggregate = true;
                let group_slots: Vec<usize> = by.iter().map(|k| layout[k.as_str()]).collect();
                let arg_ce = match arg {
                    Some(a) => Some(lower_expr(a, &layout)?),
                    None => None,
                };
                // Environment collapses: new layout is keys then the
                // aggregate output.
                let mut new_layout = HashMap::new();
                for (i, k) in by.iter().enumerate() {
                    new_layout.insert(k.clone(), i);
                }
                new_layout.insert(out_var.clone(), by.len());
                layout = new_layout;
                stages.push(PStage::Aggregate {
                    group_slots,
                    func: *func,
                    arg: arg_ce,
                });
            }
        }
    }

    // Head.
    let head_rel = rel_ids[&rule.head.relation];
    let mut head_exprs = Vec::with_capacity(rule.head.args.len());
    for expr in &rule.head.args {
        head_exprs.push(lower_expr(expr, &layout)?);
    }
    // Backward head matching when every arg folds to a slot or constant.
    let mut head_binds = Some(Vec::new());
    for ce in &head_exprs {
        let hb = match ce {
            CExpr::Var(slot) => Some(HeadBind::Slot(*slot)),
            other => const_fold(other).map(HeadBind::Const),
        };
        match (hb, &mut head_binds) {
            (Some(h), Some(v)) => v.push(h),
            _ => {
                head_binds = None;
                break;
            }
        }
    }

    Ok(CompiledRule {
        rule_index,
        head_rel,
        head_exprs,
        head_binds,
        stages,
        n_slots: layout.len(),
        has_aggregate,
        body_rels,
        drive_plans: DrivePlans::default(),
    })
}

/// Build context-specific drive plans for the rules of one recursive
/// stratum (`plan_idxs`), registering the arrangements the re-keyed
/// probes need. Must run after [`plan`] and before data arrives.
pub fn build_drive_plans(
    compiled: &mut CompiledProgram,
    plan_idxs: &[usize],
    scc_rels: &HashSet<RelId>,
    stores: &mut [RelationStore],
) {
    let CompiledProgram {
        rules,
        arrangements,
        ..
    } = compiled;
    for &pi in plan_idxs {
        let rule_index = rules[pi].rule_index;
        let stages = rules[pi].stages.clone();
        let n = stages.len();
        let mut plans = DrivePlans {
            from: vec![None; n],
            rederive: None,
        };
        for idx in 0..n {
            let PStage::Atom {
                neg: false,
                key_srcs,
                binds,
                ..
            } = &stages[idx]
            else {
                continue;
            };
            // A driving row pre-binds every slot the atom mentions.
            let mut bound = HashSet::new();
            for src in key_srcs {
                if let KeySrc::Slot(s) = src {
                    bound.insert(*s);
                }
            }
            for (_, slot) in binds {
                bound.insert(*slot);
            }
            plans.from[idx] = replan(
                &stages,
                Some(idx),
                bound,
                scc_rels,
                arrangements,
                stores,
                &format!("rule {rule_index} drive@{idx}"),
            );
        }
        if let Some(head_binds) = &rules[pi].head_binds {
            let bound: HashSet<usize> = head_binds
                .iter()
                .filter_map(|hb| match hb {
                    HeadBind::Slot(s) => Some(*s),
                    HeadBind::Const(_) => None,
                })
                .collect();
            plans.rederive = replan(
                &stages,
                None,
                bound,
                scc_rels,
                arrangements,
                stores,
                &format!("rule {rule_index} rederive"),
            );
        }
        rules[pi].drive_plans = plans;
    }
}

/// The value source of one atom column under any binding order.
pub(crate) enum ColSrc {
    /// The column must equal this literal.
    Const(Value),
    /// The column carries this environment slot's value.
    Slot(usize),
}

/// Reconstruct per-column sources from a planned atom stage (its
/// key/bind/check split assumed the original left-to-right order).
/// Shared with the provenance layer, which inverts a recorded
/// environment back into the concrete input rows of each atom.
pub(crate) fn atom_col_srcs(stage: &PStage) -> Vec<(usize, ColSrc)> {
    let PStage::Atom {
        key_cols,
        key_srcs,
        checks,
        binds,
        ..
    } = stage
    else {
        unreachable!("re-keying a non-atom stage")
    };
    let mut srcs: BTreeMap<usize, ColSrc> = BTreeMap::new();
    for (c, s) in key_cols.iter().zip(key_srcs) {
        let src = match s {
            KeySrc::Const(v) => ColSrc::Const(v.clone()),
            KeySrc::Slot(sl) => ColSrc::Slot(*sl),
        };
        srcs.insert(*c, src);
    }
    for (c, sl) in binds {
        srcs.insert(*c, ColSrc::Slot(*sl));
    }
    for (a, b) in checks {
        // Column `a` repeats the variable first bound at column `b`.
        if let Some((_, sl)) = binds.iter().find(|(c, _)| c == b) {
            srcs.insert(*a, ColSrc::Slot(*sl));
        }
    }
    srcs.into_iter().collect()
}

/// An atom's key/check/bind split for a given set of bound slots.
struct Rekeyed {
    key_cols: Vec<usize>,
    key_srcs: Vec<KeySrc>,
    checks: Vec<(usize, usize)>,
    binds: Vec<(usize, usize)>,
}

fn rekey(cols: &[(usize, ColSrc)], bound: &HashSet<usize>) -> Rekeyed {
    let mut out = Rekeyed {
        key_cols: Vec::new(),
        key_srcs: Vec::new(),
        checks: Vec::new(),
        binds: Vec::new(),
    };
    // slot → first column carrying it within this atom.
    let mut local: HashMap<usize, usize> = HashMap::new();
    for (col, src) in cols {
        match src {
            ColSrc::Const(v) => {
                out.key_cols.push(*col);
                out.key_srcs.push(KeySrc::Const(v.clone()));
            }
            ColSrc::Slot(s) if bound.contains(s) => {
                out.key_cols.push(*col);
                out.key_srcs.push(KeySrc::Slot(*s));
            }
            ColSrc::Slot(s) => match local.get(s) {
                Some(first) => out.checks.push((*col, *first)),
                None => {
                    local.insert(*s, *col);
                    out.binds.push((*col, *s));
                }
            },
        }
    }
    out
}

/// True when every slot `expr` reads is in `bound`.
fn slots_bound(expr: &CExpr, bound: &HashSet<usize>) -> bool {
    let mut ok = true;
    expr.visit_slots(&mut |s| ok &= bound.contains(&s));
    ok
}

/// Greedily re-order and re-key `stages` (minus `exclude`) for a context
/// where `bound` slots are pre-bound. Returns `None` when re-planning
/// cannot proceed (the caller falls back to the original order).
#[allow(clippy::too_many_arguments)]
fn replan(
    stages: &[PStage],
    exclude: Option<usize>,
    mut bound: HashSet<usize>,
    scc_rels: &HashSet<RelId>,
    arrangements: &mut Vec<ArrangementSpec>,
    stores: &mut [RelationStore],
    user: &str,
) -> Option<Vec<PStage>> {
    let mut remaining: Vec<usize> = (0..stages.len()).filter(|i| Some(*i) != exclude).collect();
    let mut out = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Take every computed stage whose inputs are bound, in original
        // order, before probing another atom — filters prune early and
        // assignments may unlock more key columns.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut j = 0;
            while j < remaining.len() {
                let i = remaining[j];
                let take = match &stages[i] {
                    PStage::Filter { expr } => slots_bound(expr, &bound),
                    PStage::Assign { slot, expr } | PStage::FlatMap { slot, expr } => {
                        let ok = slots_bound(expr, &bound);
                        if ok {
                            bound.insert(*slot);
                        }
                        ok
                    }
                    PStage::Aggregate { .. } => return None,
                    PStage::Atom { .. } => false,
                };
                if take {
                    out.push(stages[i].clone());
                    remaining.remove(j);
                    progressed = true;
                } else {
                    j += 1;
                }
            }
        }
        if remaining.is_empty() {
            break;
        }
        // Pick the most constrained atom; break ties toward non-SCC
        // relations (their keyed fan-out reflects the data, not the
        // fixpoint's full frontier) and then original order.
        type Score = (usize, bool, std::cmp::Reverse<usize>);
        let mut best: Option<(Score, usize, Rekeyed)> = None;
        for (j, &i) in remaining.iter().enumerate() {
            let PStage::Atom { rel, neg, .. } = &stages[i] else {
                continue;
            };
            let rk = rekey(&atom_col_srcs(&stages[i]), &bound);
            if *neg && !rk.binds.is_empty() {
                continue; // negation needs every variable bound
            }
            let score = (
                rk.key_cols.len(),
                !scc_rels.contains(rel),
                std::cmp::Reverse(i),
            );
            let better = match &best {
                None => true,
                Some((b, _, _)) => score > *b,
            };
            if better {
                best = Some((score, j, rk));
            }
        }
        let (_, j, rk) = best?; // stuck → original-order fallback
        let i = remaining.remove(j);
        let PStage::Atom { rel, neg, .. } = &stages[i] else {
            unreachable!()
        };
        if !rk.key_cols.is_empty() {
            register_arrangement(arrangements, stores, *rel, &rk.key_cols, user.to_string());
        }
        for (_, slot) in &rk.binds {
            bound.insert(*slot);
        }
        out.push(PStage::Atom {
            rel: *rel,
            neg: *neg,
            key_cols: rk.key_cols,
            key_srcs: rk.key_srcs,
            checks: rk.checks,
            binds: rk.binds,
        });
    }
    Some(out)
}

/// Lower an AST expression to a compiled expression, resolving variables
/// against `layout` and folding constants.
pub fn lower_expr(expr: &Expr, layout: &HashMap<String, usize>) -> Result<CExpr> {
    let ce = lower_inner(expr, layout)?;
    Ok(match const_fold(&ce) {
        Some(v) => CExpr::Const(v),
        None => ce,
    })
}

fn lower_inner(expr: &Expr, layout: &HashMap<String, usize>) -> Result<CExpr> {
    Ok(match &expr.kind {
        ExprKind::Lit(lit) => CExpr::Const(natural_literal(lit)),
        ExprKind::Var(name) => match layout.get(name.as_str()) {
            Some(slot) => CExpr::Var(*slot),
            None => {
                return Err(Error::at(
                    Phase::Type,
                    expr.pos,
                    format!("internal: variable `{name}` missing from layout"),
                ))
            }
        },
        ExprKind::Unary(op, e) => CExpr::Unary(*op, Box::new(lower_inner(e, layout)?)),
        ExprKind::Binary(op, a, b) => CExpr::Binary(
            *op,
            Box::new(lower_inner(a, layout)?),
            Box::new(lower_inner(b, layout)?),
        ),
        ExprKind::Call(name, args) => {
            let mut la = Vec::with_capacity(args.len());
            for a in args {
                la.push(lower_inner(a, layout)?);
            }
            CExpr::Call(name.clone(), la)
        }
        ExprKind::IfElse(c, t, f) => CExpr::IfElse(
            Box::new(lower_inner(c, layout)?),
            Box::new(lower_inner(t, layout)?),
            Box::new(lower_inner(f, layout)?),
        ),
        ExprKind::Cast(e, ty) => CExpr::Cast(Box::new(lower_inner(e, layout)?), ty.clone()),
        ExprKind::Tuple(elems) => {
            let mut le = Vec::with_capacity(elems.len());
            for e in elems {
                le.push(lower_inner(e, layout)?);
            }
            CExpr::Tuple(le)
        }
    })
}

/// The value of a literal with no expected type (casts added by the type
/// checker adapt it afterwards).
fn natural_literal(lit: &Literal) -> Value {
    match lit {
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(i) => Value::Int(*i),
        Literal::Double(d) => Value::Double(crate::value::F64(*d)),
        Literal::Str(s) => Value::str(s),
    }
}

/// Evaluate a constant expression to a value, if possible.
fn const_fold(ce: &CExpr) -> Option<Value> {
    if ce.is_const() {
        crate::cexpr::eval(ce, &[]).ok()
    } else {
        None
    }
}

/// Map a `Type` to a conservative "zero" value, used to type-check rows.
pub fn zero_value(ty: &Type) -> Value {
    match ty {
        Type::Bool => Value::Bool(false),
        Type::Int => Value::Int(0),
        Type::Bit(w) => Value::Bit { width: *w, val: 0 },
        Type::Double => Value::Double(crate::value::F64(0.0)),
        Type::Str => Value::str(""),
        Type::Uuid => Value::Uuid(crate::value::Uuid(0)),
        Type::Vec(_) => Value::vec(vec![]),
        Type::Set(_) => Value::set(vec![]),
        Type::Map(_, _) => Value::map(vec![]),
        Type::Tuple(ts) => Value::tuple(ts.iter().map(zero_value).collect()),
        Type::Unknown => Value::Bool(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::typecheck::check;

    fn compile(src: &str) -> (CompiledProgram, Vec<RelationStore>) {
        let prog = parse_program(src).unwrap();
        let checked = check(&prog).unwrap();
        let mut stores: Vec<RelationStore> = prog
            .relations
            .iter()
            .map(|r| RelationStore::new(r.name.clone()))
            .collect();
        let cp = plan(&checked, &mut stores).unwrap();
        (cp, stores)
    }

    #[test]
    fn join_plan_keys() {
        let (cp, stores) = compile(
            "
            input relation Label(n: string, l: bigint)
            input relation Edge(a: string, b: string)
            output relation Out(n: string, l: bigint)
            Out(n2, l) :- Label(n1, l), Edge(n1, n2).
            ",
        );
        let rule = &cp.rules[0];
        assert_eq!(rule.stages.len(), 2);
        match &rule.stages[1] {
            PStage::Atom {
                rel,
                neg,
                key_cols,
                key_srcs,
                binds,
                ..
            } => {
                assert!(!neg);
                assert_eq!(*rel, cp.rel_ids["Edge"]);
                assert_eq!(key_cols, &[0]); // Edge.a joins on n1
                assert_eq!(key_srcs, &[KeySrc::Slot(0)]);
                assert_eq!(binds.len(), 1); // Edge.b binds n2
            }
            other => panic!("unexpected stage {other:?}"),
        }
        // An index on Edge column 0 must have been registered.
        assert!(stores[cp.rel_ids["Edge"]].has_index(&[0]));
    }

    #[test]
    fn literal_in_pattern_becomes_const_key() {
        let (cp, _) = compile(
            "
            input relation Port(id: bit<32>, vlan: bit<12>, tag: string)
            output relation InVlan(port: bit<32>, vlan: bit<12>)
            InVlan(p, v) :- Port(p, v, \"access\").
            ",
        );
        match &cp.rules[0].stages[0] {
            PStage::Atom {
                key_cols, key_srcs, ..
            } => {
                assert_eq!(key_cols, &[2]);
                assert_eq!(key_srcs, &[KeySrc::Const(Value::str("access"))]);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn repeated_var_in_atom_is_check() {
        let (cp, _) = compile(
            "
            input relation E(a: bigint, b: bigint)
            output relation Self(a: bigint)
            Self(a) :- E(a, a).
            ",
        );
        match &cp.rules[0].stages[0] {
            PStage::Atom { checks, binds, .. } => {
                assert_eq!(binds.len(), 1);
                assert_eq!(checks, &[(1, 0)]);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn head_binds_for_simple_heads() {
        let (cp, _) = compile(
            "
            input relation E(a: bigint, b: bigint)
            output relation R(a: bigint, b: bigint)
            output relation S(x: bigint)
            R(a, b) :- E(a, b).
            S(a + b) :- E(a, b).
            ",
        );
        assert!(cp.rules[0].head_binds.is_some());
        assert!(cp.rules[1].head_binds.is_none());
    }

    #[test]
    fn facts_planned_as_constants() {
        let (cp, _) = compile(
            "
            output relation R(x: bigint, s: string)
            R(1 + 2, \"a\" ++ \"b\").
            ",
        );
        assert_eq!(cp.facts.len(), 1);
        assert_eq!(cp.facts[0].1, vec![Value::Int(3), Value::str("ab")]);
    }

    #[test]
    fn arrangements_dedup_and_record_users() {
        let (cp, stores) = compile(
            "
            input relation Label(n: string, l: bigint)
            input relation Edge(a: string, b: string)
            output relation O1(n: string, l: bigint)
            output relation O2(n: string, l: bigint)
            O1(n2, l) :- Label(n1, l), Edge(n1, n2).
            O2(n2, l) :- Label(n1, l), Edge(n1, n2).
            ",
        );
        // Both rules probe Edge by column 0 → one shared arrangement
        // with two users.
        let edge = cp.rel_ids["Edge"];
        let specs: Vec<_> = cp.arrangements.iter().filter(|s| s.rel == edge).collect();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].cols, vec![0]);
        assert_eq!(specs[0].users.len(), 2);
        assert!(stores[edge].has_index(&[0]));
    }

    #[test]
    fn drive_plans_probe_arrangements() {
        let (mut cp, mut stores) = compile(
            "
            input relation Edge(a: string, b: string)
            input relation GivenLabel(n: string, l: bigint)
            output relation Label(n: string, l: bigint)
            Label(n, l) :- GivenLabel(n, l).
            Label(b, l) :- Label(a, l), Edge(a, b).
            ",
        );
        let scc: HashSet<RelId> = [cp.rel_ids["Label"]].into_iter().collect();
        build_drive_plans(&mut cp, &[1], &scc, &mut stores);
        let rule = &cp.rules[1];

        // Driving Edge (stage 1) binds a and b; the Label(a, l) probe
        // must be keyed on column 0 = a, not a full scan.
        let from_edge = rule.drive_plans.from[1].as_ref().unwrap();
        match &from_edge[0] {
            PStage::Atom { rel, key_cols, .. } => {
                assert_eq!(*rel, cp.rel_ids["Label"]);
                assert_eq!(key_cols, &[0]);
            }
            other => panic!("unexpected stage {other:?}"),
        }

        // Driving Label (stage 0) binds a and l; Edge keyed on column 0.
        let from_label = rule.drive_plans.from[0].as_ref().unwrap();
        match &from_label[0] {
            PStage::Atom { rel, key_cols, .. } => {
                assert_eq!(*rel, cp.rel_ids["Edge"]);
                assert_eq!(key_cols, &[0]);
            }
            other => panic!("unexpected stage {other:?}"),
        }

        // Re-derivation binds the head slots (b, l); the best first
        // probe is the non-SCC Edge by b (column 1), then Label fully
        // keyed — never a scan proportional to |Label|.
        let red = rule.drive_plans.rederive.as_ref().unwrap();
        match &red[0] {
            PStage::Atom { rel, key_cols, .. } => {
                assert_eq!(*rel, cp.rel_ids["Edge"]);
                assert_eq!(key_cols, &[1]);
            }
            other => panic!("unexpected stage {other:?}"),
        }
        match &red[1] {
            PStage::Atom { rel, key_cols, .. } => {
                assert_eq!(*rel, cp.rel_ids["Label"]);
                assert_eq!(key_cols, &[0, 1]);
            }
            other => panic!("unexpected stage {other:?}"),
        }

        // The re-keyed probes registered their arrangements.
        assert!(stores[cp.rel_ids["Edge"]].has_index(&[1]));
        assert!(stores[cp.rel_ids["Label"]].has_index(&[0, 1]));
    }

    #[test]
    fn aggregate_collapses_layout() {
        let (cp, _) = compile(
            "
            input relation P(p: bigint, sw: string)
            output relation N(sw: string, n: bigint)
            N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
            ",
        );
        let rule = &cp.rules[0];
        assert!(rule.has_aggregate);
        // Head exprs refer to the post-aggregate layout: sw=0, n=1.
        assert_eq!(rule.head_exprs, vec![CExpr::Var(0), CExpr::Var(1)]);
    }
}
