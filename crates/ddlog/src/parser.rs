//! Recursive-descent parser for the DDlog-style dialect.
//!
//! See [`crate::ast`] for the grammar overview. Relations must be declared
//! before they are used in rules (this is how the parser distinguishes an
//! atom from a boolean condition that happens to look like a call).

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{Error, Phase, Pos, Result};
use crate::lexer::{lex, Spanned, Tok};
use crate::types::Type;

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        typedefs: HashMap::new(),
        relations: Vec::new(),
    };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    typedefs: HashMap<String, Type>,
    relations: Vec<RelationDecl>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        if self.i + 1 < self.toks.len() {
            &self.toks[self.i + 1].tok
        } else {
            &Tok::Eof
        }
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Spanned {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::at(Phase::Parse, self.pos(), msg.into()))
    }

    fn expect(&mut self, tok: Tok) -> Result<Spanned> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<(String, Pos)> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_relation(&self, name: &str) -> bool {
        self.relations.iter().any(|r| r.name == name)
    }

    // ---- program structure ------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut rules = Vec::new();
        let mut typedef_list = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.peek_kw("typedef") {
                let td = self.typedef()?;
                typedef_list.push(td);
            } else if self.peek_kw("input") || self.peek_kw("output") || self.peek_kw("relation") {
                let decl = self.relation_decl()?;
                if self.is_relation(&decl.name) {
                    return Err(Error::at(
                        Phase::Parse,
                        decl.pos,
                        format!("relation `{}` declared twice", decl.name),
                    ));
                }
                self.relations.push(decl);
            } else {
                rules.push(self.rule()?);
            }
        }
        Ok(Program {
            typedefs: typedef_list,
            relations: std::mem::take(&mut self.relations),
            rules,
        })
    }

    fn typedef(&mut self) -> Result<TypeDef> {
        let pos = self.pos();
        self.bump(); // `typedef`
        let (name, _) = self.ident()?;
        self.expect(Tok::Assign)?;
        let ty = self.ty()?;
        if self.typedefs.contains_key(&name) {
            return Err(Error::at(
                Phase::Parse,
                pos,
                format!("typedef `{name}` redefined"),
            ));
        }
        self.typedefs.insert(name.clone(), ty.clone());
        Ok(TypeDef { name, ty, pos })
    }

    fn relation_decl(&mut self) -> Result<RelationDecl> {
        let pos = self.pos();
        let role = if self.eat_kw("input") {
            RelationRole::Input
        } else if self.eat_kw("output") {
            RelationRole::Output
        } else {
            RelationRole::Internal
        };
        if !self.eat_kw("relation") {
            return self.err("expected `relation`");
        }
        let (name, _) = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut columns = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let (cname, _) = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                if columns.iter().any(|(n, _)| *n == cname) {
                    return self.err(format!("duplicate column `{cname}`"));
                }
                columns.push((cname, ty));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(RelationDecl {
            name,
            role,
            columns,
            pos,
        })
    }

    // ---- types ------------------------------------------------------------

    /// Consume a closing `>` in a type, splitting a `>>` token in two so
    /// that nested generics like `Vec<bit<12>>` parse.
    fn expect_close_angle(&mut self) -> Result<()> {
        match self.peek() {
            Tok::Gt => {
                self.bump();
                Ok(())
            }
            Tok::Shr => {
                self.toks[self.i].tok = Tok::Gt;
                Ok(())
            }
            other => {
                let msg = format!("expected `>`, found {other}");
                self.err(msg)
            }
        }
    }

    fn ty(&mut self) -> Result<Type> {
        let pos = self.pos();
        let (name, _) = self.ident()?;
        match name.as_str() {
            "bool" => Ok(Type::Bool),
            "bigint" => Ok(Type::Int),
            "double" => Ok(Type::Double),
            "string" => Ok(Type::Str),
            "uuid" => Ok(Type::Uuid),
            "bit" => {
                self.expect(Tok::Lt)?;
                let w = match self.peek().clone() {
                    Tok::Int(n) if (1..=128).contains(&n) => {
                        self.bump();
                        n as u16
                    }
                    _ => return self.err("expected bit width 1..=128"),
                };
                self.expect_close_angle()?;
                Ok(Type::Bit(w))
            }
            "Vec" => {
                self.expect(Tok::Lt)?;
                let t = self.ty()?;
                self.expect_close_angle()?;
                Ok(Type::Vec(Box::new(t)))
            }
            "Set" => {
                self.expect(Tok::Lt)?;
                let t = self.ty()?;
                self.expect_close_angle()?;
                Ok(Type::Set(Box::new(t)))
            }
            "Map" => {
                self.expect(Tok::Lt)?;
                let k = self.ty()?;
                self.expect(Tok::Comma)?;
                let v = self.ty()?;
                self.expect_close_angle()?;
                Ok(Type::Map(Box::new(k), Box::new(v)))
            }
            other => match self.typedefs.get(other) {
                Some(t) => Ok(t.clone()),
                None => Err(Error::at(
                    Phase::Parse,
                    pos,
                    format!("unknown type `{other}`"),
                )),
            },
        }
    }

    // ---- rules ------------------------------------------------------------

    fn rule(&mut self) -> Result<Rule> {
        let pos = self.pos();
        let head = self.head_atom()?;
        let mut body = Vec::new();
        if *self.peek() == Tok::Turnstile {
            self.bump();
            loop {
                body.push(self.body_item()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Dot)?;
        Ok(Rule { head, body, pos })
    }

    fn head_atom(&mut self) -> Result<HeadAtom> {
        let (name, pos) = self.ident()?;
        if !self.is_relation(&name) {
            return Err(Error::at(
                Phase::Parse,
                pos,
                format!("unknown relation `{name}` in rule head (declare it first)"),
            ));
        }
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(HeadAtom {
            relation: name,
            args,
            pos,
        })
    }

    fn body_item(&mut self) -> Result<BodyItem> {
        let pos = self.pos();
        // `not Rel(..)`
        if self.peek_kw("not") {
            // Only treat as negation if followed by a relation atom;
            // otherwise it is a boolean `not` in a condition.
            if let Tok::Ident(next) = self.peek2() {
                if self.is_relation(next) {
                    self.bump(); // `not`
                    let atom = self.atom()?;
                    return Ok(BodyItem::Not(atom));
                }
            }
        }
        // `var x = ...`
        if self.peek_kw("var") {
            self.bump();
            let (var, _) = self.ident()?;
            self.expect(Tok::Assign)?;
            // FlatMap special form.
            if self.peek_kw("FlatMap") {
                self.bump();
                self.expect(Tok::LParen)?;
                let expr = self.expr()?;
                self.expect(Tok::RParen)?;
                return Ok(BodyItem::FlatMap { var, expr, pos });
            }
            // Possible aggregate: `f(arg) group_by (keys)`. Fully
            // backtrack on any failure so `var x = min(a, b)` (a plain
            // call) still parses.
            let save = self.i;
            match self.try_aggregate(&var, pos) {
                Ok(Some(item)) => return Ok(item),
                Ok(None) | Err(_) => self.i = save,
            }
            let expr = self.expr()?;
            return Ok(BodyItem::Assign { var, expr, pos });
        }
        // Atom vs condition: a declared relation name followed by `(`.
        if let Tok::Ident(name) = self.peek() {
            if self.is_relation(name) && *self.peek2() == Tok::LParen {
                return Ok(BodyItem::Atom(self.atom()?));
            }
        }
        Ok(BodyItem::Cond(self.expr()?))
    }

    /// Attempt to parse `f(arg) group_by (keys)` after `var x =`.
    /// Returns `Ok(None)` when this is definitely not an aggregate (so the
    /// caller should re-parse as a plain expression); `Err` on a partial
    /// match the caller also treats as "not an aggregate" by rewinding.
    fn try_aggregate(&mut self, var: &str, pos: Pos) -> Result<Option<BodyItem>> {
        let fname = match self.peek().clone() {
            Tok::Ident(f) if AggFunc::from_name(&f).is_some() && *self.peek2() == Tok::LParen => f,
            _ => return Ok(None),
        };
        self.bump(); // function name
        self.bump(); // `(`
        let arg = if *self.peek() == Tok::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::RParen)?;
        if !self.peek_kw("group_by") {
            return Ok(None);
        }
        self.bump();
        self.expect(Tok::LParen)?;
        let mut by = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let (k, _) = self.ident()?;
                by.push(k);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let func = AggFunc::from_name(&fname).unwrap();
        if func != AggFunc::Count && arg.is_none() {
            return Err(Error::at(
                Phase::Parse,
                pos,
                format!("aggregate `{fname}` requires an argument"),
            ));
        }
        Ok(Some(BodyItem::Aggregate {
            out_var: var.to_string(),
            func,
            arg,
            by,
            pos,
        }))
    }

    fn atom(&mut self) -> Result<Atom> {
        let (name, pos) = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.pattern()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(Atom {
            relation: name,
            args,
            pos,
        })
    }

    fn pattern(&mut self) -> Result<Pattern> {
        match self.peek().clone() {
            Tok::Underscore => {
                self.bump();
                Ok(Pattern::Wildcard)
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Pattern::Lit(Literal::Int(n)))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(n) => {
                        self.bump();
                        Ok(Pattern::Lit(Literal::Int(-n)))
                    }
                    Tok::Double(d) => {
                        self.bump();
                        Ok(Pattern::Lit(Literal::Double(-d)))
                    }
                    _ => self.err("expected number after `-` in pattern"),
                }
            }
            Tok::Double(d) => {
                self.bump();
                Ok(Pattern::Lit(Literal::Double(d)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pattern::Lit(Literal::Str(s)))
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Pattern::Lit(Literal::Bool(true)))
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Pattern::Lit(Literal::Bool(false)))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Pattern::Var(s))
            }
            other => self.err(format!(
                "expected pattern (variable, `_`, or literal), found {other}"
            )),
        }
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_and()?;
        while self.peek_kw("or") {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_and()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_cmp()?;
        while self.peek_kw("and") {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_cmp()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> Result<Expr> {
        let lhs = self.expr_bitor()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_bitor()?;
            return Ok(Expr::new(
                ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                pos,
            ));
        }
        Ok(lhs)
    }

    fn expr_bitor(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_bitxor()?;
        while *self.peek() == Tok::Pipe {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_bitxor()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_bitxor(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_bitand()?;
        while *self.peek() == Tok::Caret {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_bitand()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_bitand(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_shift()?;
        while *self.peek() == Tok::Amp {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_shift()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_shift(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_concat()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_concat()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos);
        }
        Ok(lhs)
    }

    fn expr_concat(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_add()?;
        while *self.peek() == Tok::PlusPlus {
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_add()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Concat, Box::new(lhs), Box::new(rhs)),
                pos,
            );
        }
        Ok(lhs)
    }

    fn expr_add(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos);
        }
        Ok(lhs)
    }

    fn expr_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_cast()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.expr_cast()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos);
        }
        Ok(lhs)
    }

    fn expr_cast(&mut self) -> Result<Expr> {
        let mut e = self.expr_unary()?;
        while self.peek_kw("as") {
            let pos = self.pos();
            self.bump();
            let ty = self.ty()?;
            e = Expr::new(ExprKind::Cast(Box::new(e), ty), pos);
        }
        Ok(e)
    }

    fn expr_unary(&mut self) -> Result<Expr> {
        let pos = self.pos();
        if *self.peek() == Tok::Minus {
            self.bump();
            let e = self.expr_unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), pos));
        }
        if *self.peek() == Tok::Tilde {
            self.bump();
            let e = self.expr_unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(e)), pos));
        }
        if self.peek_kw("not") {
            self.bump();
            let e = self.expr_unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), pos));
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Literal::Int(n)), pos))
            }
            Tok::Double(d) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Literal::Double(d)), pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Lit(Literal::Str(s)), pos))
            }
            Tok::LParen => {
                self.bump();
                let first = self.expr()?;
                if *self.peek() == Tok::Comma {
                    let mut elems = vec![first];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        elems.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::new(ExprKind::Tuple(elems), pos))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::Ident(name) => {
                if name == "true" {
                    self.bump();
                    return Ok(Expr::new(ExprKind::Lit(Literal::Bool(true)), pos));
                }
                if name == "false" {
                    self.bump();
                    return Ok(Expr::new(ExprKind::Lit(Literal::Bool(false)), pos));
                }
                if name == "if" {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(Tok::RParen)?;
                    let then = self.expr()?;
                    if !self.eat_kw("else") {
                        return self.err("expected `else` in if-expression");
                    }
                    let els = self.expr()?;
                    return Ok(Expr::new(
                        ExprKind::IfElse(Box::new(cond), Box::new(then), Box::new(els)),
                        pos,
                    ));
                }
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::new(ExprKind::Call(name, args), pos))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), pos))
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECLS: &str = "
        input relation Edge(a: string, b: string)
        input relation GivenLabel(n: string, l: bigint)
        output relation Label(n: string, l: bigint)
    ";

    #[test]
    fn parse_paper_example() {
        // The reachability-labeling program from the paper's introduction.
        let src = format!(
            "{DECLS}
             Label(n1, label) :- GivenLabel(n1, label).
             Label(n2, label) :- Label(n1, label), Edge(n1, n2)."
        );
        let prog = parse_program(&src).unwrap();
        assert_eq!(prog.relations.len(), 3);
        assert_eq!(prog.rules.len(), 2);
        assert_eq!(prog.rules[1].body.len(), 2);
        assert_eq!(prog.relations[0].role, RelationRole::Input);
        assert_eq!(prog.relations[2].role, RelationRole::Output);
    }

    #[test]
    fn parse_fact() {
        let src = "output relation R(x: bigint)\nR(42).";
        let prog = parse_program(src).unwrap();
        assert!(prog.rules[0].body.is_empty());
    }

    #[test]
    fn parse_negation_and_cond() {
        let src = "
            input relation S(x: bigint)
            input relation T(x: bigint)
            output relation R(x: bigint)
            R(x) :- S(x), not T(x), x > 10.
        ";
        let prog = parse_program(src).unwrap();
        let body = &prog.rules[0].body;
        assert!(matches!(body[0], BodyItem::Atom(_)));
        assert!(matches!(body[1], BodyItem::Not(_)));
        assert!(matches!(body[2], BodyItem::Cond(_)));
    }

    #[test]
    fn parse_aggregate() {
        let src = "
            input relation P(port: bit<32>, sw: string)
            output relation N(sw: string, n: bigint)
            N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
        ";
        let prog = parse_program(src).unwrap();
        match &prog.rules[0].body[1] {
            BodyItem::Aggregate {
                out_var, func, by, ..
            } => {
                assert_eq!(out_var, "n");
                assert_eq!(*func, AggFunc::Count);
                assert_eq!(by, &["sw".to_string()]);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parse_flatmap_and_assign() {
        let src = "
            input relation T(vlans: Vec<bit<12>>)
            output relation V(v: bit<12>)
            V(v) :- T(vs), var v = FlatMap(vs).
        ";
        let prog = parse_program(src).unwrap();
        assert!(matches!(prog.rules[0].body[1], BodyItem::FlatMap { .. }));

        let src2 = "
            input relation S(x: bigint)
            output relation R(y: bigint)
            R(y) :- S(x), var y = x * 2 + 1.
        ";
        let prog2 = parse_program(src2).unwrap();
        assert!(matches!(prog2.rules[0].body[1], BodyItem::Assign { .. }));
    }

    #[test]
    fn min_call_is_not_aggregate() {
        // `min(a, b)` without group_by parses as a plain call.
        let src = "
            input relation S(a: bigint, b: bigint)
            output relation R(m: bigint)
            R(m) :- S(a, b), var m = min(a).
        ";
        // `min(a)` with one arg and no group_by: rewinds to Assign.
        let prog = parse_program(src).unwrap();
        assert!(matches!(prog.rules[0].body[1], BodyItem::Assign { .. }));
    }

    #[test]
    fn typedef_alias_resolved() {
        let src = "
            typedef PortId = bit<32>
            input relation P(id: PortId)
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.relations[0].columns[0].1, Type::Bit(32));
    }

    #[test]
    fn errors() {
        assert!(parse_program("R(x) :- S(x).").is_err()); // undeclared
        assert!(parse_program("relation R(x: nosuch)").is_err()); // bad type
        assert!(parse_program("input relation R(x: bigint, x: bigint)").is_err());
        assert!(parse_program("input relation R(x: bit<0>)").is_err());
        assert!(parse_program("input relation R(x: bigint) input relation R(y: bool)").is_err());
    }

    #[test]
    fn expr_precedence() {
        let src = "
            input relation S(x: bigint)
            output relation R(y: bigint)
            R(y) :- S(x), var y = 1 + x * 2.
        ";
        let prog = parse_program(src).unwrap();
        if let BodyItem::Assign { expr, .. } = &prog.rules[0].body[1] {
            // Must parse as 1 + (x * 2).
            match &expr.kind {
                ExprKind::Binary(BinOp::Add, a, b) => {
                    assert!(matches!(a.kind, ExprKind::Lit(Literal::Int(1))));
                    assert!(matches!(b.kind, ExprKind::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("bad parse: {other:?}"),
            }
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn tuple_expr_and_if() {
        let src = "
            input relation S(x: bigint)
            output relation R(y: bigint)
            R(y) :- S(x), var p = (x, x + 1), var y = if (x > 0) x else 0 - x.
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.rules[0].body.len(), 3);
    }
}
