//! Persistent keyed arrangements: incrementally maintained hash indexes
//! over a relation's visible rows, shared between every operator that
//! probes the same `(relation, key columns)` pair.
//!
//! This is the differential-dataflow idea the real DDlog runtime is
//! built on: instead of scanning a relation per commit (cost ∝ state),
//! every join, antijoin, and driven recursive probe hits an arrangement
//! that was updated alongside the z-set (cost ∝ delta). Arrangements are
//! created at plan time (before any data arrives), deduplicated by their
//! key columns across operators, and their maintenance cost is accounted
//! as [`crate::profile::OpKind::Arrange`] operators so the
//! incrementality audit and `nerpa-prof` see the work.

use std::collections::{HashMap, HashSet};

use crate::store::{value_bytes, Key};
use crate::value::Row;
use crate::zset::ZSet;

/// Cost of one arrangement entry (an `Arc` clone of the row plus set
/// overhead).
pub(crate) const ARRANGE_ENTRY_BYTES: usize = std::mem::size_of::<Row>() + 16;

/// Pending (not yet flushed) maintenance counters of one arrangement.
/// The engine drains these into the commit's [`crate::WorkProfile`] as
/// the arrangement's `Arrange` operator stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrStats {
    /// Maintenance batches applied (one per set-level delta).
    pub invocations: u64,
    /// Rows inserted into or retracted from the index.
    pub tuples: u64,
    /// Largest single maintenance batch.
    pub peak: u64,
    /// Wall time spent maintaining the index, nanoseconds.
    pub wall_ns: u64,
}

impl ArrStats {
    /// Drain the counters, returning the accumulated values.
    pub fn take(&mut self) -> ArrStats {
        std::mem::take(self)
    }
}

/// One maintained hash index over a relation's visible rows, keyed by a
/// fixed ascending column subset.
#[derive(Debug, Clone)]
pub struct Arrangement {
    /// The key columns, ascending.
    cols: Vec<usize>,
    /// Index into the compiled program's arrangement catalog (drives the
    /// `Arrange` operator this index is accounted to). `None` for
    /// ad-hoc arrangements created outside planning (tests).
    global: Option<usize>,
    map: HashMap<Key, HashSet<Row>>,
    pending: ArrStats,
}

impl Arrangement {
    /// An empty arrangement over `cols`.
    pub fn new(cols: &[usize], global: Option<usize>) -> Arrangement {
        Arrangement {
            cols: cols.to_vec(),
            global,
            map: HashMap::new(),
            pending: ArrStats::default(),
        }
    }

    /// The key columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The catalog id this arrangement is accounted to, if any.
    pub fn global(&self) -> Option<usize> {
        self.global
    }

    /// Upgrade an ad-hoc arrangement to a cataloged one (idempotent).
    pub fn set_global(&mut self, global: usize) {
        self.global.get_or_insert(global);
    }

    fn project(&self, row: &Row) -> Key {
        self.cols.iter().map(|c| row[*c].clone()).collect()
    }

    /// Rows matching `key`, or `None` when the key is absent.
    pub fn get(&self, key: &Key) -> Option<&HashSet<Row>> {
        self.map.get(key)
    }

    /// Number of rows matching `key`.
    pub fn len_of(&self, key: &Key) -> usize {
        self.map.get(key).map(HashSet::len).unwrap_or(0)
    }

    /// Insert one row; returns the approx-bytes growth.
    fn insert(&mut self, row: &Row) -> usize {
        let key = self.project(row);
        let key_cost: usize = key.iter().map(value_bytes).sum();
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get_mut().insert(row.clone()) {
                    ARRANGE_ENTRY_BYTES
                } else {
                    0
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(HashSet::from([row.clone()]));
                key_cost + ARRANGE_ENTRY_BYTES
            }
        }
    }

    /// Remove one row; returns the approx-bytes shrinkage.
    fn remove(&mut self, row: &Row) -> usize {
        let key = self.project(row);
        let mut freed = 0;
        if let Some(set) = self.map.get_mut(&key) {
            if set.remove(row) {
                freed += ARRANGE_ENTRY_BYTES;
            }
            if set.is_empty() {
                freed += key.iter().map(value_bytes).sum::<usize>();
                self.map.remove(&key);
            }
        }
        freed
    }

    /// Apply one set-level delta (+1 visible, −1 gone), timing the batch
    /// into the pending stats. When `skip_retractions` is set (the
    /// oracle's `stale-arrangement` fault injection), −1 rows are left
    /// in the index — a correctness bug the differential harness must
    /// catch. Returns `(bytes_grown, bytes_freed)`.
    pub fn apply(&mut self, set_delta: &ZSet<Row>, skip_retractions: bool) -> (usize, usize) {
        let t0 = std::time::Instant::now();
        let (mut grown, mut freed) = (0usize, 0usize);
        for (row, w) in set_delta.iter() {
            if w > 0 {
                grown += self.insert(row);
            } else if !skip_retractions {
                freed += self.remove(row);
            }
        }
        let batch = set_delta.len() as u64;
        self.pending.invocations += 1;
        self.pending.tuples += batch;
        self.pending.peak = self.pending.peak.max(batch);
        self.pending.wall_ns += t0.elapsed().as_nanos() as u64;
        (grown, freed)
    }

    /// Drain the pending maintenance counters.
    pub fn take_stats(&mut self) -> ArrStats {
        self.pending.take()
    }

    /// Recompute this arrangement's approx-bytes share by walking it.
    pub fn recompute_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, set)| {
                k.iter().map(value_bytes).sum::<usize>() + set.len() * ARRANGE_ENTRY_BYTES
            })
            .sum()
    }

    /// Approximate resident bytes of the rows referenced through this
    /// arrangement if each entry held its own row copy — used only for
    /// diagnostics; entries actually share `Arc`s with the store.
    pub fn entries(&self) -> usize {
        self.map.values().map(HashSet::len).sum()
    }

    /// Check that the incrementally maintained index equals one built
    /// from scratch over `rows` (the relation's current visible rows).
    /// This is the arrangement-drift detector the test suite and the
    /// oracle demos lean on.
    pub fn validate<'a>(
        &self,
        rows: impl Iterator<Item = &'a Row>,
        relation: &str,
    ) -> Result<(), String> {
        let mut fresh: HashMap<Key, HashSet<Row>> = HashMap::new();
        for row in rows {
            fresh
                .entry(self.project(row))
                .or_default()
                .insert(row.clone());
        }
        if fresh == self.map {
            return Ok(());
        }
        // Report the first divergent key deterministically.
        let mut keys: Vec<&Key> = fresh.keys().chain(self.map.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let want = fresh.get(key).map(HashSet::len).unwrap_or(0);
            let got = self.map.get(key).map(HashSet::len).unwrap_or(0);
            if want != got {
                return Err(format!(
                    "arrangement `{relation}` by {:?} diverged at key {key:?}: \
                     index holds {got} rows, store holds {want}",
                    self.cols
                ));
            }
        }
        Err(format!(
            "arrangement `{relation}` by {:?} diverged (same sizes, different rows)",
            self.cols
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{row, Value};

    fn r(vals: &[i128]) -> Row {
        row(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn maintenance_matches_scratch_build() {
        let mut arr = Arrangement::new(&[0], None);
        let mut live: Vec<Row> = Vec::new();
        for i in 0..40 {
            let row = r(&[i % 5, i]);
            let mut d = ZSet::new();
            d.add(row.clone(), 1);
            arr.apply(&d, false);
            live.push(row);
        }
        // Retract every third row.
        live.retain(|row| {
            if row[1] == Value::Int(3) || row[1] == Value::Int(6) {
                let mut d = ZSet::new();
                d.add(row.clone(), -1);
                arr.apply(&d, false);
                false
            } else {
                true
            }
        });
        arr.validate(live.iter(), "T").unwrap();
        assert_eq!(arr.entries(), live.len());
    }

    #[test]
    fn skipped_retraction_is_detected() {
        let mut arr = Arrangement::new(&[0], None);
        let row = r(&[1, 2]);
        let mut d = ZSet::new();
        d.add(row.clone(), 1);
        arr.apply(&d, false);
        let mut del = ZSet::new();
        del.add(row, -1);
        arr.apply(&del, true); // stale-arrangement fault
        let live: Vec<Row> = Vec::new();
        let err = arr.validate(live.iter(), "T").unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let mut arr = Arrangement::new(&[0], Some(3));
        let mut d = ZSet::new();
        d.add(r(&[1, 1]), 1);
        d.add(r(&[2, 2]), 1);
        arr.apply(&d, false);
        let s = arr.take_stats();
        assert_eq!(s.invocations, 1);
        assert_eq!(s.tuples, 2);
        assert_eq!(s.peak, 2);
        assert_eq!(arr.take_stats(), ArrStats::default());
        assert_eq!(arr.global(), Some(3));
    }

    #[test]
    fn byte_accounting_balances() {
        let mut arr = Arrangement::new(&[1], None);
        let rows = [r(&[1, 7]), r(&[2, 7]), r(&[3, 8])];
        let mut grown_total = 0;
        for row in &rows {
            let mut d = ZSet::new();
            d.add(row.clone(), 1);
            let (g, f) = arr.apply(&d, false);
            grown_total += g;
            assert_eq!(f, 0);
        }
        assert_eq!(grown_total, arr.recompute_bytes());
        let mut freed_total = 0;
        for row in &rows {
            let mut d = ZSet::new();
            d.add(row.clone(), -1);
            let (g, f) = arr.apply(&d, false);
            assert_eq!(g, 0);
            freed_total += f;
        }
        assert_eq!(freed_total, grown_total);
        assert_eq!(arr.recompute_bytes(), 0);
    }
}
