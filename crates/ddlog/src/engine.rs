//! The incremental engine: compiled program + stores + transactions.
//!
//! An [`Engine`] is built from source text. Clients change *input*
//! relations through [`Transaction`]s; [`Engine::commit`] propagates the
//! change through the strata incrementally and returns the set-level
//! deltas of all *output* relations — the paper's streaming contract
//! ("a stream of updates to input relations ... produces a corresponding
//! stream of updates to the computed output relations", §4.1).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ast::RelationRole;
use crate::chain::{process_rule, RuleState};
use crate::error::{Error, Phase, Result};
use crate::plan::{plan, CompiledProgram};
use crate::profile::{AuditConfig, FixpointProbe, OpCatalog, WorkProfile};
use crate::provenance::{Ledger, ProvenanceConfig, QueryCtx, WhyNode, WhyNot, FACT};
use crate::recursive::process_recursive_stratum;
use crate::store::{RelId, RelationStore};
use crate::stratify::{stratify, Stratification};
use crate::typecheck::{check, CheckedProgram};
use crate::types::Type;
use crate::value::{Row, Value};
use crate::zset::ZSet;

struct EngineMetrics {
    commits: telemetry::Counter,
    commit_us: telemetry::Histogram,
    input_ops: telemetry::Counter,
    output_changes: telemetry::Counter,
    zset_rows: telemetry::Gauge,
    state_bytes: telemetry::Gauge,
}

fn engine_metrics() -> &'static EngineMetrics {
    static M: std::sync::OnceLock<EngineMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = &telemetry::global().registry;
        EngineMetrics {
            commits: reg.counter("ddlog_commits_total", "Committed engine transactions"),
            commit_us: reg.histogram(
                "ddlog_commit_duration_us",
                "Incremental propagation latency per commit (us)",
                &telemetry::LATENCY_BOUNDS_US,
            ),
            input_ops: reg.counter("ddlog_input_ops_total", "Input relation operations applied"),
            output_changes: reg.counter(
                "ddlog_output_changes_total",
                "Output relation row changes emitted",
            ),
            zset_rows: reg.gauge("ddlog_zset_rows", "Visible rows across all relation stores"),
            state_bytes: reg.gauge(
                "ddlog_state_bytes",
                "Approximate resident bytes of stores and arrangements",
            ),
        }
    })
}

/// Cached per-operator counter handles (created once per engine, bumped
/// once per commit).
struct OpSeries {
    tuples_in: telemetry::Counter,
    tuples_out: telemetry::Counter,
    wall_ns: telemetry::Counter,
}

fn op_series(catalog: &OpCatalog) -> Vec<OpSeries> {
    let reg = &telemetry::global().registry;
    catalog
        .ops
        .iter()
        .map(|m| {
            let id = m.id.to_string();
            let rule = m.rule.map(|r| r.to_string()).unwrap_or_default();
            let labels: [(&str, &str); 4] = [
                ("op", &id),
                ("kind", m.kind.name()),
                ("rule", &rule),
                ("detail", &m.detail),
            ];
            OpSeries {
                tuples_in: reg.counter_with(
                    "ddlog_op_tuples_in_total",
                    "Tuples consumed per dataflow operator",
                    &labels,
                ),
                tuples_out: reg.counter_with(
                    "ddlog_op_tuples_out_total",
                    "Tuples produced per dataflow operator",
                    &labels,
                ),
                wall_ns: reg.counter_with(
                    "ddlog_op_wall_ns_total",
                    "Wall time per dataflow operator (ns)",
                    &labels,
                ),
            }
        })
        .collect()
}

fn relation_changes_counter(relation: &str) -> telemetry::Counter {
    telemetry::global().registry.counter_with(
        "ddlog_relation_changes_total",
        "Output relation row changes by relation",
        &[("relation", relation)],
    )
}

/// The set-level changes produced by one committed transaction, for every
/// output relation that changed. Rows are paired with +1 (inserted) or −1
/// (deleted) and sorted for deterministic iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TxnDelta {
    /// Relation name → sorted (row, ±1) list.
    pub changes: BTreeMap<String, Vec<(Vec<Value>, isize)>>,
}

impl TxnDelta {
    /// True if no output relation changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Total number of changed rows across all relations.
    pub fn len(&self) -> usize {
        self.changes.values().map(Vec::len).sum()
    }
}

/// A buffered set of input changes; apply with [`Engine::commit`].
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    ops: Vec<(String, Vec<Value>, bool)>,
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// Buffer an insertion into an input relation.
    pub fn insert(&mut self, relation: impl Into<String>, row: Vec<Value>) -> &mut Self {
        self.ops.push((relation.into(), row, true));
        self
    }

    /// Buffer a deletion from an input relation.
    pub fn delete(&mut self, relation: impl Into<String>, row: Vec<Value>) -> &mut Self {
        self.ops.push((relation.into(), row, false));
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Execution metadata for one stratum.
#[derive(Debug, Clone)]
struct StratumExec {
    recursive: bool,
    rels: Vec<RelId>,
    /// Indices into `compiled.rules`.
    plan_idxs: Vec<usize>,
}

/// A compiled, running incremental Datalog program.
pub struct Engine {
    checked: CheckedProgram,
    compiled: CompiledProgram,
    #[allow(dead_code)]
    strat: Stratification,
    strata: Vec<StratumExec>,
    stores: Vec<RelationStore>,
    rule_states: Vec<RuleState>,
    /// Set after an evaluation error mid-commit; the engine state may be
    /// inconsistent and all further operations fail.
    poisoned: bool,
    commits: u64,
    /// Stable operator catalog derived from the compiled plan.
    catalog: OpCatalog,
    /// Per-operator telemetry counter handles, parallel to the catalog.
    series: Vec<OpSeries>,
    /// Cumulative work across all commits (and initial fact propagation).
    cumulative: WorkProfile,
    /// Profile of the most recent commit (even one that failed the audit).
    last_profile: Option<WorkProfile>,
    /// When set, every commit is checked against the work budget.
    audit: Option<AuditConfig>,
    /// Causal trace id stamped onto the next commit's flight-recorder
    /// events (consumed per commit; 0 = untraced).
    commit_trace: u64,
    /// Per plan index: whether the rule runs in a recursive stratum
    /// (provenance answers those by driven search, not the ledger).
    recursive_plans: Vec<bool>,
    /// The provenance ledger, maintained when the engine was built with
    /// [`ProvenanceConfig::on`].
    provenance: Option<Ledger>,
}

impl Engine {
    /// Parse, type-check, stratify, plan, and initialize an engine from
    /// program source. Provenance is off; use
    /// [`Engine::from_source_with`] to enable it.
    pub fn from_source(src: &str) -> Result<Engine> {
        Engine::from_source_with(src, ProvenanceConfig::off())
    }

    /// Like [`Engine::from_source`], with explicit provenance
    /// configuration. The choice is fixed for the engine's lifetime:
    /// the capture hooks exist only when enabled, so a provenance-off
    /// engine evaluates exactly as before.
    pub fn from_source_with(src: &str, prov: ProvenanceConfig) -> Result<Engine> {
        let program = crate::parser::parse_program(src)?;
        let checked = check(&program)?;
        let strat = stratify(&checked.program)?;

        let mut stores: Vec<RelationStore> = checked
            .program
            .relations
            .iter()
            .map(|r| RelationStore::new(r.name.clone()))
            .collect();
        let mut compiled = plan(&checked, &mut stores)?;

        // Resolve strata to plan indices and relation ids.
        let plan_of_rule: HashMap<usize, usize> = compiled
            .rules
            .iter()
            .enumerate()
            .map(|(pi, r)| (r.rule_index, pi))
            .collect();
        let mut strata = Vec::with_capacity(strat.strata.len());
        for s in &strat.strata {
            let rels: Vec<RelId> = s.relations.iter().map(|n| compiled.rel_ids[n]).collect();
            let plan_idxs: Vec<usize> = s
                .rule_indices
                .iter()
                .filter_map(|ri| plan_of_rule.get(ri).copied())
                .collect();
            if s.recursive {
                for pi in &plan_idxs {
                    if compiled.rules[*pi].has_aggregate {
                        return Err(Error::new(
                            Phase::Stratify,
                            format!(
                                "rule for `{}` uses an aggregate but its head is in a \
                                 recursive stratum; this is unsupported",
                                checked.program.rules[compiled.rules[*pi].rule_index]
                                    .head
                                    .relation
                            ),
                        ));
                    }
                }
            }
            strata.push(StratumExec {
                recursive: s.recursive,
                rels,
                plan_idxs,
            });
        }

        // Re-plan recursive rules per drive context so every probe of the
        // fixpoint hits a maintained arrangement (registering the extra
        // arrangements before any data arrives).
        for s in &strata {
            if s.recursive {
                let scc: HashSet<RelId> = s.rels.iter().copied().collect();
                crate::plan::build_drive_plans(&mut compiled, &s.plan_idxs, &scc, &mut stores);
            }
        }

        let rule_states = compiled.rules.iter().map(RuleState::new).collect();

        let strata_shape: Vec<(bool, Vec<usize>)> = strata
            .iter()
            .map(|s| (s.recursive, s.plan_idxs.clone()))
            .collect();
        let catalog = OpCatalog::build(&compiled, &strata_shape);
        let series = op_series(&catalog);
        let cumulative = WorkProfile::new(catalog.len());

        let mut recursive_plans = vec![false; compiled.rules.len()];
        for s in &strata {
            if s.recursive {
                for pi in &s.plan_idxs {
                    recursive_plans[*pi] = true;
                }
            }
        }

        let mut engine = Engine {
            checked,
            compiled,
            strat,
            strata,
            stores,
            rule_states,
            poisoned: false,
            commits: 0,
            catalog,
            series,
            cumulative,
            last_profile: None,
            audit: None,
            commit_trace: 0,
            recursive_plans,
            provenance: prov.enabled.then(Ledger::default),
        };

        // Install constant facts and propagate them like a transaction.
        let mut rel_deltas: HashMap<RelId, ZSet<Row>> = HashMap::new();
        let facts = engine.compiled.facts.clone();
        for (rel, row) in facts {
            let row: Row = std::sync::Arc::new(row);
            if let Some(ledger) = engine.provenance.as_mut() {
                ledger.apply(rel, FACT, row.clone(), std::sync::Arc::new(Vec::new()), 1);
            }
            let sd = engine.stores[rel].apply_derivation_delta(&ZSet::singleton(row, 1));
            rel_deltas.entry(rel).or_default().merge(sd);
        }
        rel_deltas.retain(|_, z| !z.is_empty());
        let mut init_profile = WorkProfile::new(engine.catalog.len());
        let init_out = engine.propagate(&mut rel_deltas, &mut init_profile);
        engine.flush_arrangement_stats(&mut init_profile);
        init_out?;
        engine.stamp_touches(&rel_deltas, 0);
        engine.cumulative.merge(&init_profile);
        Ok(engine)
    }

    /// The names of all relations, in declaration order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.checked
            .program
            .relations
            .iter()
            .map(|r| r.name.as_str())
            .collect()
    }

    /// The declared column types of a relation.
    pub fn relation_types(&self, relation: &str) -> Option<Vec<Type>> {
        self.checked
            .program
            .relation(relation)
            .map(|d| d.column_types())
    }

    /// Number of committed transactions.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commit a transaction: apply input changes, propagate incrementally,
    /// return output deltas.
    pub fn commit(&mut self, txn: Transaction) -> Result<TxnDelta> {
        self.commit_profiled(txn).map(|(delta, _)| delta)
    }

    /// Like [`Engine::commit`], but also returns the transaction's
    /// [`WorkProfile`]: per-operator tuples-in/out, peak intermediate
    /// z-set sizes, and wall time.
    pub fn commit_profiled(&mut self, txn: Transaction) -> Result<(TxnDelta, WorkProfile)> {
        if self.poisoned {
            return Err(Error::new(
                Phase::Eval,
                "engine is poisoned by an earlier evaluation error".to_string(),
            ));
        }
        let started = std::time::Instant::now();
        let metrics = engine_metrics();
        metrics.input_ops.add(txn.ops.len() as u64);

        // Normalize ops into per-relation membership deltas. Ops are
        // applied in order against a virtual view, so insert-then-delete
        // of the same row in one transaction is a no-op.
        let mut intents: HashMap<(RelId, Row), (bool, bool)> = HashMap::new(); // (initial, tentative)
        for (rel_name, row_vals, is_insert) in &txn.ops {
            let rel =
                *self.compiled.rel_ids.get(rel_name).ok_or_else(|| {
                    Error::new(Phase::Eval, format!("unknown relation `{rel_name}`"))
                })?;
            let decl = &self.compiled.decls[rel];
            if decl.role != RelationRole::Input {
                return Err(Error::new(
                    Phase::Eval,
                    format!("relation `{rel_name}` is not an input relation"),
                ));
            }
            if row_vals.len() != decl.arity() {
                return Err(Error::new(
                    Phase::Eval,
                    format!(
                        "relation `{rel_name}` has {} columns, row has {}",
                        decl.arity(),
                        row_vals.len()
                    ),
                ));
            }
            for (v, (cname, cty)) in row_vals.iter().zip(&decl.columns) {
                if !v.matches_type(cty) {
                    return Err(Error::new(
                        Phase::Eval,
                        format!(
                            "value {v} for column `{cname}` of `{rel_name}` is not of type {cty}"
                        ),
                    ));
                }
            }
            let row: Row = std::sync::Arc::new(row_vals.clone());
            let key = (rel, row);
            let entry = intents.entry(key.clone()).or_insert_with(|| {
                let present = self.stores[key.0].contains(&key.1);
                (present, present)
            });
            entry.1 = *is_insert;
        }

        // Apply the net intents per relation, recording each relation's
        // Distinct operator (derivation-count maintenance).
        let mut profile = WorkProfile::new(self.catalog.len());
        let mut input_deltas: HashMap<RelId, ZSet<Row>> = HashMap::new();
        for ((rel, row), (initial, fin)) in intents {
            if initial != fin {
                let w = if fin { 1 } else { -1 };
                input_deltas.entry(rel).or_default().add(row, w);
            }
        }
        let mut rel_deltas: HashMap<RelId, ZSet<Row>> = HashMap::new();
        for (rel, d) in input_deltas {
            let t0 = std::time::Instant::now();
            let tuples_in = d.len() as u64;
            let sd = self.stores[rel].apply_derivation_delta(&d);
            profile.record(
                self.catalog.distinct_ops[rel],
                tuples_in,
                sd.len() as u64,
                tuples_in.max(sd.len() as u64),
                t0.elapsed().as_nanos() as u64,
            );
            if !sd.is_empty() {
                rel_deltas.insert(rel, sd);
            }
        }
        profile.input_tuples = rel_deltas.values().map(ZSet::len).sum::<usize>() as u64;

        let out = self.propagate(&mut rel_deltas, &mut profile);
        // Drain pending arrangement-maintenance stats into this commit's
        // profile even on error, so they can't leak into the next commit.
        let arrange_maintained = self.flush_arrangement_stats(&mut profile);
        let trace = std::mem::take(&mut self.commit_trace);
        if out.is_err() {
            self.poisoned = true;
        }
        self.commits += 1;
        profile.total_wall_ns = started.elapsed().as_nanos() as u64;
        metrics.commit_us.record_duration(started.elapsed());
        metrics.commits.inc();
        let delta = out?;
        self.stamp_touches(&rel_deltas, trace);
        metrics.output_changes.add(delta.len() as u64);
        for (rel, rows) in &delta.changes {
            relation_changes_counter(rel).add(rows.len() as u64);
        }
        metrics
            .zset_rows
            .set(self.stores.iter().map(RelationStore::len).sum::<usize>() as i64);
        metrics.state_bytes.set(self.approx_bytes() as i64);
        for (op, s) in profile.stats.iter().enumerate() {
            if s.invocations == 0 {
                continue;
            }
            self.series[op].tuples_in.add(s.tuples_in);
            self.series[op].tuples_out.add(s.tuples_out);
            self.series[op].wall_ns.add(s.wall_ns);
        }
        self.cumulative.merge(&profile);
        self.last_profile = Some(profile.clone());
        telemetry::log_debug!(
            "ddlog",
            "commit #{}: {} output changes across {} relations, {} tuples processed",
            self.commits,
            delta.len(),
            delta.changes.len(),
            profile.total_tuples()
        );
        telemetry::record_event(
            telemetry::Plane::Control,
            "ddlog.apply",
            trace,
            &[
                ("input_tuples", profile.input_tuples),
                ("output_changes", delta.len() as u64),
                ("work_tuples", profile.total_tuples()),
                ("arrange_maintained", arrange_maintained),
                ("wall_ns", profile.total_wall_ns),
            ],
        );
        if let Some(cfg) = self.audit {
            if let Err(msg) = cfg.check(&profile, delta.len() as u64) {
                telemetry::record_event_note(
                    telemetry::Plane::Control,
                    "ddlog.audit_trip",
                    trace,
                    &[("work_tuples", profile.total_tuples())],
                    msg.clone(),
                );
                telemetry::failure_signal("audit-trip", &msg);
                return Err(Error::new(Phase::Eval, msg));
            }
        }
        Ok((delta, profile))
    }

    /// Propagate already-applied input deltas through all strata,
    /// recording per-operator work into `profile`.
    fn propagate(
        &mut self,
        rel_deltas: &mut HashMap<RelId, ZSet<Row>>,
        profile: &mut WorkProfile,
    ) -> Result<TxnDelta> {
        for si in 0..self.strata.len() {
            let stratum = self.strata[si].clone();
            if stratum.recursive {
                let rules: Vec<&crate::plan::CompiledRule> = stratum
                    .plan_idxs
                    .iter()
                    .map(|pi| &self.compiled.rules[*pi])
                    .collect();
                let scc: HashSet<RelId> = stratum.rels.iter().copied().collect();
                let mut probe = FixpointProbe::default();
                let t0 = std::time::Instant::now();
                let net = process_recursive_stratum(
                    &rules,
                    &scc,
                    &mut self.stores,
                    rel_deltas,
                    Some(&mut probe),
                )?;
                let wall = t0.elapsed().as_nanos() as u64;
                let out_tuples = net.values().map(ZSet::len).sum::<usize>() as u64;
                if let Some(op) = self.catalog.fixpoint_ops[si] {
                    // tuples_in counts driven frontier rows plus every row
                    // the fixpoint's probes examined — a full scan shows
                    // up here and trips the incrementality audit.
                    profile.record(
                        op,
                        probe.driven + probe.examined,
                        out_tuples,
                        probe.peak,
                        wall,
                    );
                }
                for (rel, z) in net {
                    rel_deltas.entry(rel).or_default().merge(z);
                }
            } else {
                let mut acc: HashMap<RelId, ZSet<Row>> = HashMap::new();
                let mut captures: Vec<(Row, crate::cexpr::Binding, isize)> = Vec::new();
                for pi in &stratum.plan_idxs {
                    let rule = &self.compiled.rules[*pi];
                    let head_delta = process_rule(
                        rule,
                        &mut self.rule_states[*pi],
                        &self.stores,
                        rel_deltas,
                        Some((
                            &self.catalog.rule_ops[*pi],
                            &self.catalog.stage_arrange_ops[*pi],
                            profile,
                        )),
                        self.provenance.is_some().then_some(&mut captures),
                    )?;
                    if let Some(ledger) = self.provenance.as_mut() {
                        for (row, env, w) in captures.drain(..) {
                            ledger.apply(rule.head_rel, *pi, row, env, w);
                        }
                    }
                    if !head_delta.is_empty() {
                        acc.entry(rule.head_rel).or_default().merge(head_delta);
                    }
                }
                for (rel, deriv_delta) in acc {
                    let t0 = std::time::Instant::now();
                    let tuples_in = deriv_delta.len() as u64;
                    let sd = self.stores[rel].apply_derivation_delta(&deriv_delta);
                    profile.record(
                        self.catalog.distinct_ops[rel],
                        tuples_in,
                        sd.len() as u64,
                        tuples_in.max(sd.len() as u64),
                        t0.elapsed().as_nanos() as u64,
                    );
                    if !sd.is_empty() {
                        rel_deltas.entry(rel).or_default().merge(sd);
                    }
                }
            }
        }

        // Collect output deltas.
        let mut changes = BTreeMap::new();
        for (rel, z) in rel_deltas.iter() {
            let decl = &self.compiled.decls[*rel];
            if decl.role != RelationRole::Output || z.is_empty() {
                continue;
            }
            let mut rows: Vec<(Vec<Value>, isize)> =
                z.iter().map(|(r, w)| ((**r).clone(), w)).collect();
            rows.sort();
            changes.insert(decl.name.clone(), rows);
        }
        Ok(TxnDelta { changes })
    }

    /// Drain every store's pending arrangement-maintenance counters into
    /// `profile` under their cataloged `Arrange` operators.
    fn flush_arrangement_stats(&mut self, profile: &mut WorkProfile) -> u64 {
        let mut maintained = 0u64;
        for store in &mut self.stores {
            for (global, s) in store.take_arrangement_stats() {
                let op = self.catalog.arrange_ops[global];
                let st = &mut profile.stats[op];
                st.invocations += s.invocations;
                st.tuples_in += s.tuples;
                st.peak = st.peak.max(s.peak);
                st.wall_ns += s.wall_ns;
                maintained += s.tuples;
            }
        }
        maintained
    }

    /// Arm or disarm the `stale-arrangement` fault injection used by the
    /// differential oracle (`crates/oracle`): while armed, relation
    /// arrangements skip index maintenance on retraction, so probes see
    /// ghost rows and derived state drifts from a from-scratch rebuild.
    pub fn inject_stale_arrangement(&mut self, on: bool) {
        for store in &mut self.stores {
            store.set_stale_retractions(on);
        }
    }

    /// Validate every relation arrangement against an index rebuilt from
    /// scratch over the current visible rows — the arrangement-drift
    /// detector used by tests and the oracle.
    pub fn validate_arrangements(&self) -> Result<()> {
        for store in &self.stores {
            store
                .validate_arrangements()
                .map_err(|m| Error::new(Phase::Eval, m))?;
        }
        Ok(())
    }

    /// Stamp the set-level row changes of a committed transaction into
    /// the provenance touch map: inserts record `(trace, commit)`,
    /// retractions forget the stamp.
    fn stamp_touches(&mut self, rel_deltas: &HashMap<RelId, ZSet<Row>>, trace: u64) {
        let commit = self.commits;
        let Some(ledger) = self.provenance.as_mut() else {
            return;
        };
        for (rel, z) in rel_deltas {
            for (row, w) in z.iter() {
                if w > 0 {
                    ledger.stamp(*rel, row, trace, commit);
                } else {
                    ledger.unstamp(*rel, row);
                }
            }
        }
    }

    /// True when this engine maintains the provenance ledger.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance.is_some()
    }

    /// The declared `(column name, type)` pairs of a relation; lets
    /// callers (e.g. the `nerpa-why` CLI) parse textual row literals.
    pub fn relation_schema(&self, relation: &str) -> Result<Vec<(String, crate::types::Type)>> {
        let rel = self.rel_id(relation)?;
        Ok(self.compiled.decls[rel].columns.clone())
    }

    fn rel_id(&self, relation: &str) -> Result<RelId> {
        self.compiled
            .rel_ids
            .get(relation)
            .copied()
            .ok_or_else(|| Error::new(Phase::Eval, format!("unknown relation `{relation}`")))
    }

    fn check_row_arity(&self, rel: RelId, row: &[Value]) -> Result<()> {
        let decl = &self.compiled.decls[rel];
        if row.len() != decl.arity() {
            return Err(Error::new(
                Phase::Eval,
                format!(
                    "relation `{}` has {} columns, row has {}",
                    decl.name,
                    decl.arity(),
                    row.len()
                ),
            ));
        }
        Ok(())
    }

    /// Render a source rule as `Head :- body, ...` (relation names plus
    /// markers for non-atom literals).
    fn render_rule(&self, rule_index: usize) -> String {
        use crate::ast::BodyItem;
        let rule = &self.checked.program.rules[rule_index];
        let parts: Vec<String> = rule
            .body
            .iter()
            .map(|item| match item {
                BodyItem::Atom(a) => a.relation.clone(),
                BodyItem::Not(a) => format!("not {}", a.relation),
                BodyItem::Cond(_) => "<filter>".to_string(),
                BodyItem::Assign { var, .. } => format!("var {var} = ..."),
                BodyItem::FlatMap { var, .. } => format!("var {var} = FlatMap(...)"),
                BodyItem::Aggregate {
                    out_var, func, by, ..
                } => format!("var {out_var} = {func:?}(...) group_by ({})", by.join(", "))
                    .to_lowercase(),
            })
            .collect();
        format!("{} :- {}", rule.head.relation, parts.join(", "))
    }

    fn with_query_ctx<T>(&self, f: impl FnOnce(&QueryCtx<'_>) -> Result<T>) -> Result<T> {
        let rule_text = |ri: usize| self.render_rule(ri);
        let ctx = QueryCtx {
            compiled: &self.compiled,
            stores: &self.stores,
            rule_states: &self.rule_states,
            recursive_plans: &self.recursive_plans,
            ledger: self.provenance.as_ref(),
            rule_text: &rule_text,
        };
        f(&ctx)
    }

    /// Why is `row` in `relation`? Returns the derivation tree rooted
    /// at base (input-relation) facts: each node cites the rule and the
    /// supporting rows that produced it, annotated with the flight-
    /// recorder trace that last touched each fact. Requires a
    /// provenance-enabled engine ([`Engine::from_source_with`]); the
    /// row must be visible (otherwise ask [`Engine::why_not`]).
    pub fn why(&self, relation: &str, row: Vec<Value>) -> Result<WhyNode> {
        if self.provenance.is_none() {
            return Err(Error::new(
                Phase::Eval,
                "provenance is disabled; build the engine with ProvenanceConfig::on()".to_string(),
            ));
        }
        let rel = self.rel_id(relation)?;
        self.check_row_arity(rel, &row)?;
        let row: Row = std::sync::Arc::new(row);
        if !self.stores[rel].contains(&row) {
            return Err(Error::new(
                Phase::Eval,
                format!("`{relation}` does not contain that row — ask why_not instead"),
            ));
        }
        self.with_query_ctx(|ctx| crate::provenance::why(ctx, rel, &row))
    }

    /// Why is `row` *not* in `relation`? Reports, for every candidate
    /// rule with this head, the first failing literal that blocks a
    /// derivation. Works on any engine (the search is on-demand; no
    /// ledger needed).
    pub fn why_not(&self, relation: &str, row: Vec<Value>) -> Result<WhyNot> {
        let rel = self.rel_id(relation)?;
        self.check_row_arity(rel, &row)?;
        let row: Row = std::sync::Arc::new(row);
        self.with_query_ctx(|ctx| crate::provenance::why_not(ctx, rel, &row))
    }

    /// The `(trace, commit)` that last inserted `row`, when provenance
    /// is on and the row was touched since construction.
    pub fn last_touch(&self, relation: &str, row: &[Value]) -> Result<Option<(u64, u64)>> {
        let rel = self.rel_id(relation)?;
        self.check_row_arity(rel, row)?;
        let row: Row = std::sync::Arc::new(row.to_vec());
        Ok(self
            .provenance
            .as_ref()
            .and_then(|l| l.last_touch(rel, &row)))
    }

    /// Validate the provenance ledger against the live stores: every
    /// justification re-evaluates, per-row counts match the stores'
    /// derivation counts, and every visible chain-derived row is
    /// justified. The provenance analogue of
    /// [`Engine::validate_arrangements`].
    pub fn validate_provenance(&self) -> Result<()> {
        self.with_query_ctx(crate::provenance::validate)
    }

    /// The `/why` exposition document: ledger size and shape per
    /// relation, as deterministic JSON.
    pub fn provenance_summary_json(&self) -> String {
        let commits = self.commits;
        self.with_query_ctx(|ctx| Ok(crate::provenance::summary_json(ctx, commits)))
            .unwrap_or_default()
    }

    /// The current contents of any relation, sorted.
    pub fn dump(&self, relation: &str) -> Result<Vec<Vec<Value>>> {
        let rel = *self
            .compiled
            .rel_ids
            .get(relation)
            .ok_or_else(|| Error::new(Phase::Eval, format!("unknown relation `{relation}`")))?;
        let mut rows: Vec<Vec<Value>> = self.stores[rel].rows().map(|r| (**r).clone()).collect();
        rows.sort();
        Ok(rows)
    }

    /// Every stored row of a relation with its derivation count, sorted
    /// by row. Counts are internal bookkeeping — a healthy engine holds
    /// only positive counts — so this exists for invariant checkers
    /// (`crates/oracle`) rather than for normal clients.
    pub fn dump_weights(&self, relation: &str) -> Result<Vec<(Vec<Value>, isize)>> {
        let rel = *self
            .compiled
            .rel_ids
            .get(relation)
            .ok_or_else(|| Error::new(Phase::Eval, format!("unknown relation `{relation}`")))?;
        let mut rows: Vec<(Vec<Value>, isize)> = self.stores[rel]
            .rows_with_counts()
            .map(|(r, c)| ((**r).clone(), c))
            .collect();
        rows.sort();
        Ok(rows)
    }

    /// Number of visible rows in a relation.
    pub fn relation_len(&self, relation: &str) -> Result<usize> {
        let rel = *self
            .compiled
            .rel_ids
            .get(relation)
            .ok_or_else(|| Error::new(Phase::Eval, format!("unknown relation `{relation}`")))?;
        Ok(self.stores[rel].len())
    }

    /// Approximate resident bytes of all stores and arrangements — the
    /// "memory-intensive data indexing" the paper's §2.2 worst case
    /// measures. Cheap: per-store byte counts are maintained
    /// incrementally, so this is O(#relations + #rules), not O(state).
    pub fn approx_bytes(&self) -> usize {
        let stores: usize = self.stores.iter().map(RelationStore::approx_bytes).sum();
        let arrangements: usize = self.rule_states.iter().map(RuleState::approx_bytes).sum();
        stores + arrangements
    }

    /// Recompute [`Engine::approx_bytes`] by walking the full state.
    /// Test/debug aid validating the incremental accounting.
    pub fn approx_bytes_recompute(&self) -> usize {
        let stores: usize = self
            .stores
            .iter()
            .map(RelationStore::approx_bytes_recompute)
            .sum();
        let arrangements: usize = self
            .rule_states
            .iter()
            .map(RuleState::approx_bytes_recompute)
            .sum();
        stores + arrangements
    }

    /// The engine's operator catalog (stable ids into every
    /// [`WorkProfile`] it produces).
    pub fn op_catalog(&self) -> &OpCatalog {
        &self.catalog
    }

    /// The profile of the most recent commit, if any. Present even when
    /// that commit failed the incrementality audit.
    pub fn last_profile(&self) -> Option<&WorkProfile> {
        self.last_profile.as_ref()
    }

    /// Cumulative per-operator work across the engine's whole history
    /// (including initial fact propagation).
    pub fn cumulative_profile(&self) -> &WorkProfile {
        &self.cumulative
    }

    /// Enable (or disable, with `None`) the incrementality audit: after
    /// each commit the total tuples processed are checked against
    /// `slack + ratio × (|input delta| + |output delta|)`. A violating
    /// commit returns an error — its state changes stand (the engine is
    /// *not* poisoned; the bound was exceeded, not correctness).
    pub fn set_audit(&mut self, cfg: Option<AuditConfig>) {
        self.audit = cfg;
    }

    /// Stamp the next commit's flight-recorder events with `trace` (the
    /// causal id minted at the OVSDB commit). Consumed by that commit;
    /// the engine reverts to untraced (0) afterwards.
    pub fn set_commit_trace(&mut self, trace: u64) {
        self.commit_trace = trace;
    }

    /// Render the compiled plan with cumulative per-operator costs as
    /// human-readable text: one block per rule, then the per-relation
    /// distinct operators and recursive fixpoints.
    pub fn explain_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dataflow plan: {} operators, {} commits, ~{} bytes resident",
            self.catalog.len(),
            self.commits,
            self.approx_bytes()
        );
        let fmt_op = |out: &mut String, id: usize| {
            let m = &self.catalog.ops[id];
            let s = &self.cumulative.stats[id];
            let _ = writeln!(
                out,
                "  [{:3}] {:9} {:32} inv={} in={} out={} peak={} wall_us={}",
                m.id,
                m.kind.name(),
                m.detail,
                s.invocations,
                s.tuples_in,
                s.tuples_out,
                s.peak,
                s.wall_ns / 1_000
            );
        };
        for (pi, rule) in self.compiled.rules.iter().enumerate() {
            let head = &self.compiled.decls[rule.head_rel].name;
            let body: Vec<&str> = rule
                .body_rels
                .iter()
                .map(|r| self.compiled.decls[*r].name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "rule {}: {} :- {}",
                rule.rule_index,
                head,
                body.join(", ")
            );
            if self.catalog.rule_ops[pi].is_empty() {
                let _ = writeln!(out, "  (recursive stratum; see fixpoint operators)");
            }
            for id in &self.catalog.rule_ops[pi] {
                fmt_op(&mut out, *id);
            }
            for id in self.catalog.stage_arrange_ops[pi].iter().flatten() {
                fmt_op(&mut out, *id);
            }
        }
        let _ = writeln!(out, "distinct (derivation-count maintenance):");
        for id in &self.catalog.distinct_ops {
            fmt_op(&mut out, *id);
        }
        if !self.catalog.arrange_ops.is_empty() {
            let _ = writeln!(out, "relation arrangements (shared indexes):");
            for id in &self.catalog.arrange_ops {
                fmt_op(&mut out, *id);
            }
        }
        let fixpoints: Vec<usize> = self
            .catalog
            .fixpoint_ops
            .iter()
            .flatten()
            .copied()
            .collect();
        if !fixpoints.is_empty() {
            let _ = writeln!(out, "recursive fixpoints:");
            for id in fixpoints {
                fmt_op(&mut out, id);
            }
        }
        out
    }

    /// Render the compiled plan with cumulative per-operator costs as a
    /// deterministic JSON document (the `/dataflow` exposition).
    pub fn explain_json(&self) -> String {
        use std::fmt::Write as _;
        let js = telemetry::metrics::json_string;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"nerpa.dataflow.v1\",\"commits\":{},\"state_bytes\":{},\
             \"total_tuples\":{},\"total_wall_ns\":{},\"ops\":[",
            self.commits,
            self.approx_bytes(),
            self.cumulative.total_tuples(),
            self.cumulative.total_wall_ns
        );
        for (i, m) in self.catalog.ops.iter().enumerate() {
            let s = &self.cumulative.stats[i];
            if i > 0 {
                out.push(',');
            }
            let rule = m
                .rule
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string());
            let stage = m
                .stage
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"id\":{},\"kind\":{},\"rule\":{},\"stage\":{},\"detail\":{},\
                 \"invocations\":{},\"tuples_in\":{},\"tuples_out\":{},\"peak\":{},\
                 \"wall_ns\":{}}}",
                m.id,
                js(m.kind.name()),
                rule,
                stage,
                js(&m.detail),
                s.invocations,
                s.tuples_in,
                s.tuples_out,
                s.peak,
                s.wall_ns
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::str(v)
    }
    fn i(v: i128) -> Value {
        Value::Int(v)
    }

    const LABEL_PROG: &str = "
        input relation GivenLabel(n: string, l: bigint)
        input relation Edge(a: string, b: string)
        output relation Label(n: string, l: bigint)
        Label(n1, label) :- GivenLabel(n1, label).
        Label(n2, label) :- Label(n1, label), Edge(n1, n2).
    ";

    #[test]
    fn paper_reachability_example() {
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a"), i(1)]);
        t.insert("Edge", vec![s("a"), s("b")]);
        t.insert("Edge", vec![s("b"), s("c")]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["Label"].len(), 3);
        assert_eq!(
            e.dump("Label").unwrap(),
            vec![vec![s("a"), i(1)], vec![s("b"), i(1)], vec![s("c"), i(1)],]
        );

        // Deleting the middle edge retracts downstream labels only.
        let mut t = Transaction::new();
        t.delete("Edge", vec![s("a"), s("b")]);
        let d = e.commit(t).unwrap();
        assert_eq!(
            d.changes["Label"],
            vec![(vec![s("b"), i(1)], -1), (vec![s("c"), i(1)], -1),]
        );
    }

    #[test]
    fn alternative_derivation_survives_deletion() {
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a"), i(1)]);
        t.insert("Edge", vec![s("a"), s("b")]);
        t.insert("Edge", vec![s("a"), s("c")]);
        t.insert("Edge", vec![s("c"), s("b")]);
        e.commit(t).unwrap();
        // b reachable via a→b and a→c→b. Deleting a→b keeps the label.
        let mut t = Transaction::new();
        t.delete("Edge", vec![s("a"), s("b")]);
        let d = e.commit(t).unwrap();
        assert!(d.is_empty(), "label must survive: {d:?}");
        assert_eq!(e.dump("Label").unwrap().len(), 3);
    }

    #[test]
    fn cycle_deletion() {
        // A cycle reachable from the root: deleting the entry edge must
        // retract the whole cycle (the classic DRed trap).
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("r"), i(7)]);
        t.insert("Edge", vec![s("r"), s("x")]);
        t.insert("Edge", vec![s("x"), s("y")]);
        t.insert("Edge", vec![s("y"), s("x")]);
        e.commit(t).unwrap();
        assert_eq!(e.dump("Label").unwrap().len(), 3);

        let mut t = Transaction::new();
        t.delete("Edge", vec![s("r"), s("x")]);
        e.commit(t).unwrap();
        // x and y support each other in the cycle but have no external
        // derivation left; both must go.
        assert_eq!(e.dump("Label").unwrap(), vec![vec![s("r"), i(7)]]);
    }

    #[test]
    fn insert_then_delete_is_noop() {
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a"), i(1)]);
        t.delete("GivenLabel", vec![s("a"), i(1)]);
        let d = e.commit(t).unwrap();
        assert!(d.is_empty());
        assert_eq!(e.relation_len("Label").unwrap(), 0);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a"), i(1)]);
        e.commit(t).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a"), i(1)]);
        let d = e.commit(t).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn type_errors_on_commit() {
        let mut e = Engine::from_source(LABEL_PROG).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![i(1), i(1)]); // wrong type
        assert!(e.commit(t).is_err());
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![s("a")]); // wrong arity
        assert!(e.commit(t).is_err());
        let mut t = Transaction::new();
        t.insert("Label", vec![s("a"), i(1)]); // not an input
        assert!(e.commit(t).is_err());
        let mut t = Transaction::new();
        t.insert("NoSuch", vec![]);
        assert!(e.commit(t).is_err());
    }

    #[test]
    fn facts_propagate_at_init() {
        let e = Engine::from_source(
            "
            output relation R(x: bigint)
            relation S(x: bigint)
            S(10).
            R(x + 1) :- S(x).
            ",
        )
        .unwrap();
        assert_eq!(e.dump("R").unwrap(), vec![vec![i(11)]]);
    }

    #[test]
    fn negation_incremental() {
        let mut e = Engine::from_source(
            "
            input relation S(x: bigint)
            input relation Blocked(x: bigint)
            output relation R(x: bigint)
            R(x) :- S(x), not Blocked(x).
            ",
        )
        .unwrap();
        let mut t = Transaction::new();
        t.insert("S", vec![i(1)]);
        t.insert("S", vec![i(2)]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["R"].len(), 2);

        // Blocking 1 retracts it.
        let mut t = Transaction::new();
        t.insert("Blocked", vec![i(1)]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["R"], vec![(vec![i(1)], -1)]);

        // Unblocking restores it.
        let mut t = Transaction::new();
        t.delete("Blocked", vec![i(1)]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["R"], vec![(vec![i(1)], 1)]);
    }

    #[test]
    fn aggregation_incremental() {
        let mut e = Engine::from_source(
            "
            input relation P(p: bigint, sw: string)
            output relation N(sw: string, n: bigint)
            N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
            ",
        )
        .unwrap();
        let mut t = Transaction::new();
        t.insert("P", vec![i(1), s("a")]);
        t.insert("P", vec![i(2), s("a")]);
        t.insert("P", vec![i(3), s("b")]);
        let d = e.commit(t).unwrap();
        assert_eq!(
            d.changes["N"],
            vec![(vec![s("a"), i(2)], 1), (vec![s("b"), i(1)], 1),]
        );

        let mut t = Transaction::new();
        t.delete("P", vec![i(2), s("a")]);
        let d = e.commit(t).unwrap();
        assert_eq!(
            d.changes["N"],
            vec![(vec![s("a"), i(1)], 1), (vec![s("a"), i(2)], -1),]
        );

        // Deleting the last port of a switch removes its row entirely.
        let mut t = Transaction::new();
        t.delete("P", vec![i(3), s("b")]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["N"], vec![(vec![s("b"), i(1)], -1)]);
    }

    #[test]
    fn flatmap_incremental() {
        let mut e = Engine::from_source(
            "
            input relation Trunk(port: bit<32>, vlans: Vec<bit<12>>)
            output relation PortVlan(port: bit<32>, vlan: bit<12>)
            PortVlan(p, v) :- Trunk(p, vs), var v = FlatMap(vs).
            ",
        )
        .unwrap();
        let vlans = Value::vec(vec![Value::bit(12, 10), Value::bit(12, 20)]);
        let mut t = Transaction::new();
        t.insert("Trunk", vec![Value::bit(32, 1), vlans.clone()]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["PortVlan"].len(), 2);

        let mut t = Transaction::new();
        t.delete("Trunk", vec![Value::bit(32, 1), vlans]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["PortVlan"].len(), 2);
        assert!(d.changes["PortVlan"].iter().all(|(_, w)| *w == -1));
        assert_eq!(e.relation_len("PortVlan").unwrap(), 0);
    }

    #[test]
    fn join_three_way_incremental() {
        let mut e = Engine::from_source(
            "
            input relation A(x: bigint, y: bigint)
            input relation B(y: bigint, z: bigint)
            input relation C(z: bigint, w: bigint)
            output relation R(x: bigint, w: bigint)
            R(x, w) :- A(x, y), B(y, z), C(z, w).
            ",
        )
        .unwrap();
        let mut t = Transaction::new();
        t.insert("A", vec![i(1), i(2)]);
        t.insert("B", vec![i(2), i(3)]);
        e.commit(t).unwrap();
        assert_eq!(e.relation_len("R").unwrap(), 0);

        // Completing the chain from the far end exercises the L_old ⋈ δR
        // path through two stages.
        let mut t = Transaction::new();
        t.insert("C", vec![i(3), i(4)]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["R"], vec![(vec![i(1), i(4)], 1)]);

        let mut t = Transaction::new();
        t.delete("B", vec![i(2), i(3)]);
        let d = e.commit(t).unwrap();
        assert_eq!(d.changes["R"], vec![(vec![i(1), i(4)], -1)]);
    }

    #[test]
    fn poisoning_on_eval_error() {
        let mut e = Engine::from_source(
            "
            input relation S(x: bigint)
            output relation R(y: bigint)
            R(10 / x) :- S(x).
            ",
        )
        .unwrap();
        let mut t = Transaction::new();
        t.insert("S", vec![i(0)]);
        assert!(e.commit(t).is_err());
        let mut t = Transaction::new();
        t.insert("S", vec![i(5)]);
        assert!(e.commit(t).is_err(), "poisoned engine must refuse work");
    }

    #[test]
    fn mutual_recursion() {
        let mut e = Engine::from_source(
            "
            input relation E(a: bigint, b: bigint)
            input relation Start(a: bigint)
            relation Odd(a: bigint)
            output relation Even(a: bigint)
            Even(a) :- Start(a).
            Odd(b) :- Even(a), E(a, b).
            Even(b) :- Odd(a), E(a, b).
            ",
        )
        .unwrap();
        let mut t = Transaction::new();
        t.insert("Start", vec![i(0)]);
        for k in 0..4 {
            t.insert("E", vec![i(k), i(k + 1)]);
        }
        e.commit(t).unwrap();
        assert_eq!(
            e.dump("Even").unwrap(),
            vec![vec![i(0)], vec![i(2)], vec![i(4)]]
        );

        let mut t = Transaction::new();
        t.delete("E", vec![i(1), i(2)]);
        e.commit(t).unwrap();
        assert_eq!(e.dump("Even").unwrap(), vec![vec![i(0)]]);
    }
}
