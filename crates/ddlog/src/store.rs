//! Relation storage: derivation-counted rows plus maintained hash indexes.
//!
//! Each relation stores a map from row to its *derivation count* (for
//! input relations this is always 1). The visible, set-semantics contents
//! are the rows with positive count. Hash indexes over column subsets are
//! registered by the planner and maintained incrementally on every
//! set-level change — they are what makes join lookups O(matches) instead
//! of O(relation).

use std::collections::{HashMap, HashSet};

use crate::value::{Row, Value};
use crate::zset::ZSet;

/// Identifies a relation inside an engine (index into the store table).
pub type RelId = usize;

/// An index key: the projection of a row onto the index's columns.
pub type Key = Vec<Value>;

/// A maintained hash index over a set of columns.
#[derive(Debug, Default, Clone)]
struct Index {
    cols: Vec<usize>,
    map: HashMap<Key, HashSet<Row>>,
}

impl Index {
    fn project(cols: &[usize], row: &Row) -> Key {
        cols.iter().map(|c| row[*c].clone()).collect()
    }

    /// Insert and return the approx-bytes growth (key bytes when the key
    /// is new, plus the per-entry cost).
    fn insert(&mut self, row: &Row) -> usize {
        let key = Self::project(&self.cols, row);
        let key_cost: usize = key.iter().map(value_bytes).sum();
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get_mut().insert(row.clone()) {
                    INDEX_ENTRY_BYTES
                } else {
                    0
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(HashSet::from([row.clone()]));
                key_cost + INDEX_ENTRY_BYTES
            }
        }
    }

    /// Remove and return the approx-bytes shrinkage.
    fn remove(&mut self, row: &Row) -> usize {
        let key = Self::project(&self.cols, row);
        let mut freed = 0;
        if let Some(set) = self.map.get_mut(&key) {
            if set.remove(row) {
                freed += INDEX_ENTRY_BYTES;
            }
            if set.is_empty() {
                freed += key.iter().map(value_bytes).sum::<usize>();
                self.map.remove(&key);
            }
        }
        freed
    }
}

/// Cost of one index entry (an `Arc` clone of the row plus set overhead).
const INDEX_ENTRY_BYTES: usize = std::mem::size_of::<Row>() + 16;

/// Approximate resident bytes of one value, including heap payloads.
fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => s.len(),
            Value::Vec(v) | Value::Tuple(v) => v.iter().map(value_bytes).sum(),
            Value::Set(s) => s.iter().map(value_bytes).sum(),
            Value::Map(m) => m.iter().map(|(k, v)| value_bytes(k) + value_bytes(v)).sum(),
            _ => 0,
        }
}

/// Approximate resident bytes of one stored row.
fn row_bytes(r: &Row) -> usize {
    r.iter().map(value_bytes).sum::<usize>() + std::mem::size_of::<Row>() + 16
}

/// Storage for one relation.
#[derive(Debug, Default, Clone)]
pub struct RelationStore {
    /// Relation name, for diagnostics.
    pub name: String,
    /// Row → derivation count. Only rows with count != 0 are present;
    /// counts are never negative.
    derivations: HashMap<Row, isize>,
    /// Number of rows with positive derivation count.
    live_rows: usize,
    /// Registered indexes, looked up by their column list.
    indexes: HashMap<Vec<usize>, Index>,
    /// Incrementally maintained approximate resident bytes; always equal
    /// to what [`RelationStore::approx_bytes_recompute`] would return.
    bytes: usize,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new(name: impl Into<String>) -> Self {
        RelationStore {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Register an index over `cols` (idempotent). Must be called before
    /// rows are inserted (the planner does this at compile time).
    pub fn register_index(&mut self, cols: &[usize]) {
        self.indexes.entry(cols.to_vec()).or_insert_with(|| Index {
            cols: cols.to_vec(),
            map: HashMap::new(),
        });
    }

    /// True if an index over exactly `cols` exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(cols)
    }

    /// Number of visible (set-semantics) rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True if there are no visible rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// True if `row` is visible.
    pub fn contains(&self, row: &Row) -> bool {
        self.derivations.get(row).copied().unwrap_or(0) > 0
    }

    /// The derivation count of `row`.
    pub fn derivation_count(&self, row: &Row) -> isize {
        self.derivations.get(row).copied().unwrap_or(0)
    }

    /// Iterate over visible rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.derivations
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(r, _)| r)
    }

    /// Iterate over every stored row with its derivation count, including
    /// rows whose count is zero or (after an invariant violation)
    /// negative. This is the oracle's window into the store: a healthy
    /// store holds only positive counts.
    pub fn rows_with_counts(&self) -> impl Iterator<Item = (&Row, isize)> {
        self.derivations.iter().map(|(r, c)| (r, *c))
    }

    /// Apply a Z-set of derivation-count changes. Returns the *set-level*
    /// delta: +1 rows that became visible, −1 rows that disappeared.
    /// Indexes are maintained.
    ///
    /// Panics in debug builds if a count would go negative (an engine
    /// invariant violation).
    pub fn apply_derivation_delta(&mut self, delta: &ZSet<Row>) -> ZSet<Row> {
        let mut set_delta = ZSet::new();
        for (row, w) in delta.iter() {
            let entry = self.derivations.entry(row.clone()).or_insert(0);
            let old = *entry;
            // Saturating, like ZSet weight arithmetic: a wrapped count
            // would flip sign and corrupt visibility decisions.
            let new = old.saturating_add(w);
            debug_assert!(
                new >= 0,
                "derivation count for {row:?} in `{}` went negative",
                self.name
            );
            *entry = new;
            if old == 0 && new != 0 {
                self.bytes += row_bytes(row);
            }
            if new == 0 {
                self.derivations.remove(row);
                self.bytes = self.bytes.saturating_sub(row_bytes(row));
            }
            if old <= 0 && new > 0 {
                self.live_rows += 1;
                for idx in self.indexes.values_mut() {
                    self.bytes += idx.insert(row);
                }
                set_delta.add(row.clone(), 1);
            } else if old > 0 && new <= 0 {
                self.live_rows -= 1;
                for idx in self.indexes.values_mut() {
                    self.bytes = self.bytes.saturating_sub(idx.remove(row));
                }
                set_delta.add(row.clone(), -1);
            }
        }
        set_delta
    }

    /// Look up rows by an index. Returns an empty slice view when the key
    /// is absent. Panics if the index was not registered.
    pub fn lookup<'a>(
        &'a self,
        cols: &[usize],
        key: &Key,
    ) -> Box<dyn Iterator<Item = &'a Row> + 'a> {
        let idx = self
            .indexes
            .get(cols)
            .unwrap_or_else(|| panic!("index {cols:?} not registered on `{}`", self.name));
        match idx.map.get(key) {
            Some(set) => Box::new(set.iter()),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Number of visible rows matching `key` under the `cols` index.
    pub fn lookup_count(&self, cols: &[usize], key: &Key) -> usize {
        let idx = self
            .indexes
            .get(cols)
            .unwrap_or_else(|| panic!("index {cols:?} not registered on `{}`", self.name));
        idx.map.get(key).map(|s| s.len()).unwrap_or(0)
    }

    /// Approximate resident bytes (rows + index entries), used by the
    /// memory-overhead experiment (E5). O(1): the count is maintained
    /// incrementally on every applied delta.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Recompute [`RelationStore::approx_bytes`] from scratch by walking
    /// the full store. Test/debug aid for validating the incremental
    /// accounting.
    pub fn approx_bytes_recompute(&self) -> usize {
        let rows: usize = self.derivations.keys().map(row_bytes).sum();
        // Index entries hold an Arc clone of the row plus the projected key.
        let index_bytes: usize = self
            .indexes
            .values()
            .map(|idx| {
                idx.map
                    .iter()
                    .map(|(k, set)| {
                        k.iter().map(value_bytes).sum::<usize>() + set.len() * INDEX_ENTRY_BYTES
                    })
                    .sum::<usize>()
            })
            .sum();
        rows + index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::row;

    fn r(vals: &[i128]) -> Row {
        row(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn derivation_counting_and_set_delta() {
        let mut s = RelationStore::new("R");
        let mut d = ZSet::new();
        d.add(r(&[1]), 2); // two derivations of the same row
        let sd = s.apply_derivation_delta(&d);
        assert_eq!(sd.weight(&r(&[1])), 1); // visible once
        assert_eq!(s.len(), 1);

        // Remove one derivation: still visible, no set-level change.
        let sd = s.apply_derivation_delta(&ZSet::singleton(r(&[1]), -1));
        assert!(sd.is_empty());
        assert!(s.contains(&r(&[1])));

        // Remove the last derivation: disappears.
        let sd = s.apply_derivation_delta(&ZSet::singleton(r(&[1]), -1));
        assert_eq!(sd.weight(&r(&[1])), -1);
        assert!(s.is_empty());
    }

    #[test]
    fn index_maintenance() {
        let mut s = RelationStore::new("R");
        s.register_index(&[0]);
        let mut d = ZSet::new();
        d.add(r(&[1, 10]), 1);
        d.add(r(&[1, 20]), 1);
        d.add(r(&[2, 30]), 1);
        s.apply_derivation_delta(&d);

        let key = vec![Value::Int(1)];
        assert_eq!(s.lookup(&[0], &key).count(), 2);
        assert_eq!(s.lookup_count(&[0], &key), 2);
        assert_eq!(s.lookup(&[0], &vec![Value::Int(9)]).count(), 0);

        s.apply_derivation_delta(&ZSet::singleton(r(&[1, 10]), -1));
        assert_eq!(s.lookup(&[0], &key).count(), 1);
    }

    #[test]
    fn late_registered_index_only_sees_new_rows() {
        // Contract: register indexes before inserting (compile time).
        let mut s = RelationStore::new("R");
        s.apply_derivation_delta(&ZSet::singleton(r(&[5, 1]), 1));
        s.register_index(&[0]);
        // The pre-existing row is not in the late index — this documents
        // why registration must precede data.
        assert_eq!(s.lookup(&[0], &vec![Value::Int(5)]).count(), 0);
    }

    #[test]
    fn incremental_bytes_match_recompute_after_churn() {
        let mut s = RelationStore::new("R");
        s.register_index(&[0]);
        s.register_index(&[1]);
        for i in 0..50 {
            s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), 1));
        }
        // Extra derivations, partial deletes, full deletes.
        for i in 0..50 {
            if i % 3 == 0 {
                s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), 1));
            }
            if i % 2 == 0 {
                s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), -1));
            }
        }
        assert_eq!(s.approx_bytes(), s.approx_bytes_recompute());
        assert!(s.approx_bytes() > 0);
        // Draining everything returns the count to zero.
        let rows: Vec<(Row, isize)> = s.rows_with_counts().map(|(r, c)| (r.clone(), c)).collect();
        for (row, c) in rows {
            s.apply_derivation_delta(&ZSet::singleton(row, -c));
        }
        assert_eq!(s.approx_bytes(), 0);
        assert_eq!(s.approx_bytes_recompute(), 0);
    }

    #[test]
    fn approx_bytes_grows_with_indexes() {
        let mut a = RelationStore::new("A");
        let mut b = RelationStore::new("B");
        b.register_index(&[0]);
        b.register_index(&[1]);
        let mut d = ZSet::new();
        for i in 0..100 {
            d.add(r(&[i, i * 2]), 1);
        }
        a.apply_derivation_delta(&d);
        b.apply_derivation_delta(&d);
        assert!(b.approx_bytes() > a.approx_bytes());
    }
}
