//! Relation storage: derivation-counted rows plus maintained arrangements.
//!
//! Each relation stores a map from row to its *derivation count* (for
//! input relations this is always 1). The visible, set-semantics contents
//! are the rows with positive count. Keyed [`Arrangement`]s over column
//! subsets are registered by the planner and maintained incrementally on
//! every set-level change — they are what makes join lookups and driven
//! recursive probes O(matches) instead of O(relation).

use std::collections::HashMap;

use crate::arrange::{ArrStats, Arrangement};
use crate::value::{Row, Value};
use crate::zset::ZSet;

/// Identifies a relation inside an engine (index into the store table).
pub type RelId = usize;

/// An index key: the projection of a row onto the index's columns.
pub type Key = Vec<Value>;

/// Approximate resident bytes of one value, including heap payloads.
pub(crate) fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => s.len(),
            Value::Vec(v) | Value::Tuple(v) => v.iter().map(value_bytes).sum(),
            Value::Set(s) => s.iter().map(value_bytes).sum(),
            Value::Map(m) => m.iter().map(|(k, v)| value_bytes(k) + value_bytes(v)).sum(),
            _ => 0,
        }
}

/// Approximate resident bytes of one stored row.
fn row_bytes(r: &Row) -> usize {
    r.iter().map(value_bytes).sum::<usize>() + std::mem::size_of::<Row>() + 16
}

/// Storage for one relation.
#[derive(Debug, Default, Clone)]
pub struct RelationStore {
    /// Relation name, for diagnostics.
    pub name: String,
    /// Row → derivation count. Only rows with count != 0 are present;
    /// counts are never negative.
    derivations: HashMap<Row, isize>,
    /// Number of rows with positive derivation count.
    live_rows: usize,
    /// Registered arrangements; `by_cols` maps a key-column list to its
    /// position. Arrangements are shared: every operator probing the
    /// same `(relation, cols)` pair hits the same index.
    arrangements: Vec<Arrangement>,
    by_cols: HashMap<Vec<usize>, usize>,
    /// Fault injection (`stale-arrangement`): skip index maintenance on
    /// retraction, leaving ghost rows for the oracle to catch.
    stale_retractions: bool,
    /// Incrementally maintained approximate resident bytes; always equal
    /// to what [`RelationStore::approx_bytes_recompute`] would return.
    bytes: usize,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new(name: impl Into<String>) -> Self {
        RelationStore {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Register an arrangement over `cols` with a catalog id (idempotent
    /// by `cols`; a later registration can attach the id to an ad-hoc
    /// arrangement). Must be called before rows are inserted (the
    /// planner does this at compile time).
    pub fn register_arrangement(&mut self, cols: &[usize], global: Option<usize>) {
        if let Some(&i) = self.by_cols.get(cols) {
            if let Some(g) = global {
                self.arrangements[i].set_global(g);
            }
            return;
        }
        self.by_cols.insert(cols.to_vec(), self.arrangements.len());
        self.arrangements.push(Arrangement::new(cols, global));
    }

    /// Register an uncataloged index over `cols` (idempotent).
    pub fn register_index(&mut self, cols: &[usize]) {
        self.register_arrangement(cols, None);
    }

    /// True if an arrangement over exactly `cols` exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.by_cols.contains_key(cols)
    }

    /// Number of visible (set-semantics) rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True if there are no visible rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// True if `row` is visible.
    pub fn contains(&self, row: &Row) -> bool {
        self.derivations.get(row).copied().unwrap_or(0) > 0
    }

    /// The derivation count of `row`.
    pub fn derivation_count(&self, row: &Row) -> isize {
        self.derivations.get(row).copied().unwrap_or(0)
    }

    /// Iterate over visible rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.derivations
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(r, _)| r)
    }

    /// Iterate over every stored row with its derivation count, including
    /// rows whose count is zero or (after an invariant violation)
    /// negative. This is the oracle's window into the store: a healthy
    /// store holds only positive counts.
    pub fn rows_with_counts(&self) -> impl Iterator<Item = (&Row, isize)> {
        self.derivations.iter().map(|(r, c)| (r, *c))
    }

    /// Arm or disarm the `stale-arrangement` fault injection: when
    /// armed, arrangements are not maintained on retraction.
    pub fn set_stale_retractions(&mut self, on: bool) {
        self.stale_retractions = on;
    }

    /// Apply a Z-set of derivation-count changes. Returns the *set-level*
    /// delta: +1 rows that became visible, −1 rows that disappeared.
    /// Arrangements are maintained (and their maintenance cost timed
    /// into their pending stats).
    ///
    /// Panics in debug builds if a count would go negative (an engine
    /// invariant violation).
    pub fn apply_derivation_delta(&mut self, delta: &ZSet<Row>) -> ZSet<Row> {
        let mut set_delta = ZSet::new();
        for (row, w) in delta.iter() {
            let entry = self.derivations.entry(row.clone()).or_insert(0);
            let old = *entry;
            // Saturating, like ZSet weight arithmetic: a wrapped count
            // would flip sign and corrupt visibility decisions.
            let new = old.saturating_add(w);
            debug_assert!(
                new >= 0,
                "derivation count for {row:?} in `{}` went negative",
                self.name
            );
            *entry = new;
            if old == 0 && new != 0 {
                self.bytes += row_bytes(row);
            }
            if new == 0 {
                self.derivations.remove(row);
                self.bytes = self.bytes.saturating_sub(row_bytes(row));
            }
            if old <= 0 && new > 0 {
                self.live_rows += 1;
                set_delta.add(row.clone(), 1);
            } else if old > 0 && new <= 0 {
                self.live_rows -= 1;
                set_delta.add(row.clone(), -1);
            }
        }
        if !set_delta.is_empty() {
            for arr in &mut self.arrangements {
                let (grown, freed) = arr.apply(&set_delta, self.stale_retractions);
                self.bytes += grown;
                self.bytes = self.bytes.saturating_sub(freed);
            }
        }
        set_delta
    }

    /// Look up rows by an arrangement. Returns an empty iterator when
    /// the key is absent. Panics if the arrangement was not registered.
    pub fn lookup<'a>(
        &'a self,
        cols: &[usize],
        key: &Key,
    ) -> Box<dyn Iterator<Item = &'a Row> + 'a> {
        let arr = self.arrangement(cols);
        match arr.get(key) {
            Some(set) => Box::new(set.iter()),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Number of visible rows matching `key` under the `cols` index.
    pub fn lookup_count(&self, cols: &[usize], key: &Key) -> usize {
        self.arrangement(cols).len_of(key)
    }

    /// Visible rows matching a column pattern (`Some(v)` = must equal
    /// `v`, `None` = wildcard), capped at `cap` rows. Uses the widest
    /// registered arrangement whose key columns are all constrained and
    /// post-filters the rest; falls back to a scan when no registered
    /// index applies. Returns the matches and whether the cap truncated
    /// them. Used by the provenance layer to re-find the input rows an
    /// environment bound.
    pub fn matching_rows(&self, pattern: &[Option<Value>], cap: usize) -> (Vec<Row>, bool) {
        let matches = |r: &Row| {
            r.len() == pattern.len()
                && pattern
                    .iter()
                    .zip(r.iter())
                    .all(|(p, v)| p.as_ref().is_none_or(|p| p == v))
        };
        // Fully determined pattern: direct membership test.
        if pattern.iter().all(Option::is_some) {
            let row: Row = std::sync::Arc::new(pattern.iter().flatten().cloned().collect());
            return if self.contains(&row) {
                (vec![row], false)
            } else {
                (Vec::new(), false)
            };
        }
        let best = self
            .by_cols
            .keys()
            .filter(|cols| {
                cols.iter()
                    .all(|c| pattern.get(*c).is_some_and(Option::is_some))
            })
            .max_by_key(|cols| cols.len());
        let mut out = Vec::new();
        let mut truncated = false;
        let mut push = |r: &Row| {
            if out.len() >= cap {
                truncated = true;
                return false;
            }
            out.push(r.clone());
            true
        };
        match best {
            Some(cols) if !cols.is_empty() => {
                let key: Key = cols
                    .iter()
                    .map(|c| pattern[*c].clone().expect("constrained key column"))
                    .collect();
                for r in self.lookup(cols, &key) {
                    if matches(r) && !push(r) {
                        break;
                    }
                }
            }
            _ => {
                for r in self.rows() {
                    if matches(r) && !push(r) {
                        break;
                    }
                }
            }
        }
        out.sort();
        (out, truncated)
    }

    fn arrangement(&self, cols: &[usize]) -> &Arrangement {
        let idx = self
            .by_cols
            .get(cols)
            .unwrap_or_else(|| panic!("arrangement {cols:?} not registered on `{}`", self.name));
        &self.arrangements[*idx]
    }

    /// Drain pending maintenance stats of every cataloged arrangement:
    /// `(catalog id, stats)` pairs for the ones that did work.
    pub fn take_arrangement_stats(&mut self) -> Vec<(usize, ArrStats)> {
        self.arrangements
            .iter_mut()
            .filter_map(|a| {
                let global = a.global()?;
                let stats = a.take_stats();
                (stats.invocations > 0).then_some((global, stats))
            })
            .collect()
    }

    /// Validate every arrangement against an index built from scratch
    /// over the current visible rows — the arrangement-drift detector.
    pub fn validate_arrangements(&self) -> Result<(), String> {
        for arr in &self.arrangements {
            arr.validate(self.rows(), &self.name)?;
        }
        Ok(())
    }

    /// Approximate resident bytes (rows + arrangement entries), used by
    /// the memory-overhead experiment (E5). O(1): the count is
    /// maintained incrementally on every applied delta.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Recompute [`RelationStore::approx_bytes`] from scratch by walking
    /// the full store. Test/debug aid for validating the incremental
    /// accounting.
    pub fn approx_bytes_recompute(&self) -> usize {
        let rows: usize = self.derivations.keys().map(row_bytes).sum();
        let index_bytes: usize = self
            .arrangements
            .iter()
            .map(Arrangement::recompute_bytes)
            .sum();
        rows + index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::row;

    fn r(vals: &[i128]) -> Row {
        row(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn derivation_counting_and_set_delta() {
        let mut s = RelationStore::new("R");
        let mut d = ZSet::new();
        d.add(r(&[1]), 2); // two derivations of the same row
        let sd = s.apply_derivation_delta(&d);
        assert_eq!(sd.weight(&r(&[1])), 1); // visible once
        assert_eq!(s.len(), 1);

        // Remove one derivation: still visible, no set-level change.
        let sd = s.apply_derivation_delta(&ZSet::singleton(r(&[1]), -1));
        assert!(sd.is_empty());
        assert!(s.contains(&r(&[1])));

        // Remove the last derivation: disappears.
        let sd = s.apply_derivation_delta(&ZSet::singleton(r(&[1]), -1));
        assert_eq!(sd.weight(&r(&[1])), -1);
        assert!(s.is_empty());
    }

    #[test]
    fn index_maintenance() {
        let mut s = RelationStore::new("R");
        s.register_index(&[0]);
        let mut d = ZSet::new();
        d.add(r(&[1, 10]), 1);
        d.add(r(&[1, 20]), 1);
        d.add(r(&[2, 30]), 1);
        s.apply_derivation_delta(&d);

        let key = vec![Value::Int(1)];
        assert_eq!(s.lookup(&[0], &key).count(), 2);
        assert_eq!(s.lookup_count(&[0], &key), 2);
        assert_eq!(s.lookup(&[0], &vec![Value::Int(9)]).count(), 0);

        s.apply_derivation_delta(&ZSet::singleton(r(&[1, 10]), -1));
        assert_eq!(s.lookup(&[0], &key).count(), 1);
        s.validate_arrangements().unwrap();
    }

    #[test]
    fn late_registered_index_only_sees_new_rows() {
        // Contract: register indexes before inserting (compile time).
        let mut s = RelationStore::new("R");
        s.apply_derivation_delta(&ZSet::singleton(r(&[5, 1]), 1));
        s.register_index(&[0]);
        // The pre-existing row is not in the late index — this documents
        // why registration must precede data.
        assert_eq!(s.lookup(&[0], &vec![Value::Int(5)]).count(), 0);
    }

    #[test]
    fn stale_retractions_leave_ghost_rows() {
        let mut s = RelationStore::new("R");
        s.register_index(&[0]);
        s.apply_derivation_delta(&ZSet::singleton(r(&[1, 10]), 1));
        s.set_stale_retractions(true);
        s.apply_derivation_delta(&ZSet::singleton(r(&[1, 10]), -1));
        // The row is gone from the store but still visible via the
        // arrangement — exactly the drift the oracle must catch.
        assert!(!s.contains(&r(&[1, 10])));
        assert_eq!(s.lookup(&[0], &vec![Value::Int(1)]).count(), 1);
        assert!(s.validate_arrangements().is_err());
    }

    #[test]
    fn incremental_bytes_match_recompute_after_churn() {
        let mut s = RelationStore::new("R");
        s.register_index(&[0]);
        s.register_index(&[1]);
        for i in 0..50 {
            s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), 1));
        }
        // Extra derivations, partial deletes, full deletes.
        for i in 0..50 {
            if i % 3 == 0 {
                s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), 1));
            }
            if i % 2 == 0 {
                s.apply_derivation_delta(&ZSet::singleton(r(&[i % 7, i]), -1));
            }
        }
        assert_eq!(s.approx_bytes(), s.approx_bytes_recompute());
        assert!(s.approx_bytes() > 0);
        s.validate_arrangements().unwrap();
        // Draining everything returns the count to zero.
        let rows: Vec<(Row, isize)> = s.rows_with_counts().map(|(r, c)| (r.clone(), c)).collect();
        for (row, c) in rows {
            s.apply_derivation_delta(&ZSet::singleton(row, -c));
        }
        assert_eq!(s.approx_bytes(), 0);
        assert_eq!(s.approx_bytes_recompute(), 0);
    }

    #[test]
    fn approx_bytes_grows_with_indexes() {
        let mut a = RelationStore::new("A");
        let mut b = RelationStore::new("B");
        b.register_index(&[0]);
        b.register_index(&[1]);
        let mut d = ZSet::new();
        for i in 0..100 {
            d.add(r(&[i, i * 2]), 1);
        }
        a.apply_derivation_delta(&d);
        b.apply_derivation_delta(&d);
        assert!(b.approx_bytes() > a.approx_bytes());
    }

    #[test]
    fn arrangement_stats_flow_to_cataloged_ids() {
        let mut s = RelationStore::new("R");
        s.register_arrangement(&[0], Some(7));
        s.register_index(&[1]); // uncataloged: no stats reported
        s.apply_derivation_delta(&ZSet::singleton(r(&[1, 2]), 1));
        let stats = s.take_arrangement_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, 7);
        assert_eq!(stats[0].1.tuples, 1);
        assert!(s.take_arrangement_stats().is_empty(), "stats drained");
    }
}
