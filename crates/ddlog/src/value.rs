//! The runtime value model.
//!
//! Values are the rows of relations and the results of expression
//! evaluation. They are cheap to clone (shared containers are behind `Arc`)
//! and have total `Eq`/`Ord`/`Hash` so they can serve as keys in Z-sets and
//! arrangements.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::types::Type;

/// An IEEE-754 double with *total* ordering and hashing (by bit pattern for
/// hash, by `total_cmp` for order) so it can live inside relation rows.
#[derive(Debug, Clone, Copy)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state)
    }
}

/// A 128-bit UUID, printed in the canonical 8-4-4-4-12 hex form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uuid(pub u128);

impl Uuid {
    /// Parse the canonical textual form (`xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx`).
    pub fn parse(s: &str) -> Option<Uuid> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 || s.len() != 36 {
            return None;
        }
        // Check the dashes are in the right places.
        let bytes = s.as_bytes();
        if bytes[8] != b'-' || bytes[13] != b'-' || bytes[18] != b'-' || bytes[23] != b'-' {
            return None;
        }
        u128::from_str_radix(&hex, 16).ok().map(Uuid)
    }

    /// Derive a deterministic UUID from a name (fnv-style folding); useful
    /// for tests and deterministic workload generation.
    pub fn from_name(name: &str) -> Uuid {
        let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
        for b in name.bytes() {
            h ^= b as u128;
            h = h.wrapping_mul(0x0000000001000000000000000000013b);
        }
        Uuid(h)
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (x >> 96) as u32,
            (x >> 80) as u16,
            (x >> 64) as u16,
            (x >> 48) as u16,
            x & 0xffff_ffff_ffff
        )
    }
}

/// A runtime value.
///
/// The variants correspond to the types in [`crate::types::Type`]. Bit
/// vectors are limited to 128 bits, integers are arbitrary within `i128`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Signed big integer (`bigint`), bounded by `i128` here.
    Int(i128),
    /// Fixed-width unsigned bit vector `bit<N>`, `1 <= N <= 128`.
    Bit {
        /// Bit width, 1..=128.
        width: u16,
        /// The value; invariant: fits in `width` bits.
        val: u128,
    },
    /// IEEE double.
    Double(F64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// UUID (used heavily by the OVSDB bridge).
    Uuid(Uuid),
    /// Growable vector.
    Vec(Arc<Vec<Value>>),
    /// Ordered set.
    Set(Arc<BTreeSet<Value>>),
    /// Ordered map.
    Map(Arc<BTreeMap<Value, Value>>),
    /// Tuple (also used internally for group keys).
    Tuple(Arc<Vec<Value>>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a `bit<width>` value, masking `val` to the width.
    ///
    /// Panics if `width` is 0 or greater than 128.
    pub fn bit(width: u16, val: u128) -> Value {
        assert!((1..=128).contains(&width), "bit width {width} out of range");
        Value::Bit {
            width,
            val: mask_to_width(val, width),
        }
    }

    /// Construct a tuple from a vector of values.
    pub fn tuple(vals: Vec<Value>) -> Value {
        Value::Tuple(Arc::new(vals))
    }

    /// Construct a vector value.
    pub fn vec(vals: Vec<Value>) -> Value {
        Value::Vec(Arc::new(vals))
    }

    /// Construct a set value from any iterator.
    pub fn set(vals: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(Arc::new(vals.into_iter().collect()))
    }

    /// Construct a map value from any iterator of pairs.
    pub fn map(vals: impl IntoIterator<Item = (Value, Value)>) -> Value {
        Value::Map(Arc::new(vals.into_iter().collect()))
    }

    /// The runtime type of this value. Element types of empty containers
    /// cannot be recovered and are reported as `Unknown`.
    pub fn type_of(&self) -> Type {
        match self {
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
            Value::Bit { width, .. } => Type::Bit(*width),
            Value::Double(_) => Type::Double,
            Value::Str(_) => Type::Str,
            Value::Uuid(_) => Type::Uuid,
            Value::Vec(v) => Type::Vec(Box::new(
                v.first().map(Value::type_of).unwrap_or(Type::Unknown),
            )),
            Value::Set(v) => Type::Set(Box::new(
                v.iter().next().map(Value::type_of).unwrap_or(Type::Unknown),
            )),
            Value::Map(m) => {
                let (k, v) = m
                    .iter()
                    .next()
                    .map(|(k, v)| (k.type_of(), v.type_of()))
                    .unwrap_or((Type::Unknown, Type::Unknown));
                Type::Map(Box::new(k), Box::new(v))
            }
            Value::Tuple(vs) => Type::Tuple(vs.iter().map(Value::type_of).collect()),
        }
    }

    /// True if the value's type matches `ty` (deep check for containers;
    /// empty containers match any element type).
    pub fn matches_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (_, Type::Unknown) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int) => true,
            (Value::Bit { width, .. }, Type::Bit(w)) => width == w,
            (Value::Double(_), Type::Double) => true,
            (Value::Str(_), Type::Str) => true,
            (Value::Uuid(_), Type::Uuid) => true,
            (Value::Vec(v), Type::Vec(et)) => v.iter().all(|x| x.matches_type(et)),
            (Value::Set(v), Type::Set(et)) => v.iter().all(|x| x.matches_type(et)),
            (Value::Map(m), Type::Map(kt, vt)) => m
                .iter()
                .all(|(k, v)| k.matches_type(kt) && v.matches_type(vt)),
            (Value::Tuple(vs), Type::Tuple(ts)) => {
                vs.len() == ts.len() && vs.iter().zip(ts).all(|(v, t)| v.matches_type(t))
            }
            _ => false,
        }
    }

    /// Interpret as an unsigned integer where possible (Int >= 0 or Bit).
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u128),
            Value::Bit { val, .. } => Some(*val),
            _ => None,
        }
    }

    /// Interpret as a signed integer where possible.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bit { val, .. } if *val <= i128::MAX as u128 => Some(*val as i128),
            _ => None,
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Mask `val` down to `width` bits.
pub fn mask_to_width(val: u128, width: u16) -> u128 {
    if width >= 128 {
        val
    } else {
        val & ((1u128 << width) - 1)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bit { val, .. } => write!(f, "{val}"),
            Value::Double(d) => write!(f, "{}", d.0),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Uuid(u) => write!(f, "{u}"),
            Value::Vec(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Set(v) => {
                write!(f, "{{")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "}}")
            }
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, x) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A relation row: an ordered list of column values.
pub type Row = Arc<Vec<Value>>;

/// Build a [`Row`] from values.
pub fn row(vals: Vec<Value>) -> Row {
    Arc::new(vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_masking() {
        assert_eq!(Value::bit(4, 0xff), Value::Bit { width: 4, val: 0xf });
        assert_eq!(
            Value::bit(128, u128::MAX),
            Value::Bit {
                width: 128,
                val: u128::MAX
            }
        );
    }

    #[test]
    #[should_panic]
    fn bit_width_zero_panics() {
        Value::bit(0, 1);
    }

    #[test]
    fn uuid_roundtrip() {
        let u = Uuid(0x123e4567_e89b_12d3_a456_426614174000);
        let s = u.to_string();
        assert_eq!(s, "123e4567-e89b-12d3-a456-426614174000");
        assert_eq!(Uuid::parse(&s), Some(u));
        assert_eq!(Uuid::parse("nope"), None);
        assert_eq!(Uuid::parse("123e4567e89b12d3a456426614174000"), None);
    }

    #[test]
    fn uuid_from_name_deterministic() {
        assert_eq!(Uuid::from_name("a"), Uuid::from_name("a"));
        assert_ne!(Uuid::from_name("a"), Uuid::from_name("b"));
    }

    #[test]
    fn f64_total_order() {
        let nan = F64(f64::NAN);
        assert_eq!(nan, nan);
        assert!(F64(1.0) < F64(2.0));
        assert!(F64(f64::NEG_INFINITY) < F64(0.0));
    }

    #[test]
    fn type_of_and_matches() {
        let v = Value::vec(vec![Value::Int(1), Value::Int(2)]);
        assert!(v.matches_type(&Type::Vec(Box::new(Type::Int))));
        assert!(!v.matches_type(&Type::Vec(Box::new(Type::Str))));
        let empty = Value::vec(vec![]);
        assert!(empty.matches_type(&Type::Vec(Box::new(Type::Str))));
        assert!(Value::bit(12, 5).matches_type(&Type::Bit(12)));
        assert!(!Value::bit(12, 5).matches_type(&Type::Bit(13)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::bit(8, 7).to_string(), "7");
        assert_eq!(
            Value::tuple(vec![Value::Int(1), Value::Bool(true)]).to_string(),
            "(1, true)"
        );
        assert_eq!(
            Value::map(vec![(Value::Int(1), Value::str("a"))]).to_string(),
            "{1 -> \"a\"}"
        );
    }
}
