//! An incremental Datalog engine in the style of Differential Datalog
//! (DDlog), the control-plane language of the Full-Stack SDN paper
//! (HotNets '22).
//!
//! Programs are written in a typed Datalog dialect (see [`ast`] for the
//! grammar), compiled through type checking ([`typecheck`]) and
//! stratification ([`stratify`]) into per-rule dataflow pipelines
//! ([`plan`]), and evaluated *incrementally*: committing a
//! [`engine::Transaction`] propagates only the change, producing a stream
//! of output deltas ([`engine::TxnDelta`]).
//!
//! ```
//! use ddlog::engine::{Engine, Transaction};
//! use ddlog::value::Value;
//!
//! let mut e = Engine::from_source("
//!     input relation Edge(a: string, b: string)
//!     input relation GivenLabel(n: string, l: bigint)
//!     output relation Label(n: string, l: bigint)
//!     Label(n, l) :- GivenLabel(n, l).
//!     Label(b, l) :- Label(a, l), Edge(a, b).
//! ").unwrap();
//!
//! let mut t = Transaction::new();
//! t.insert("GivenLabel", vec![Value::str("a"), Value::Int(1)]);
//! t.insert("Edge", vec![Value::str("a"), Value::str("b")]);
//! let delta = e.commit(t).unwrap();
//! assert_eq!(delta.changes["Label"].len(), 2);
//! ```
#![warn(missing_docs)]

pub mod arrange;
pub mod ast;
pub mod cexpr;
pub mod chain;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod profile;
pub mod provenance;
pub mod recursive;
pub mod stdlib;
pub mod store;
pub mod stratify;
pub mod typecheck;
pub mod types;
pub mod value;
pub mod zset;

pub use engine::{Engine, Transaction, TxnDelta};
pub use error::{Error, Result};
pub use profile::{AuditConfig, OpCatalog, OpId, OpKind, OpMeta, OpStats, WorkProfile};
pub use provenance::{CandidateReport, ProvenanceConfig, WhyJust, WhyNode, WhyNot, WhySupport};
pub use types::Type;
pub use value::Value;
