//! Abstract syntax for the DDlog-style dialect.
//!
//! A program is a set of typed relation declarations plus rules. The
//! grammar (parsed by [`crate::parser`]) looks like:
//!
//! ```text
//! // Relation declarations. `input` relations are fed by transactions,
//! // `output` relations produce change streams, plain relations are
//! // internal.
//! input relation Port(id: bit<32>, vlan: bit<12>, tag: string)
//! output relation InVlan(port: bit<32>, vlan: bit<12>)
//! relation Reach(a: string, b: string)
//!
//! typedef PortId = bit<32>
//!
//! // Rules. Body items: atoms, `not` atoms, boolean conditions,
//! // `var x = expr` bindings, `var x = FlatMap(e)` flattening, and
//! // `var x = agg(e) group_by (k1, k2)` aggregation.
//! InVlan(p, v) :- Port(p, v, "access").
//! Reach(a, b) :- Edge(a, b).
//! Reach(a, c) :- Reach(a, b), Edge(b, c).
//! PortCount(sw, n) :- Port(p, _, _), SwitchOf(p, sw),
//!                     var n = count(p) group_by (sw).
//! ```

use crate::error::Pos;
use crate::types::Type;

/// A literal constant in source text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `true` / `false`
    Bool(bool),
    /// Integer literal (decimal, `0x`, `0b`). Width-typed by inference.
    Int(i128),
    /// Floating literal.
    Double(f64),
    /// String literal with the usual escapes.
    Str(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-`
    Neg,
    /// Boolean negation `not`
    Not,
    /// Bitwise complement `~`
    BitNot,
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++` string/vector concatenation
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node kind.
    pub kind: ExprKind,
    /// Source position for diagnostics.
    pub pos: Pos,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Literal constant.
    Lit(Literal),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin function call `f(e1, ..)`; the library lives in
    /// [`crate::stdlib`].
    Call(String, Vec<Expr>),
    /// `if (c) e1 else e2`
    IfElse(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e as T` — numeric conversions and width changes.
    Cast(Box<Expr>, Type),
    /// `(e1, e2, ..)` tuple construction (1-tuples are grouping parens and
    /// never produced).
    Tuple(Vec<Expr>),
}

impl Expr {
    /// Build an expression node at a position.
    pub fn new(kind: ExprKind, pos: Pos) -> Expr {
        Expr { kind, pos }
    }

    /// Collect the free variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Lit(_) => {}
            ExprKind::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            ExprKind::Unary(_, e) | ExprKind::Cast(e, _) => e.free_vars(out),
            ExprKind::Binary(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            ExprKind::Call(_, args) | ExprKind::Tuple(args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            ExprKind::IfElse(c, t, e) => {
                c.free_vars(out);
                t.free_vars(out);
                e.free_vars(out);
            }
        }
    }
}

/// An argument of a body atom: a variable to bind or test, a wildcard, or a
/// literal constant. Richer expressions belong in conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Variable: binds on first occurrence, equality-tests afterwards.
    Var(String),
    /// `_` — matches anything.
    Wildcard,
    /// Literal constant: equality-tests the column.
    Lit(Literal),
}

/// A positive or negated occurrence of a relation in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// One pattern per column.
    pub args: Vec<Pattern>,
    /// Source position.
    pub pos: Pos,
}

/// The head of a rule: a relation plus one expression per column.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadAtom {
    /// Relation name (must not be an `input` relation).
    pub relation: String,
    /// One expression per column, over the rule's bound variables.
    pub args: Vec<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// Aggregation functions usable in `group_by` items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of bindings in the group.
    Count,
    /// Number of distinct argument values in the group.
    CountDistinct,
    /// Sum of the argument.
    Sum,
    /// Minimum of the argument.
    Min,
    /// Maximum of the argument.
    Max,
    /// All argument values collected into a `Vec`, sorted for determinism.
    CollectVec,
    /// All argument values collected into a `Set`.
    CollectSet,
}

impl AggFunc {
    /// Parse the function name used in source text.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "count_distinct" => AggFunc::CountDistinct,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "collect_vec" => AggFunc::CollectVec,
            "collect_set" => AggFunc::CollectSet,
            _ => return None,
        })
    }

    /// The source-level name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::CollectVec => "collect_vec",
            AggFunc::CollectSet => "collect_set",
        }
    }
}

/// One item in a rule body, evaluated left to right.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyItem {
    /// Positive atom — join.
    Atom(Atom),
    /// `not Rel(..)` — antijoin; all variables must already be bound.
    Not(Atom),
    /// Boolean condition over bound variables.
    Cond(Expr),
    /// `var x = expr` — bind a new variable.
    Assign {
        /// The variable being bound.
        var: String,
        /// Its defining expression.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `var x = FlatMap(e)` — `e` evaluates to a `Vec`/`Set`/`Map`; the rule
    /// continues once per element (per `(key, value)` tuple for maps).
    FlatMap {
        /// The element variable.
        var: String,
        /// The collection expression.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `var x = f(e) group_by (k1, ..)` — aggregates all bindings so far.
    /// After this item only the group keys and `x` remain in scope.
    Aggregate {
        /// The output variable receiving the aggregate value.
        out_var: String,
        /// The aggregation function.
        func: AggFunc,
        /// The aggregated expression (absent for `count()`).
        arg: Option<Expr>,
        /// Group-key variables.
        by: Vec<String>,
        /// Source position.
        pos: Pos,
    },
}

impl BodyItem {
    /// Source position of the item.
    pub fn pos(&self) -> Pos {
        match self {
            BodyItem::Atom(a) | BodyItem::Not(a) => a.pos,
            BodyItem::Cond(e) => e.pos,
            BodyItem::Assign { pos, .. }
            | BodyItem::FlatMap { pos, .. }
            | BodyItem::Aggregate { pos, .. } => *pos,
        }
    }
}

/// A rule: `Head(..) :- item, item, ... .`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head atom.
    pub head: HeadAtom,
    /// Body items in evaluation order.
    pub body: Vec<BodyItem>,
    /// Source position of the rule.
    pub pos: Pos,
}

/// The role of a relation in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationRole {
    /// Fed by transactions from outside.
    Input,
    /// Computed; changes are reported to commit callers.
    Output,
    /// Computed; internal only.
    Internal,
}

/// A relation declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationDecl {
    /// Relation name (unique per program).
    pub name: String,
    /// Input / output / internal.
    pub role: RelationRole,
    /// Ordered, named, typed columns.
    pub columns: Vec<(String, Type)>,
    /// Source position.
    pub pos: Pos,
}

impl RelationDecl {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column types in order.
    pub fn column_types(&self) -> Vec<Type> {
        self.columns.iter().map(|(_, t)| t.clone()).collect()
    }
}

/// A `typedef Name = Type` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Alias name.
    pub name: String,
    /// Aliased type (aliases are resolved away during parsing).
    pub ty: Type,
    /// Source position.
    pub pos: Pos,
}

/// A parsed program: declarations plus rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Type aliases (already applied to all uses; kept for display).
    pub typedefs: Vec<TypeDef>,
    /// All relation declarations.
    pub relations: Vec<RelationDecl>,
    /// All rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Look up a relation declaration by name.
    pub fn relation(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.iter().find(|r| r.name == name)
    }
}
