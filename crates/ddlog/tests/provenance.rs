//! Provenance tests: `why` derivation trees, `why_not` failure reports,
//! and the churn properties of the justification ledger — re-evaluating
//! a reported tree reproduces the tuple, and no derivation ever
//! references a retracted fact.

use std::collections::BTreeSet;

use ddlog::provenance::{ProvenanceConfig, WhyNode, WhySupport};
use ddlog::value::Value;
use ddlog::{Engine, Transaction};
use proptest::prelude::*;

fn i(v: i128) -> Value {
    Value::Int(v)
}

fn prov(src: &str) -> Engine {
    Engine::from_source_with(src, ProvenanceConfig::on()).unwrap()
}

const JOIN_NEG: &str = "
    input relation E(x: bigint, y: bigint)
    input relation Block(x: bigint)
    output relation Pair(x: bigint, y: bigint)
    Pair(x, y) :- E(x, y), not Block(x).
";

#[test]
fn why_join_with_negation_roots_in_base() {
    let mut e = prov(JOIN_NEG);
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    t.insert("Block", vec![i(9)]);
    e.commit(t).unwrap();

    let node = e.why("Pair", vec![i(1), i(2)]).unwrap();
    assert_eq!(node.relation, "Pair");
    assert!(!node.base);
    assert!(node.rooted_in_base(), "tree:\n{}", node.render_text());
    assert_eq!(node.justs.len(), 1);
    let just = &node.justs[0];
    assert_eq!(just.rule_index, Some(0));
    // One positive support (the E row, a base fact) and one satisfied
    // negation.
    let mut saw_fact = false;
    let mut saw_absent = false;
    for s in &just.supports {
        match s {
            WhySupport::Fact(n) => {
                assert_eq!(n.relation, "E");
                assert!(n.base);
                saw_fact = true;
            }
            WhySupport::Absent { relation, pattern } => {
                assert_eq!(relation, "Block");
                assert!(pattern.contains("Block(1)"), "pattern: {pattern}");
                saw_absent = true;
            }
        }
    }
    assert!(saw_fact && saw_absent);
    let text = node.render_text();
    assert!(text.contains("Pair(1, 2)"), "{text}");
    assert!(text.contains("E(1, 2) — base"), "{text}");
    e.validate_provenance().unwrap();
}

#[test]
fn why_recursive_reaches_base_facts() {
    let src = "
        input relation GivenLabel(n: string, l: bigint)
        input relation Edge(a: string, b: string)
        output relation Label(n: string, l: bigint)
        Label(n1, label) :- GivenLabel(n1, label).
        Label(n2, label) :- Label(n1, label), Edge(n1, n2).
    ";
    let mut e = prov(src);
    let mut t = Transaction::new();
    t.insert("GivenLabel", vec![Value::str("a"), i(1)]);
    t.insert("Edge", vec![Value::str("a"), Value::str("b")]);
    t.insert("Edge", vec![Value::str("b"), Value::str("c")]);
    e.commit(t).unwrap();

    let node = e.why("Label", vec![Value::str("c"), i(1)]).unwrap();
    assert!(node.rooted_in_base(), "tree:\n{}", node.render_text());
    let text = node.render_text();
    // The chain c <- b <- a must appear, ending at the base label fact.
    assert!(text.contains("Label(\"b\", 1)"), "{text}");
    assert!(text.contains("GivenLabel(\"a\", 1) — base"), "{text}");
    assert!(text.contains("Edge(\"b\", \"c\") — base"), "{text}");
    e.validate_provenance().unwrap();
}

#[test]
fn why_aggregate_lists_contributors() {
    let src = "
        input relation P(p: bigint, sw: bigint)
        output relation N(sw: bigint, n: bigint)
        N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
    ";
    let mut e = prov(src);
    let mut t = Transaction::new();
    t.insert("P", vec![i(1), i(7)]);
    t.insert("P", vec![i(2), i(7)]);
    t.insert("P", vec![i(3), i(8)]);
    e.commit(t).unwrap();

    let node = e.why("N", vec![i(7), i(2)]).unwrap();
    assert!(node.rooted_in_base(), "tree:\n{}", node.render_text());
    let text = node.render_text();
    assert!(text.contains("P(1, 7) — base"), "{text}");
    assert!(text.contains("P(2, 7) — base"), "{text}");
    assert!(!text.contains("P(3, 8)"), "other group leaked in: {text}");
    e.validate_provenance().unwrap();
}

#[test]
fn why_declared_fact() {
    let src = "
        output relation C(x: bigint)
        C(42).
    ";
    let e = prov(src);
    let node = e.why("C", vec![i(42)]).unwrap();
    assert_eq!(node.justs.len(), 1);
    assert_eq!(node.justs[0].rule_index, None);
    assert!(node.render_text().contains("via declared fact"));
    e.validate_provenance().unwrap();
}

#[test]
fn why_not_reports_first_failing_literal() {
    let mut e = prov(JOIN_NEG);
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    t.insert("E", vec![i(3), i(4)]);
    t.insert("Block", vec![i(3)]);
    e.commit(t).unwrap();

    // Missing join row: E(5, 6) does not exist.
    let r = e.why_not("Pair", vec![i(5), i(6)]).unwrap();
    assert!(!r.present && !r.input);
    assert_eq!(r.candidates.len(), 1);
    let c = &r.candidates[0];
    assert_eq!(c.stage, Some(0));
    assert!(c.failure.contains("E(5, 6)"), "failure: {}", c.failure);

    // Blocked by the negation: E(3, 4) exists but Block(3) does too.
    let r = e.why_not("Pair", vec![i(3), i(4)]).unwrap();
    let c = &r.candidates[0];
    assert!(
        c.failure.contains("negation violated") && c.failure.contains("Block(3)"),
        "failure: {}",
        c.failure
    );
    let text = r.render_text();
    assert!(text.contains("Pair(3, 4) is not derivable"), "{text}");
}

#[test]
fn why_not_aggregate_value_mismatch() {
    let src = "
        input relation P(p: bigint, sw: bigint)
        output relation N(sw: bigint, n: bigint)
        N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
    ";
    let mut e = prov(src);
    let mut t = Transaction::new();
    t.insert("P", vec![i(1), i(7)]);
    t.insert("P", vec![i(2), i(7)]);
    e.commit(t).unwrap();

    let r = e.why_not("N", vec![i(7), i(5)]).unwrap();
    let c = &r.candidates[0];
    assert!(
        c.failure.contains("aggregate to 2") && c.failure.contains('5'),
        "failure: {}",
        c.failure
    );

    // Empty group: nothing reaches the aggregate.
    let r = e.why_not("N", vec![i(9), i(0)]).unwrap();
    assert!(
        r.candidates[0].failure.contains("P("),
        "failure: {}",
        r.candidates[0].failure
    );
}

#[test]
fn why_and_why_not_direction_checks() {
    let mut e = prov(JOIN_NEG);
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    e.commit(t).unwrap();

    // why on an absent row points at why_not.
    let err = e.why("Pair", vec![i(5), i(5)]).unwrap_err();
    assert!(err.to_string().contains("why_not"), "{err}");
    // why_not on a present row reports it as present.
    let r = e.why_not("Pair", vec![i(1), i(2)]).unwrap();
    assert!(r.present);
    // why_not on an input relation reports input semantics.
    let r = e.why_not("E", vec![i(9), i(9)]).unwrap();
    assert!(r.input);
    assert!(r.render_text().contains("never inserted"));
}

#[test]
fn disabled_engine_rejects_why_but_answers_why_not() {
    let mut e = Engine::from_source(JOIN_NEG).unwrap();
    assert!(!e.provenance_enabled());
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    e.commit(t).unwrap();

    let err = e.why("Pair", vec![i(1), i(2)]).unwrap_err();
    assert!(err.to_string().contains("disabled"), "{err}");
    assert!(e.validate_provenance().is_err());
    // why_not needs no ledger.
    let r = e.why_not("Pair", vec![i(5), i(5)]).unwrap();
    assert_eq!(r.candidates.len(), 1);
}

#[test]
fn retraction_prunes_justifications() {
    // Two rules derive the same row; retracting one support leaves
    // exactly the other justification.
    let src = "
        input relation A(x: bigint)
        input relation B(x: bigint)
        output relation Out(x: bigint)
        Out(x) :- A(x).
        Out(x) :- B(x).
    ";
    let mut e = prov(src);
    let mut t = Transaction::new();
    t.insert("A", vec![i(1)]);
    t.insert("B", vec![i(1)]);
    e.commit(t).unwrap();
    let node = e.why("Out", vec![i(1)]).unwrap();
    assert_eq!(node.justs.len(), 2, "tree:\n{}", node.render_text());

    let mut t = Transaction::new();
    t.delete("A", vec![i(1)]);
    e.commit(t).unwrap();
    let node = e.why("Out", vec![i(1)]).unwrap();
    assert_eq!(node.justs.len(), 1);
    assert_eq!(node.justs[0].rule_index, Some(1));
    e.validate_provenance().unwrap();

    let mut t = Transaction::new();
    t.delete("B", vec![i(1)]);
    e.commit(t).unwrap();
    assert!(e.dump("Out").unwrap().is_empty());
    e.validate_provenance().unwrap();
}

#[test]
fn touch_stamps_carry_trace_and_commit() {
    let mut e = prov(JOIN_NEG);
    e.set_commit_trace(777);
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    e.commit(t).unwrap();

    let touch = e.last_touch("Pair", &[i(1), i(2)]).unwrap();
    assert_eq!(touch, Some((777, 1)));
    let node = e.why("Pair", vec![i(1), i(2)]).unwrap();
    assert_eq!(node.touch, Some((777, 1)));
    assert!(node.render_text().contains("[trace 777 @ commit 1]"));

    // Untraced commits stamp trace 0, rendered without a trace id.
    let mut t = Transaction::new();
    t.insert("E", vec![i(5), i(6)]);
    e.commit(t).unwrap();
    assert_eq!(e.last_touch("Pair", &[i(5), i(6)]).unwrap(), Some((0, 2)));

    // Retraction forgets the stamp.
    let mut t = Transaction::new();
    t.delete("E", vec![i(1), i(2)]);
    e.commit(t).unwrap();
    assert_eq!(e.last_touch("Pair", &[i(1), i(2)]).unwrap(), None);
}

#[test]
fn summary_json_reports_ledger_shape() {
    let mut e = prov(JOIN_NEG);
    let mut t = Transaction::new();
    t.insert("E", vec![i(1), i(2)]);
    e.commit(t).unwrap();
    let json = e.provenance_summary_json();
    assert!(json.contains("\"schema\":\"nerpa.why.v1\""), "{json}");
    assert!(json.contains("\"enabled\":true"), "{json}");
    assert!(json.contains("\"relation\":\"Pair\""), "{json}");

    let off = Engine::from_source(JOIN_NEG).unwrap();
    assert!(off.provenance_summary_json().contains("\"enabled\":false"));
}

// ---------------------------------------------------------------------------
// Churn properties (satellite: proptests)

/// The program the churn properties run against: a join through a
/// negation plus an aggregate, covering every chain stage shape the
/// ledger records.
const CHURN: &str = "
    input relation E(x: bigint, y: bigint)
    input relation Block(x: bigint)
    output relation Pair(x: bigint, y: bigint)
    output relation Deg(x: bigint, n: bigint)
    Pair(x, y) :- E(x, y), not Block(x).
    Deg(x, n) :- E(x, y), var n = count(y) group_by (x).
";

/// Walk a reported derivation tree and check it *reproduces* the tuple:
/// every leaf is a base fact present in the live input sets, and every
/// interior node is visible in the engine.
fn check_tree(
    e: &Engine,
    node: &WhyNode,
    e_live: &BTreeSet<(i128, i128)>,
    block_live: &BTreeSet<i128>,
) {
    if node.base {
        let ok = match node.relation.as_str() {
            "E" => {
                let (Value::Int(x), Value::Int(y)) = (&node.row[0], &node.row[1]) else {
                    panic!("non-int E row")
                };
                e_live.contains(&(*x, *y))
            }
            "Block" => {
                let Value::Int(x) = &node.row[0] else {
                    panic!("non-int Block row")
                };
                block_live.contains(x)
            }
            other => panic!("unexpected base relation {other}"),
        };
        assert!(ok, "base leaf {:?} not in live inputs", node.row);
        return;
    }
    assert!(
        e.dump(&node.relation).unwrap().contains(&node.row),
        "interior node {:?} not visible in {}",
        node.row,
        node.relation
    );
    assert!(!node.justs.is_empty() || node.repeated);
    for j in &node.justs {
        for s in &j.supports {
            match s {
                WhySupport::Fact(n) => check_tree(e, n, e_live, block_live),
                WhySupport::Absent { relation, .. } => {
                    assert_eq!(relation, "Block");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every transaction of a random insert/retract history, each
    /// visible output row has a derivation tree rooted in live base
    /// facts (re-evaluating the tree reproduces the tuple), and the
    /// ledger holds no reference to any retracted fact
    /// (`validate_provenance` re-evaluates every justification).
    #[test]
    fn churn_trees_reproduce_and_never_dangle(
        ops in proptest::collection::vec(
            prop_oneof![
                (0i128..4, 0i128..4).prop_map(|(x, y)| (0u8, x, y)),
                (0i128..4, 0i128..4).prop_map(|(x, y)| (1u8, x, y)),
                (0i128..4).prop_map(|x| (2u8, x, 0)),
                (0i128..4).prop_map(|x| (3u8, x, 0)),
            ],
            1..30,
        )
    ) {
        let mut e = prov(CHURN);
        let mut e_live: BTreeSet<(i128, i128)> = BTreeSet::new();
        let mut block_live: BTreeSet<i128> = BTreeSet::new();
        for (step, (kind, x, y)) in ops.iter().enumerate() {
            let mut t = Transaction::new();
            match kind {
                0 => { t.insert("E", vec![i(*x), i(*y)]); e_live.insert((*x, *y)); }
                1 => { t.delete("E", vec![i(*x), i(*y)]); e_live.remove(&(*x, *y)); }
                2 => { t.insert("Block", vec![i(*x)]); block_live.insert(*x); }
                _ => { t.delete("Block", vec![i(*x)]); block_live.remove(x); }
            }
            e.set_commit_trace(step as u64 + 1);
            e.commit(t).unwrap();

            // No derivation references a retracted fact; counts agree.
            e.validate_provenance().unwrap();

            // Every visible output row explains down to live base facts.
            for rel in ["Pair", "Deg"] {
                for row in e.dump(rel).unwrap() {
                    let node = e.why(rel, row.clone()).unwrap();
                    prop_assert!(node.rooted_in_base(), "tree:\n{}", node.render_text());
                    check_tree(&e, &node, &e_live, &block_live);
                }
            }
            // And for absent rows, why_not finds a concrete failure.
            for x in 0..4i128 {
                for yv in 0..4i128 {
                    if e_live.contains(&(x, yv)) && !block_live.contains(&x) {
                        continue;
                    }
                    let r = e.why_not("Pair", vec![i(x), i(yv)]).unwrap();
                    if !r.present {
                        prop_assert_eq!(r.candidates.len(), 1);
                        prop_assert!(!r.candidates[0].failure.is_empty());
                    }
                }
            }
        }
    }

    /// Inverse histories drain the ledger completely: after committing
    /// ops and their exact inverses, no justification survives.
    #[test]
    fn inverse_history_drains_ledger(
        rows in proptest::collection::vec((0i128..5, 0i128..5), 1..12)
    ) {
        let mut e = prov(CHURN);
        let mut t = Transaction::new();
        for (x, y) in &rows {
            t.insert("E", vec![i(*x), i(*y)]);
        }
        e.commit(t).unwrap();
        e.validate_provenance().unwrap();

        let mut t = Transaction::new();
        for (x, y) in &rows {
            t.delete("E", vec![i(*x), i(*y)]);
        }
        e.commit(t).unwrap();
        e.validate_provenance().unwrap();
        prop_assert!(e.dump("Pair").unwrap().is_empty());
        prop_assert!(e.dump("Deg").unwrap().is_empty());
        let json = e.provenance_summary_json();
        prop_assert!(json.contains("\"rows\":0"), "{json}");
    }
}
