//! Property tests for the engine's algebraic foundations and for
//! incremental-vs-scratch equivalence on join/FlatMap programs.

use ddlog::value::Value;
use ddlog::zset::ZSet;
use ddlog::{Engine, Transaction};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn zset_strategy() -> impl Strategy<Value = ZSet<i32>> {
    proptest::collection::vec((0i32..10, -3isize..4), 0..12)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    /// Z-set addition is commutative and associative; negation is an
    /// inverse.
    #[test]
    fn zset_group_laws(a in zset_strategy(), b in zset_strategy(), c in zset_strategy()) {
        // a + b == b + a
        let mut ab = a.clone();
        ab.add_all(&b);
        let mut ba = b.clone();
        ba.add_all(&a);
        prop_assert_eq!(&ab, &ba);
        // (a + b) + c == a + (b + c)
        let mut abc1 = ab.clone();
        abc1.add_all(&c);
        let mut bc = b.clone();
        bc.add_all(&c);
        let mut abc2 = a.clone();
        abc2.add_all(&bc);
        prop_assert_eq!(&abc1, &abc2);
        // a + (-a) == 0
        let mut zero = a.clone();
        zero.add_all(&a.negate());
        prop_assert!(zero.is_empty());
    }

    /// distinct() is idempotent and distinct_delta() predicts the change
    /// in the distinct view exactly.
    #[test]
    fn zset_distinct_laws(a in zset_strategy(), d in zset_strategy()) {
        let da = a.distinct();
        prop_assert_eq!(da.distinct(), da.clone());
        prop_assert!(da.all_positive());

        // Clamp `a` to be valid contents (nonnegative) first.
        let contents: ZSet<i32> = a.iter().filter(|(_, w)| *w > 0)
            .map(|(e, w)| (*e, w)).collect();
        // Restrict delta so contents never go negative.
        let delta: ZSet<i32> = d.iter()
            .map(|(e, w)| (*e, w.max(-contents.weight(e))))
            .collect();
        let predicted = contents.distinct_delta(&delta);
        let mut after = contents.clone();
        after.add_all(&delta);
        let mut want = after.distinct();
        want.add_all(&contents.distinct().negate());
        prop_assert_eq!(predicted, want);
    }

    /// Building a Z-set is order-independent: inserting the same
    /// (element, weight) pairs in any order, or merging any split of
    /// them in either order, consolidates to the same Z-set.
    #[test]
    fn zset_build_order_independent(
        pairs in proptest::collection::vec((0i32..8, -3isize..4), 0..16),
        split in 0usize..16,
    ) {
        let forward: ZSet<i32> = pairs.iter().cloned().collect();
        let reverse: ZSet<i32> = pairs.iter().rev().cloned().collect();
        prop_assert_eq!(&forward, &reverse);

        let cut = split.min(pairs.len());
        let head: ZSet<i32> = pairs[..cut].iter().cloned().collect();
        let tail: ZSet<i32> = pairs[cut..].iter().cloned().collect();
        let mut ht = head.clone();
        ht.merge(tail.clone());
        let mut th = tail;
        th.merge(head);
        prop_assert_eq!(&ht, &forward);
        prop_assert_eq!(&th, &forward);
    }

    /// Weight arithmetic saturates instead of overflowing: piling
    /// extreme weights onto one element never panics, and cancelling
    /// weights still consolidates to the empty set.
    #[test]
    fn zset_weight_arithmetic_saturates(
        extremes in proptest::collection::vec(
            prop_oneof![Just(isize::MAX), Just(isize::MIN), Just(1), Just(-1)],
            1..8,
        )
    ) {
        let mut z = ZSet::new();
        for w in &extremes {
            z.add(0i32, *w); // must not overflow-panic in debug builds
        }
        let expected = extremes.iter().fold(0isize, |acc, w| acc.saturating_add(*w));
        prop_assert_eq!(z.weight(&0), expected);

        // distinct_delta near the saturation boundary saturates rather
        // than wrapping past MAX (negative contents are a precondition
        // violation, so only the positive direction is exercised).
        let contents = ZSet::singleton(0i32, isize::MAX);
        let bumped = contents.distinct_delta(&ZSet::singleton(0i32, isize::MAX));
        prop_assert!(bumped.is_empty(), "already-present element must not re-appear");

        // Exact cancellation removes the element from the support.
        let mut c = ZSet::new();
        c.add(7i32, 5);
        c.add(7i32, -5);
        prop_assert!(c.is_empty());
        prop_assert_eq!(c.weight(&7), 0);
    }
}

const JOIN_FLATMAP: &str = "
input relation A(x: bigint, ys: Vec<bigint>)
input relation B(y: bigint, z: bigint)
output relation R(x: bigint, z: bigint)
R(x, z) :- A(x, ys), var y = FlatMap(ys), B(y, z).
";

fn a_row(x: i128, ys: &[i128]) -> Vec<Value> {
    vec![
        Value::Int(x),
        Value::vec(ys.iter().map(|y| Value::Int(*y)).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join-through-FlatMap: random per-transaction updates equal the
    /// from-scratch evaluation of the surviving input set.
    #[test]
    fn join_flatmap_incremental(
        ops in proptest::collection::vec(
            prop_oneof![
                (0i128..4, proptest::collection::vec(0i128..4, 0..3))
                    .prop_map(|(x, ys)| (0u8, x, ys)),
                (0i128..4, proptest::collection::vec(0i128..4, 0..3))
                    .prop_map(|(x, ys)| (1u8, x, ys)),
                (0i128..4, 0i128..4).prop_map(|(y, z)| (2u8, y, vec![z])),
                (0i128..4, 0i128..4).prop_map(|(y, z)| (3u8, y, vec![z])),
            ],
            1..40,
        )
    ) {
        let mut inc = Engine::from_source(JOIN_FLATMAP).unwrap();
        let mut a_live: BTreeSet<(i128, Vec<i128>)> = BTreeSet::new();
        let mut b_live: BTreeSet<(i128, i128)> = BTreeSet::new();
        for (kind, k, rest) in &ops {
            let mut t = Transaction::new();
            match kind {
                0 => { t.insert("A", a_row(*k, rest)); a_live.insert((*k, rest.clone())); }
                1 => { t.delete("A", a_row(*k, rest)); a_live.remove(&(*k, rest.clone())); }
                2 => { t.insert("B", vec![Value::Int(*k), Value::Int(rest[0])]); b_live.insert((*k, rest[0])); }
                _ => { t.delete("B", vec![Value::Int(*k), Value::Int(rest[0])]); b_live.remove(&(*k, rest[0])); }
            }
            inc.commit(t).unwrap();
        }

        let mut scratch = Engine::from_source(JOIN_FLATMAP).unwrap();
        let mut t = Transaction::new();
        for (x, ys) in &a_live {
            t.insert("A", a_row(*x, ys));
        }
        for (y, z) in &b_live {
            t.insert("B", vec![Value::Int(*y), Value::Int(*z)]);
        }
        scratch.commit(t).unwrap();

        prop_assert_eq!(inc.dump("R").unwrap(), scratch.dump("R").unwrap());
    }

    /// Committing a transaction and then a transaction with the exact
    /// inverse operations returns every output relation to its previous
    /// contents.
    #[test]
    fn inverse_transactions_cancel(
        rows in proptest::collection::vec((0i128..5, 0i128..5), 1..10)
    ) {
        let mut e = Engine::from_source(JOIN_FLATMAP).unwrap();
        // Fixed B contents.
        let mut t = Transaction::new();
        for y in 0..5i128 {
            t.insert("B", vec![Value::Int(y), Value::Int(y * 10)]);
        }
        e.commit(t).unwrap();
        let before = e.dump("R").unwrap();

        let mut t = Transaction::new();
        for (x, y) in &rows {
            t.insert("A", a_row(*x, &[*y]));
        }
        e.commit(t).unwrap();

        let mut t = Transaction::new();
        for (x, y) in &rows {
            t.delete("A", a_row(*x, &[*y]));
        }
        e.commit(t).unwrap();
        prop_assert_eq!(e.dump("R").unwrap(), before);
    }

    /// string_substr never panics and always returns a substring.
    #[test]
    fn substr_total(s in ".{0,20}", a in 0i128..30, b in 0i128..30) {
        let v = ddlog::stdlib::eval_call(
            "string_substr",
            &[Value::str(&s), Value::Int(a), Value::Int(b)],
        ).unwrap();
        let out = v.as_str().unwrap().to_string();
        prop_assert!(out.chars().count() <= s.chars().count());
    }
}
