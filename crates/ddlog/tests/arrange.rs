//! Arrangement correctness contracts, property-tested: probing the
//! maintained index agrees with a naive scan join, N incremental
//! commits leave every arrangement identical to one built from scratch
//! over the final state, and how a change sequence is batched into
//! commits does not affect the result.

use std::collections::{BTreeSet, HashSet};

use ddlog::arrange::Arrangement;
use ddlog::value::{row, Row};
use ddlog::zset::ZSet;
use ddlog::{Engine, Transaction, Value};
use proptest::prelude::*;

const JOIN_PROG: &str = "
    input relation L(x: bigint, y: bigint)
    input relation R(y: bigint, z: bigint)
    output relation J(x: bigint, z: bigint)
    J(x, z) :- L(x, y), R(y, z).
";

const REACH_PROG: &str = "
    input relation GivenLabel(n: bigint, l: bigint)
    input relation Edge(a: bigint, b: bigint)
    output relation Label(n: bigint, l: bigint)
    Label(n, l) :- GivenLabel(n, l).
    Label(b, l) :- Label(a, l), Edge(a, b).
";

fn i(v: i64) -> Value {
    Value::Int(v as i128)
}

/// One toggle op against a two-relation instance: flips row `(a, b)` of
/// the left (or right) relation between absent and present. Toggling
/// keeps every generated sequence valid (no double-insert, no delete of
/// an absent row) without constraining the search space.
type Toggle = (bool, i64, i64);

/// Apply toggles to mirror sets, emitting `(rel, row, insert?)` ops.
fn materialize(toggles: &[Toggle]) -> Vec<(&'static str, Vec<Value>, bool)> {
    let mut left: HashSet<(i64, i64)> = HashSet::new();
    let mut right: HashSet<(i64, i64)> = HashSet::new();
    let mut ops = Vec::with_capacity(toggles.len());
    for &(is_left, a, b) in toggles {
        let (rel, live) = if is_left {
            ("L", &mut left)
        } else {
            ("R", &mut right)
        };
        let insert = live.insert((a, b));
        if !insert {
            live.remove(&(a, b));
        }
        ops.push((rel, vec![i(a), i(b)], insert));
    }
    ops
}

type Pairs = BTreeSet<(i64, i64)>;

/// The final visible rows per relation after a toggle sequence.
fn final_state(toggles: &[Toggle]) -> (Pairs, Pairs) {
    let mut left = BTreeSet::new();
    let mut right = BTreeSet::new();
    for &(is_left, a, b) in toggles {
        let live = if is_left { &mut left } else { &mut right };
        if !live.insert((a, b)) {
            live.remove(&(a, b));
        }
    }
    (left, right)
}

fn toggles() -> impl Strategy<Value = Vec<Toggle>> {
    proptest::collection::vec((any::<bool>(), 0i64..8, 0i64..8), 1..48)
}

proptest! {
    /// Probing an incrementally maintained arrangement computes the same
    /// join as a naive nested-loop scan over the live rows. The
    /// arrangement sees the state only as a sequence of z-set deltas;
    /// the naive side sees only the final sets.
    #[test]
    fn arranged_probe_join_equals_naive_scan_join(ts in toggles()) {
        // Maintain R's arrangement keyed by column 0 delta-by-delta.
        let mut arr = Arrangement::new(&[0], None);
        let mut left: HashSet<(i64, i64)> = HashSet::new();
        for (rel, vals, insert) in materialize(&ts) {
            if rel == "L" {
                let pair = (as_i64(&vals[0]), as_i64(&vals[1]));
                if insert { left.insert(pair); } else { left.remove(&pair); }
                continue;
            }
            let mut d = ZSet::new();
            d.add(row(vals), if insert { 1 } else { -1 });
            arr.apply(&d, false);
        }
        let (_, right) = final_state(&ts);

        // Arranged-probe join: for each L(x, y), probe R's index by y.
        let mut probed: Vec<(i64, i64)> = Vec::new();
        for &(x, y) in &left {
            if let Some(rows) = arr.get(&vec![i(y)]) {
                for r in rows {
                    probed.push((x, as_i64(&r[1])));
                }
            }
        }
        // Naive scan join over the final sets.
        let mut scanned: Vec<(i64, i64)> = Vec::new();
        for &(x, y) in &left {
            for &(ry, rz) in &right {
                if y == ry {
                    scanned.push((x, rz));
                }
            }
        }
        probed.sort_unstable();
        scanned.sort_unstable();
        prop_assert_eq!(probed, scanned);
    }

    /// After N incremental commits, every arrangement the engine
    /// maintains equals one built from scratch over the final relation
    /// state, and the engine's output equals that of a fresh engine fed
    /// the final state in one commit.
    #[test]
    fn incremental_arrangements_equal_scratch_build(
        ts in toggles(),
        commits in 1usize..6,
    ) {
        let mut e = Engine::from_source(JOIN_PROG).unwrap();
        let ops = materialize(&ts);
        for chunk in ops.chunks(ops.len().div_ceil(commits)) {
            let mut t = Transaction::new();
            for (rel, vals, insert) in chunk {
                if *insert {
                    t.insert(*rel, vals.clone());
                } else {
                    t.delete(*rel, vals.clone());
                }
            }
            e.commit(t).unwrap();
        }
        // Drift detector: maintained index vs index rebuilt from the
        // store's visible rows.
        e.validate_arrangements().unwrap();

        // Semantic check: same output as a from-scratch evaluation.
        let (left, right) = final_state(&ts);
        let mut fresh = Engine::from_source(JOIN_PROG).unwrap();
        let mut t = Transaction::new();
        for &(a, b) in &left {
            t.insert("L", vec![i(a), i(b)]);
        }
        for &(a, b) in &right {
            t.insert("R", vec![i(a), i(b)]);
        }
        fresh.commit(t).unwrap();
        prop_assert_eq!(sorted_dump(&e, "J"), sorted_dump(&fresh, "J"));
    }

    /// How a change sequence is split into commits does not affect the
    /// final output or the maintained indexes — mirrors the profiler's
    /// op-order proptest, one level up: batching is an implementation
    /// detail, not a semantic one. Exercises the recursive (fixpoint +
    /// DRed) path, where stale indexes would bite hardest.
    #[test]
    fn batch_split_is_order_independent(
        ts in proptest::collection::vec((any::<bool>(), 0i64..6, 0i64..6), 1..32),
        split_a in 1usize..5,
        split_b in 1usize..5,
    ) {
        let run = |splits: usize| {
            let mut e = Engine::from_source(REACH_PROG).unwrap();
            let mut t = Transaction::new();
            t.insert("GivenLabel", vec![i(0), i(1)]);
            e.commit(t).unwrap();
            // Reinterpret toggles as Edge churn (the bool is ignored so
            // both relations' strategies stay identical).
            let edges: Vec<Toggle> = ts.iter().map(|&(_, a, b)| (false, a, b)).collect();
            let ops = materialize(&edges);
            for chunk in ops.chunks(ops.len().div_ceil(splits)) {
                let mut t = Transaction::new();
                for (_, vals, insert) in chunk {
                    if *insert {
                        t.insert("Edge", vals.clone());
                    } else {
                        t.delete("Edge", vals.clone());
                    }
                }
                e.commit(t).unwrap();
            }
            e.validate_arrangements().unwrap();
            sorted_dump(&e, "Label")
        };
        prop_assert_eq!(run(split_a), run(split_b));
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n as i64,
        other => panic!("expected Int, got {other:?}"),
    }
}

fn sorted_dump(e: &Engine, rel: &str) -> Vec<Vec<Value>> {
    let mut rows = e.dump(rel).unwrap();
    rows.sort();
    rows
}

/// The stale-arrangement fault injection leaves ghost rows behind a
/// retraction, and the drift detector names the divergent key.
#[test]
fn stale_arrangement_fault_is_detected_by_validation() {
    let mut e = Engine::from_source(JOIN_PROG).unwrap();
    let mut t = Transaction::new();
    t.insert("L", vec![i(1), i(2)]);
    t.insert("R", vec![i(2), i(3)]);
    e.commit(t).unwrap();
    e.validate_arrangements().unwrap();

    e.inject_stale_arrangement(true);
    let mut t = Transaction::new();
    t.delete("R", vec![i(2), i(3)]);
    e.commit(t).unwrap();
    let err = e.validate_arrangements().unwrap_err().to_string();
    assert!(err.contains("diverged"), "{err}");
}

/// Probing a `Row` (an `Arc<Vec<Value>>`) through the public accessors
/// used by the proptests behaves like plain indexing.
#[test]
fn arrangement_probe_smoke() {
    let mut arr = Arrangement::new(&[0], None);
    let mut d = ZSet::new();
    d.add(row(vec![i(5), i(7)]), 1);
    d.add(row(vec![i(5), i(8)]), 1);
    d.add(row(vec![i(6), i(9)]), 1);
    arr.apply(&d, false);
    assert_eq!(arr.len_of(&vec![i(5)]), 2);
    assert_eq!(arr.len_of(&vec![i(6)]), 1);
    assert_eq!(arr.len_of(&vec![i(7)]), 0);
    assert_eq!(arr.entries(), 3);

    let r: Row = row(vec![i(5), i(7)]);
    let mut del = ZSet::new();
    del.add(r, -1);
    arr.apply(&del, false);
    assert_eq!(arr.len_of(&vec![i(5)]), 1);
}
