//! Dataflow profiler contracts: per-operator counts sum to engine-level
//! totals across join/aggregate/recursive programs, profiles are
//! independent of transaction op order, incremental byte accounting
//! matches a full recompute, and the `/dataflow` JSON schema is pinned
//! to a golden file.

use std::collections::BTreeSet;

use ddlog::{AuditConfig, Engine, OpKind, Transaction, Value, WorkProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn s(v: &str) -> Value {
    Value::str(v)
}
fn i(v: i128) -> Value {
    Value::Int(v)
}

/// Sum of Distinct-operator tuples-out across all relations — the
/// engine-level total of set-level changes this commit (inputs included).
fn distinct_out(e: &Engine, p: &WorkProfile) -> u64 {
    e.op_catalog()
        .distinct_ops
        .iter()
        .map(|op| p.stats[*op].tuples_out)
        .sum()
}

#[test]
fn join_profile_sums_to_engine_totals() {
    let mut e = Engine::from_source(
        "
        input relation A(x: bigint, y: bigint)
        input relation B(y: bigint, z: bigint)
        output relation R(x: bigint, z: bigint)
        R(x, z) :- A(x, y), B(y, z).
        ",
    )
    .unwrap();
    let mut t = Transaction::new();
    for k in 0..4 {
        t.insert("A", vec![i(k), i(k % 2)]);
    }
    t.insert("B", vec![i(0), i(10)]);
    t.insert("B", vec![i(1), i(11)]);
    let (d, p) = e.commit_profiled(t).unwrap();

    // Set-level input delta: 4 A rows + 2 B rows.
    assert_eq!(p.input_tuples, 6);
    let cat = e.op_catalog();
    let a = cat.distinct_ops[0];
    let b = cat.distinct_ops[1];
    let r = cat.distinct_ops[2];
    assert_eq!(p.stats[a].tuples_out, 4);
    assert_eq!(p.stats[b].tuples_out, 2);
    // The output relation's Distinct emits exactly the TxnDelta rows.
    assert_eq!(p.stats[r].tuples_out as usize, d.changes["R"].len());
    // Engine-level conservation: every set-level change flows through
    // exactly one Distinct operator.
    assert_eq!(distinct_out(&e, &p), p.input_tuples + d.len() as u64);

    // The scan consumed A's delta; the join consumed the scanned
    // bindings plus B's delta and produced the joined rows, which are
    // what R's Distinct consumed.
    let ops = &cat.rule_ops[0];
    let scan = &p.stats[ops[0]];
    let join = &p.stats[ops[1]];
    assert_eq!(cat.ops[ops[0]].kind, OpKind::Scan);
    assert_eq!(cat.ops[ops[1]].kind, OpKind::Join);
    assert_eq!(scan.tuples_in, 4);
    assert_eq!(scan.tuples_out, 4);
    assert_eq!(join.tuples_in, scan.tuples_out + 2);
    assert_eq!(join.tuples_out, p.stats[r].tuples_in);
}

#[test]
fn aggregate_profile_sums_to_engine_totals() {
    let mut e = Engine::from_source(
        "
        input relation P(p: bigint, sw: string)
        output relation N(sw: string, n: bigint)
        N(sw, n) :- P(p, sw), var n = count(p) group_by (sw).
        ",
    )
    .unwrap();
    let mut t = Transaction::new();
    t.insert("P", vec![i(1), s("a")]);
    t.insert("P", vec![i(2), s("a")]);
    t.insert("P", vec![i(3), s("b")]);
    let (d, p) = e.commit_profiled(t).unwrap();
    let cat = e.op_catalog().clone();
    let ops = cat.rule_ops[0].clone();
    assert_eq!(cat.ops[ops[1]].kind, OpKind::Aggregate);
    // Two groups changed from empty: one +1 row each.
    assert_eq!(p.stats[ops[1]].tuples_in, 3);
    assert_eq!(p.stats[ops[1]].tuples_out, 2);
    assert_eq!(distinct_out(&e, &p), p.input_tuples + d.len() as u64);

    // Deleting one port rewrites its group: -old +new aggregate rows.
    let mut t = Transaction::new();
    t.delete("P", vec![i(2), s("a")]);
    let (d, p) = e.commit_profiled(t).unwrap();
    assert_eq!(p.input_tuples, 1);
    assert_eq!(p.stats[ops[1]].tuples_out, 2);
    assert_eq!(d.changes["N"].len(), 2);
    assert_eq!(distinct_out(&e, &p), p.input_tuples + d.len() as u64);
}

#[test]
fn recursive_profile_accounts_fixpoint_work() {
    let mut e = Engine::from_source(
        "
        input relation GivenLabel(n: string, l: bigint)
        input relation Edge(a: string, b: string)
        output relation Label(n: string, l: bigint)
        Label(n, l) :- GivenLabel(n, l).
        Label(b, l) :- Label(a, l), Edge(a, b).
        ",
    )
    .unwrap();
    let cat = e.op_catalog().clone();
    // Recursive rules have no per-stage operators; the stratum has one
    // Fixpoint operator instead.
    assert!(cat.rule_ops.iter().all(Vec::is_empty));
    let fix = cat
        .fixpoint_ops
        .iter()
        .flatten()
        .copied()
        .next()
        .expect("a recursive stratum");
    assert_eq!(cat.ops[fix].kind, OpKind::Fixpoint);

    let mut t = Transaction::new();
    t.insert("GivenLabel", vec![s("a"), i(1)]);
    t.insert("Edge", vec![s("a"), s("b")]);
    t.insert("Edge", vec![s("b"), s("c")]);
    let (d, p) = e.commit_profiled(t).unwrap();
    // The fixpoint's output is exactly the stratum's net set-level delta,
    // which for this program is the Label TxnDelta.
    assert_eq!(p.stats[fix].tuples_out as usize, d.changes["Label"].len());
    assert!(p.stats[fix].tuples_in >= p.stats[fix].tuples_out);
    assert!(p.stats[fix].peak > 0);

    // Deleting the middle edge drives DRed over two labels.
    let mut t = Transaction::new();
    t.delete("Edge", vec![s("a"), s("b")]);
    let (d, p) = e.commit_profiled(t).unwrap();
    assert_eq!(p.stats[fix].tuples_out as usize, d.changes["Label"].len());
    assert!(p.stats[fix].tuples_in > 0, "DRed work must be visible");
}

#[test]
fn audit_passes_incremental_and_catches_blowup() {
    let mut e = Engine::from_source(
        "
        input relation A(x: bigint, y: bigint)
        input relation B(y: bigint, z: bigint)
        output relation R(x: bigint, z: bigint)
        R(x, z) :- A(x, y), B(y, z).
        ",
    )
    .unwrap();
    e.set_audit(Some(AuditConfig::default()));
    let mut t = Transaction::new();
    for k in 0..32 {
        t.insert("A", vec![i(k), i(k)]);
        t.insert("B", vec![i(k), i(k + 100)]);
    }
    e.commit(t).expect("incremental work fits the budget");

    // A single B row joining against a large arranged A side: the work
    // is proportional to the (large) output delta, so the default audit
    // still passes...
    let mut e2 = Engine::from_source(
        "
        input relation A(x: bigint, y: bigint)
        input relation B(y: bigint, z: bigint)
        output relation R(x: bigint, z: bigint)
        R(x, z) :- A(x, y), B(y, z).
        ",
    )
    .unwrap();
    let mut t = Transaction::new();
    for k in 0..600 {
        t.insert("A", vec![i(k), i(0)]);
    }
    e2.commit(t).unwrap();
    // ...but a zero-slack zero-ratio budget trips, proving the check
    // actually fires and does not poison the engine.
    e2.set_audit(Some(AuditConfig { ratio: 0, slack: 0 }));
    let mut t = Transaction::new();
    t.insert("B", vec![i(0), i(7)]);
    let err = e2.commit(t).expect_err("zero budget must trip");
    assert!(err.to_string().contains("incrementality audit"), "{err}");
    assert!(e2.last_profile().is_some());
    // Not poisoned: the engine keeps working once the audit is relaxed.
    e2.set_audit(None);
    let mut t = Transaction::new();
    t.insert("B", vec![i(1), i(8)]);
    e2.commit(t).expect("audit failure must not poison");
}

#[test]
fn engine_bytes_incremental_matches_recompute() {
    let mut e = Engine::from_source(
        "
        input relation GivenLabel(n: string, l: bigint)
        input relation Edge(a: string, b: string)
        output relation Label(n: string, l: bigint)
        output relation Deg(a: string, n: bigint)
        Label(n, l) :- GivenLabel(n, l).
        Label(b, l) :- Label(a, l), Edge(a, b).
        Deg(a, n) :- Edge(a, b), var n = count(b) group_by (a).
        ",
    )
    .unwrap();
    let names = ["a", "b", "c", "d", "e"];
    let mut t = Transaction::new();
    t.insert("GivenLabel", vec![s("a"), i(1)]);
    for (k, w) in names.iter().zip(names.iter().skip(1)) {
        t.insert("Edge", vec![s(k), s(w)]);
    }
    t.insert("Edge", vec![s("e"), s("b")]);
    e.commit(t).unwrap();
    assert_eq!(e.approx_bytes(), e.approx_bytes_recompute());

    let mut t = Transaction::new();
    t.delete("Edge", vec![s("b"), s("c")]);
    t.insert("Edge", vec![s("a"), s("d")]);
    e.commit(t).unwrap();
    assert_eq!(e.approx_bytes(), e.approx_bytes_recompute());
    assert!(e.approx_bytes() > 0);
}

const SPLIT_PROG: &str = "
    input relation A(x: bigint, y: bigint)
    input relation B(y: bigint, z: bigint)
    output relation J(x: bigint, z: bigint)
    output relation C(y: bigint, n: bigint)
    J(x, z) :- A(x, y), B(y, z).
    C(y, n) :- A(x, y), var n = count(x) group_by (y).
";

fn run_ordered(ops: &[(bool, i128, i128)], order: &[usize]) -> (Vec<(u64, u64, u64, u64)>, u64) {
    let mut e = Engine::from_source(SPLIT_PROG).unwrap();
    let mut t = Transaction::new();
    for idx in order {
        let (is_a, x, y) = ops[*idx];
        let rel = if is_a { "A" } else { "B" };
        t.insert(rel, vec![i(x), i(y)]);
    }
    let (_, p) = e.commit_profiled(t).unwrap();
    (p.counts(), p.input_tuples)
}

proptest! {
    /// A transaction's WorkProfile (timings aside) does not depend on
    /// the order its ops were batched in.
    #[test]
    fn profile_independent_of_op_order(
        rows in proptest::collection::vec((any::<bool>(), 0i64..20, 0i64..6), 1..24),
        seed in any::<u64>(),
    ) {
        // Distinct rows only: permuting duplicate inserts is a no-op,
        // but insert-then-delete of the same row is order-sensitive by
        // design, so dedupe before shuffling.
        let ops: Vec<(bool, i128, i128)> = rows
            .into_iter()
            .map(|(a, x, y)| (a, x as i128, y as i128))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let forward: Vec<usize> = (0..ops.len()).collect();
        let mut shuffled = forward.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for k in (1..shuffled.len()).rev() {
            shuffled.swap(k, rng.random_range(0..=k));
        }
        let (c1, in1) = run_ordered(&ops, &forward);
        let (c2, in2) = run_ordered(&ops, &shuffled);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(in1, in2);
    }
}

/// Zero out the volatile (timing/platform-sized) numeric fields of the
/// dataflow JSON so the rest can be compared exactly.
fn normalize_dataflow_json(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = ["\"wall_ns\":", "\"total_wall_ns\":", "\"state_bytes\":"]
        .iter()
        .filter_map(|k| rest.find(k).map(|p| p + k.len()))
        .min()
    {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        out.push('0');
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

#[test]
fn dataflow_json_matches_golden_file() {
    let mut e = Engine::from_source(
        "
        input relation GivenLabel(n: string, l: bigint)
        input relation Edge(a: string, b: string)
        output relation Label(n: string, l: bigint)
        Label(n, l) :- GivenLabel(n, l).
        Label(b, l) :- Label(a, l), Edge(a, b).
        input relation Port(id: bigint, sw: string, up: bool)
        input relation Blocked(id: bigint)
        output relation Active(id: bigint, sw: string)
        Active(id, sw) :- Port(id, sw, up), up == true, not Blocked(id).
        output relation PortCount(sw: string, n: bigint)
        PortCount(sw, n) :- Port(id, sw, _), var n = count(id) group_by (sw).
        output relation Doubled(id: bigint, d: bigint)
        Doubled(id, d) :- Active(id, sw), var d = id * 2.
        ",
    )
    .unwrap();
    let mut t = Transaction::new();
    t.insert("Port", vec![i(1), s("s1"), Value::Bool(true)]);
    t.insert("Port", vec![i(2), s("s1"), Value::Bool(true)]);
    t.insert("Port", vec![i(3), s("s2"), Value::Bool(false)]);
    t.insert("Blocked", vec![i(2)]);
    e.commit(t).unwrap();
    let mut t = Transaction::new();
    t.delete("Blocked", vec![i(2)]);
    e.commit(t).unwrap();

    let normalized = normalize_dataflow_json(&e.explain_json());
    if std::env::var_os("BLESS_DATAFLOW_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_dataflow.json");
        std::fs::write(path, format!("{normalized}\n")).unwrap();
    }
    let golden = include_str!("golden_dataflow.json");
    assert_eq!(
        normalized,
        golden.trim_end(),
        "/dataflow JSON schema drifted from tests/golden_dataflow.json; \
         if the change is intentional, regenerate the golden file"
    );

    // The text rendering covers the same operators.
    let text = e.explain_text();
    for kind in ["scan", "antijoin", "aggregate", "distinct", "fixpoint"] {
        assert!(text.contains(kind), "explain text missing {kind}:\n{text}");
    }
}
