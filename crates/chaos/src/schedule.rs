//! Fault schedules: scripted, seed-resolved per-connection fault plans.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Wire framing the proxy uses to count protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON (OVSDB JSON-RPC).
    Ndjson,
    /// 4-byte big-endian length prefix + body (P4 control protocol).
    LengthPrefixed,
    /// No framing: every read chunk counts as one message.
    Raw,
}

/// Which direction's messages count toward a fault trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Messages flowing client → server.
    ClientToServer,
    /// Messages flowing server → client.
    ServerToClient,
    /// Messages in either direction.
    Both,
}

/// The scripted fault plan for one proxied connection.
///
/// `kill_after` is a *range* `[lo, hi]` of message counts; the concrete
/// kill point is drawn from the schedule's seeded RNG when the
/// connection is accepted, so runs are reproducible but not tied to a
/// hand-picked constant. Use `lo == hi` for an exact point.
#[derive(Debug, Clone)]
pub struct ConnFault {
    /// Sever the connection after this many messages (inclusive range,
    /// resolved by the seeded RNG). `None` = never kill.
    pub kill_after: Option<(u64, u64)>,
    /// Which direction's messages count toward `kill_after`.
    pub count_direction: Direction,
    /// When killing, forward only this many bytes of the fatal message
    /// (a truncated frame) before severing. `None` = forward the fatal
    /// message completely, then sever.
    pub truncate_to: Option<usize>,
    /// Added latency per forwarded message, `base..=base+jitter` drawn
    /// from the seeded RNG.
    pub delay_base: Duration,
    /// Upper bound of the random extra delay added to `delay_base`.
    pub delay_jitter: Duration,
    /// After this connection is killed by a fault, refuse new
    /// connections for this long (a partition).
    pub partition_after_kill: Duration,
    /// Freeze the connection after this many counted messages
    /// (inclusive range, seed-resolved): stop forwarding bytes in both
    /// directions for [`ConnFault::stall_duration`] *without closing the
    /// socket* — the peer sees a healthy TCP connection that simply
    /// stops answering. `None` = never stall.
    pub stall_after: Option<(u64, u64)>,
    /// How long a triggered stall freezes the connection.
    pub stall_duration: Duration,
    /// Slow-consumer emulation: extra delay per server→client message
    /// (only that direction), so the client drains at roughly one
    /// message per `s2c_throttle`. Zero = no throttle.
    pub s2c_throttle: Duration,
}

impl ConnFault {
    /// A plan that forwards everything faithfully.
    pub fn transparent() -> ConnFault {
        ConnFault {
            kill_after: None,
            count_direction: Direction::Both,
            truncate_to: None,
            delay_base: Duration::ZERO,
            delay_jitter: Duration::ZERO,
            partition_after_kill: Duration::ZERO,
            stall_after: None,
            stall_duration: Duration::ZERO,
            s2c_throttle: Duration::ZERO,
        }
    }

    /// A plan that severs the connection after exactly `n` messages in
    /// `dir`.
    pub fn kill_after(n: u64, dir: Direction) -> ConnFault {
        ConnFault {
            kill_after: Some((n, n)),
            count_direction: dir,
            ..ConnFault::transparent()
        }
    }

    /// A plan that severs after a seed-resolved count in `[lo, hi]`.
    pub fn kill_between(lo: u64, hi: u64, dir: Direction) -> ConnFault {
        ConnFault {
            kill_after: Some((lo, hi)),
            count_direction: dir,
            ..ConnFault::transparent()
        }
    }

    /// Truncate the fatal frame to `bytes` bytes when the kill fires.
    pub fn truncating(mut self, bytes: usize) -> ConnFault {
        self.truncate_to = Some(bytes);
        self
    }

    /// Add `base..=base+jitter` latency to every forwarded message.
    pub fn delayed(mut self, base: Duration, jitter: Duration) -> ConnFault {
        self.delay_base = base;
        self.delay_jitter = jitter;
        self
    }

    /// Partition the link for `d` after this connection's kill fires.
    pub fn partitioning(mut self, d: Duration) -> ConnFault {
        self.partition_after_kill = d;
        self
    }

    /// Freeze the connection for `duration` after a seed-resolved count
    /// in `[lo, hi]` — bytes stop flowing but the socket stays open, so
    /// the peer's reads simply hang. This is the fault a write-deadline
    /// watchdog exists to catch: a kill is visible as EOF, a stall is
    /// not.
    pub fn stalling(mut self, lo: u64, hi: u64, duration: Duration) -> ConnFault {
        self.stall_after = Some((lo, hi));
        self.stall_duration = duration;
        self
    }

    /// Emulate a slow consumer: each server→client message is delivered
    /// only after `per_message`, so the client-side drain rate is capped
    /// while client→server traffic flows at full speed.
    pub fn slow_consumer(mut self, per_message: Duration) -> ConnFault {
        self.s2c_throttle = per_message;
        self
    }
}

/// A deterministic schedule: the plan for the nth accepted connection.
///
/// Connections beyond the scripted list use the *default* plan
/// (transparent unless overridden), so a schedule usually scripts the
/// faulty prefix of a run and lets recovery traffic through afterwards.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    framing: Framing,
    plans: Vec<ConnFault>,
    default_plan: ConnFault,
}

/// A [`ConnFault`] with its RNG-dependent choices pinned for one
/// concrete connection.
#[derive(Debug, Clone)]
pub struct ResolvedFault {
    /// Sever after exactly this many counted messages.
    pub kill_at: Option<u64>,
    /// Direction whose messages count.
    pub count_direction: Direction,
    /// Truncation length of the fatal frame.
    pub truncate_to: Option<usize>,
    /// Exact delay applied to every forwarded message.
    pub delay: Duration,
    /// Partition duration armed when the kill fires.
    pub partition_after_kill: Duration,
    /// Freeze the connection after exactly this many counted messages.
    pub stall_at: Option<u64>,
    /// Duration of the triggered freeze.
    pub stall_duration: Duration,
    /// Per-message server→client throttle (slow-consumer emulation).
    pub s2c_throttle: Duration,
}

impl FaultSchedule {
    /// A schedule with no scripted faults.
    pub fn transparent(seed: u64, framing: Framing) -> FaultSchedule {
        FaultSchedule {
            seed,
            framing,
            plans: Vec::new(),
            default_plan: ConnFault::transparent(),
        }
    }

    /// Build a schedule from explicit per-connection plans; connections
    /// past the end of `plans` are transparent.
    pub fn scripted(seed: u64, framing: Framing, plans: Vec<ConnFault>) -> FaultSchedule {
        FaultSchedule {
            seed,
            framing,
            plans,
            default_plan: ConnFault::transparent(),
        }
    }

    /// Override the plan applied to connections beyond the scripted
    /// list.
    pub fn with_default_plan(mut self, plan: ConnFault) -> FaultSchedule {
        self.default_plan = plan;
        self
    }

    /// The wire framing used for message counting.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolve the plan for accepted connection number `conn_idx`
    /// (0-based). Deterministic: the RNG is seeded from
    /// `seed ^ conn_idx`, so the same schedule yields the same faults
    /// run after run, independent of timing.
    pub fn resolve(&self, conn_idx: u64) -> ResolvedFault {
        let plan = self
            .plans
            .get(conn_idx as usize)
            .unwrap_or(&self.default_plan);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pick_in = |(lo, hi): (u64, u64)| {
            if lo >= hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            }
        };
        let kill_at = plan.kill_after.map(&mut pick_in);
        let stall_at = plan.stall_after.map(&mut pick_in);
        let jitter_us = plan.delay_jitter.as_micros() as u64;
        let delay = plan.delay_base
            + if jitter_us == 0 {
                Duration::ZERO
            } else {
                Duration::from_micros(rng.random_range(0..=jitter_us))
            };
        ResolvedFault {
            kill_at,
            count_direction: plan.count_direction,
            truncate_to: plan.truncate_to,
            delay,
            partition_after_kill: plan.partition_after_kill,
            stall_at,
            stall_duration: plan.stall_duration,
            s2c_throttle: plan.s2c_throttle,
        }
    }
}

/// The kinds of fault the chaos layer can inject.
///
/// Wire faults ([`ConnFault`]) operate on proxied connections; process
/// faults operate on the server itself. `CrashServer` is the
/// durability-layer fault: an abrupt kill of the OVSDB server task at a
/// scheduled commit index, optionally mid-WAL-write so the log is left
/// with a torn (partially persisted) final record.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// A wire-level fault on a proxied connection.
    Conn(ConnFault),
    /// Freeze a proxied connection after a seed-resolved message count:
    /// bytes stop flowing in both directions for `duration` but the
    /// socket stays open, so the peer observes a hang rather than EOF.
    /// This is the signature of a wedged device or a GC-paused peer —
    /// exactly what push-deadline watchdogs must catch, because no
    /// close event will ever arrive.
    Stall {
        /// Inclusive range of counted messages before the freeze
        /// (seed-resolved; `lo == hi` for an exact point).
        after_messages: (u64, u64),
        /// How long the connection stays frozen.
        duration: Duration,
    },
    /// Emulate a slow consumer: server→client messages are delivered at
    /// most one per `per_message` while client→server traffic flows
    /// unthrottled. Drives monitor outboxes toward their caps.
    SlowConsumer {
        /// Minimum spacing between delivered server→client messages.
        per_message: Duration,
    },
    /// Kill the server process abruptly once its commit index reaches a
    /// seed-resolved point, tearing the WAL tail.
    CrashServer {
        /// Inclusive range of commit indices; the concrete kill point is
        /// drawn from the seeded RNG. Use `lo == hi` for an exact point.
        after_commits: (u64, u64),
        /// Inclusive range of bytes to chop off the WAL's final record
        /// (seed-resolved), simulating a crash mid-write. `(0, 0)` is a
        /// clean crash — the final record fully reached disk.
        torn_tail_bytes: (u64, u64),
    },
}

/// A [`FaultKind::CrashServer`] with its RNG-dependent choices pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedCrash {
    /// Kill once the commit index reaches exactly this value.
    pub after_commits: u64,
    /// Chop exactly this many bytes off the WAL's final record (the WAL
    /// layer clamps the chop to that record, so at most the single
    /// in-flight transaction is lost).
    pub torn_tail_bytes: u64,
}

/// Salt mixed into crash-fault resolution so crash choices are drawn
/// from a different stream than wire-fault choices under the same seed.
const CRASH_SALT: u64 = 0xC7A5_11FE_DB01_4E55;

impl FaultKind {
    /// The wire-level connection plan this fault corresponds to, if it
    /// is a wire fault: `Conn` passes through, `Stall` and
    /// `SlowConsumer` map onto the equivalent [`ConnFault`] so they can
    /// be scripted into a [`FaultSchedule`]. Process faults
    /// (`CrashServer`) have no connection plan and return `None`.
    pub fn conn_plan(&self) -> Option<ConnFault> {
        match self {
            FaultKind::Conn(c) => Some(c.clone()),
            FaultKind::Stall {
                after_messages: (lo, hi),
                duration,
            } => Some(ConnFault::transparent().stalling(*lo, *hi, *duration)),
            FaultKind::SlowConsumer { per_message } => {
                Some(ConnFault::transparent().slow_consumer(*per_message))
            }
            FaultKind::CrashServer { .. } => None,
        }
    }

    /// Resolve a `CrashServer` fault for occurrence `idx` under `seed`.
    /// Deterministic: the same `(seed, idx)` pins the same commit index
    /// and the same torn-tail chop, run after run — which makes the torn
    /// WAL image itself byte-exact reproducible. Returns `None` for wire
    /// faults.
    pub fn resolve_crash(&self, seed: u64, idx: u64) -> Option<ResolvedCrash> {
        let FaultKind::CrashServer {
            after_commits,
            torn_tail_bytes,
        } = self
        else {
            return None;
        };
        let mut rng =
            StdRng::seed_from_u64(seed ^ CRASH_SALT ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pick = |rng: &mut StdRng, (lo, hi): (u64, u64)| {
            if lo >= hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            }
        };
        Some(ResolvedCrash {
            after_commits: pick(&mut rng, *after_commits),
            torn_tail_bytes: pick(&mut rng, *torn_tail_bytes),
        })
    }
}

/// Incremental splitter that turns a byte stream into complete protocol
/// messages according to a [`Framing`].
#[derive(Debug)]
pub struct Splitter {
    framing: Framing,
    buf: Vec<u8>,
}

impl Splitter {
    /// A splitter for `framing`.
    pub fn new(framing: Framing) -> Splitter {
        Splitter {
            framing,
            buf: Vec::new(),
        }
    }

    /// Feed raw bytes read from the stream.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message (including its delimiter/length
    /// header), or `None` if the buffer holds only a partial message.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        match self.framing {
            Framing::Raw => {
                if self.buf.is_empty() {
                    None
                } else {
                    Some(std::mem::take(&mut self.buf))
                }
            }
            Framing::Ndjson => {
                let pos = self.buf.iter().position(|&b| b == b'\n')?;
                let rest = self.buf.split_off(pos + 1);
                Some(std::mem::replace(&mut self.buf, rest))
            }
            Framing::LengthPrefixed => {
                if self.buf.len() < 4 {
                    return None;
                }
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if self.buf.len() < 4 + len {
                    return None;
                }
                let rest = self.buf.split_off(4 + len);
                Some(std::mem::replace(&mut self.buf, rest))
            }
        }
    }

    /// Bytes currently buffered as an incomplete message.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_deterministic() {
        let s = FaultSchedule::scripted(
            42,
            Framing::Ndjson,
            vec![ConnFault::kill_between(5, 50, Direction::ServerToClient)
                .delayed(Duration::from_micros(100), Duration::from_micros(400))],
        );
        let a = s.resolve(0);
        let b = s.resolve(0);
        assert_eq!(a.kill_at, b.kill_at);
        assert_eq!(a.delay, b.delay);
        let k = a.kill_at.unwrap();
        assert!((5..=50).contains(&k));
        // A different seed picks a different point (with overwhelming
        // probability for this range; pinned here to stay deterministic).
        let s2 = FaultSchedule::scripted(
            43,
            Framing::Ndjson,
            vec![ConnFault::kill_between(5, 50, Direction::ServerToClient)],
        );
        let _ = s2.resolve(0); // must not panic; value is seed-defined
                               // Connections beyond the script are transparent.
        assert!(s.resolve(1).kill_at.is_none());
        assert_eq!(s.resolve(1).delay, Duration::ZERO);
    }

    #[test]
    fn exact_kill_point_ignores_rng() {
        let s = FaultSchedule::scripted(
            7,
            Framing::Raw,
            vec![ConnFault::kill_after(3, Direction::Both)],
        );
        assert_eq!(s.resolve(0).kill_at, Some(3));
    }

    #[test]
    fn crash_fault_resolution_is_deterministic() {
        let f = FaultKind::CrashServer {
            after_commits: (3, 40),
            torn_tail_bytes: (1, 64),
        };
        let a = f.resolve_crash(99, 0).unwrap();
        let b = f.resolve_crash(99, 0).unwrap();
        assert_eq!(a, b);
        assert!((3..=40).contains(&a.after_commits));
        assert!((1..=64).contains(&a.torn_tail_bytes));
        // Exact points ignore the RNG.
        let exact = FaultKind::CrashServer {
            after_commits: (7, 7),
            torn_tail_bytes: (0, 0),
        };
        let r = exact.resolve_crash(1234, 5).unwrap();
        assert_eq!(r.after_commits, 7);
        assert_eq!(r.torn_tail_bytes, 0);
        // Wire faults resolve to no crash.
        assert!(FaultKind::Conn(ConnFault::transparent())
            .resolve_crash(99, 0)
            .is_none());
    }

    #[test]
    fn torn_tail_is_byte_exact_reproducible() {
        // Build a real WAL image, tear it twice with the same resolved
        // crash fault, and require byte-identical results.
        use ovsdb::wal::{tear_tail, WalRecord};
        let mut image = Vec::new();
        for i in 1..=3u64 {
            image.extend_from_slice(
                &WalRecord {
                    commit_index: i,
                    uuid_counter: i,
                    ops: serde_json::json!([{"op": "comment"}]),
                }
                .encode(),
            );
        }
        let f = FaultKind::CrashServer {
            after_commits: (1, 1),
            torn_tail_bytes: (1, 1 << 16),
        };
        let r = f.resolve_crash(4242, 0).unwrap();
        let dir = std::env::temp_dir().join(format!("nerpa-chaos-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let torn: Vec<Vec<u8>> = (0..2)
            .map(|run| {
                let path = dir.join(format!("wal-{run}.log"));
                std::fs::write(&path, &image).unwrap();
                let chopped = tear_tail(&path, r.torn_tail_bytes).unwrap();
                assert!(chopped > 0);
                std::fs::read(&path).unwrap()
            })
            .collect();
        assert_eq!(torn[0], torn[1], "torn image must be byte-exact");
        assert!(torn[0].len() < image.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stall_and_slow_consumer_resolution() {
        let s = FaultSchedule::scripted(
            77,
            Framing::Ndjson,
            vec![ConnFault::transparent()
                .stalling(2, 9, Duration::from_millis(40))
                .slow_consumer(Duration::from_millis(7))],
        );
        let a = s.resolve(0);
        let b = s.resolve(0);
        assert_eq!(a.stall_at, b.stall_at);
        assert!((2..=9).contains(&a.stall_at.unwrap()));
        assert_eq!(a.stall_duration, Duration::from_millis(40));
        assert_eq!(a.s2c_throttle, Duration::from_millis(7));
        // Unscripted connections neither stall nor throttle.
        assert!(s.resolve(1).stall_at.is_none());
        assert_eq!(s.resolve(1).s2c_throttle, Duration::ZERO);

        // FaultKind wrappers map onto equivalent wire plans.
        let k = FaultKind::Stall {
            after_messages: (3, 3),
            duration: Duration::from_secs(1),
        };
        let p = k.conn_plan().unwrap();
        assert_eq!(p.stall_after, Some((3, 3)));
        assert_eq!(p.stall_duration, Duration::from_secs(1));
        let k = FaultKind::SlowConsumer {
            per_message: Duration::from_millis(5),
        };
        assert_eq!(
            k.conn_plan().unwrap().s2c_throttle,
            Duration::from_millis(5)
        );
        assert!(FaultKind::CrashServer {
            after_commits: (1, 1),
            torn_tail_bytes: (0, 0),
        }
        .conn_plan()
        .is_none());
    }

    #[test]
    fn ndjson_splitter() {
        let mut sp = Splitter::new(Framing::Ndjson);
        sp.push(b"{\"a\":1}\n{\"b\"");
        assert_eq!(sp.next_message().unwrap(), b"{\"a\":1}\n".to_vec());
        assert_eq!(sp.next_message(), None);
        assert_eq!(sp.pending_bytes(), 4);
        sp.push(b":2}\n");
        assert_eq!(sp.next_message().unwrap(), b"{\"b\":2}\n".to_vec());
        assert_eq!(sp.next_message(), None);
    }

    #[test]
    fn length_prefixed_splitter() {
        let mut sp = Splitter::new(Framing::LengthPrefixed);
        let mut frame = 3u32.to_be_bytes().to_vec();
        frame.extend_from_slice(b"abc");
        sp.push(&frame[..5]);
        assert_eq!(sp.next_message(), None);
        sp.push(&frame[5..]);
        assert_eq!(sp.next_message().unwrap(), frame);
        // Two frames in one push split correctly.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        sp.push(&two);
        assert_eq!(sp.next_message().unwrap(), frame);
        assert_eq!(sp.next_message().unwrap(), frame);
        assert_eq!(sp.next_message(), None);
    }

    #[test]
    fn raw_splitter_counts_chunks() {
        let mut sp = Splitter::new(Framing::Raw);
        sp.push(b"xyz");
        assert_eq!(sp.next_message().unwrap(), b"xyz".to_vec());
        assert_eq!(sp.next_message(), None);
    }
}
