//! Fault schedules: scripted, seed-resolved per-connection fault plans.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Wire framing the proxy uses to count protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON (OVSDB JSON-RPC).
    Ndjson,
    /// 4-byte big-endian length prefix + body (P4 control protocol).
    LengthPrefixed,
    /// No framing: every read chunk counts as one message.
    Raw,
}

/// Which direction's messages count toward a fault trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Messages flowing client → server.
    ClientToServer,
    /// Messages flowing server → client.
    ServerToClient,
    /// Messages in either direction.
    Both,
}

/// The scripted fault plan for one proxied connection.
///
/// `kill_after` is a *range* `[lo, hi]` of message counts; the concrete
/// kill point is drawn from the schedule's seeded RNG when the
/// connection is accepted, so runs are reproducible but not tied to a
/// hand-picked constant. Use `lo == hi` for an exact point.
#[derive(Debug, Clone)]
pub struct ConnFault {
    /// Sever the connection after this many messages (inclusive range,
    /// resolved by the seeded RNG). `None` = never kill.
    pub kill_after: Option<(u64, u64)>,
    /// Which direction's messages count toward `kill_after`.
    pub count_direction: Direction,
    /// When killing, forward only this many bytes of the fatal message
    /// (a truncated frame) before severing. `None` = forward the fatal
    /// message completely, then sever.
    pub truncate_to: Option<usize>,
    /// Added latency per forwarded message, `base..=base+jitter` drawn
    /// from the seeded RNG.
    pub delay_base: Duration,
    /// Upper bound of the random extra delay added to `delay_base`.
    pub delay_jitter: Duration,
    /// After this connection is killed by a fault, refuse new
    /// connections for this long (a partition).
    pub partition_after_kill: Duration,
}

impl ConnFault {
    /// A plan that forwards everything faithfully.
    pub fn transparent() -> ConnFault {
        ConnFault {
            kill_after: None,
            count_direction: Direction::Both,
            truncate_to: None,
            delay_base: Duration::ZERO,
            delay_jitter: Duration::ZERO,
            partition_after_kill: Duration::ZERO,
        }
    }

    /// A plan that severs the connection after exactly `n` messages in
    /// `dir`.
    pub fn kill_after(n: u64, dir: Direction) -> ConnFault {
        ConnFault {
            kill_after: Some((n, n)),
            count_direction: dir,
            ..ConnFault::transparent()
        }
    }

    /// A plan that severs after a seed-resolved count in `[lo, hi]`.
    pub fn kill_between(lo: u64, hi: u64, dir: Direction) -> ConnFault {
        ConnFault {
            kill_after: Some((lo, hi)),
            count_direction: dir,
            ..ConnFault::transparent()
        }
    }

    /// Truncate the fatal frame to `bytes` bytes when the kill fires.
    pub fn truncating(mut self, bytes: usize) -> ConnFault {
        self.truncate_to = Some(bytes);
        self
    }

    /// Add `base..=base+jitter` latency to every forwarded message.
    pub fn delayed(mut self, base: Duration, jitter: Duration) -> ConnFault {
        self.delay_base = base;
        self.delay_jitter = jitter;
        self
    }

    /// Partition the link for `d` after this connection's kill fires.
    pub fn partitioning(mut self, d: Duration) -> ConnFault {
        self.partition_after_kill = d;
        self
    }
}

/// A deterministic schedule: the plan for the nth accepted connection.
///
/// Connections beyond the scripted list use the *default* plan
/// (transparent unless overridden), so a schedule usually scripts the
/// faulty prefix of a run and lets recovery traffic through afterwards.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    framing: Framing,
    plans: Vec<ConnFault>,
    default_plan: ConnFault,
}

/// A [`ConnFault`] with its RNG-dependent choices pinned for one
/// concrete connection.
#[derive(Debug, Clone)]
pub struct ResolvedFault {
    /// Sever after exactly this many counted messages.
    pub kill_at: Option<u64>,
    /// Direction whose messages count.
    pub count_direction: Direction,
    /// Truncation length of the fatal frame.
    pub truncate_to: Option<usize>,
    /// Exact delay applied to every forwarded message.
    pub delay: Duration,
    /// Partition duration armed when the kill fires.
    pub partition_after_kill: Duration,
}

impl FaultSchedule {
    /// A schedule with no scripted faults.
    pub fn transparent(seed: u64, framing: Framing) -> FaultSchedule {
        FaultSchedule {
            seed,
            framing,
            plans: Vec::new(),
            default_plan: ConnFault::transparent(),
        }
    }

    /// Build a schedule from explicit per-connection plans; connections
    /// past the end of `plans` are transparent.
    pub fn scripted(seed: u64, framing: Framing, plans: Vec<ConnFault>) -> FaultSchedule {
        FaultSchedule {
            seed,
            framing,
            plans,
            default_plan: ConnFault::transparent(),
        }
    }

    /// Override the plan applied to connections beyond the scripted
    /// list.
    pub fn with_default_plan(mut self, plan: ConnFault) -> FaultSchedule {
        self.default_plan = plan;
        self
    }

    /// The wire framing used for message counting.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolve the plan for accepted connection number `conn_idx`
    /// (0-based). Deterministic: the RNG is seeded from
    /// `seed ^ conn_idx`, so the same schedule yields the same faults
    /// run after run, independent of timing.
    pub fn resolve(&self, conn_idx: u64) -> ResolvedFault {
        let plan = self
            .plans
            .get(conn_idx as usize)
            .unwrap_or(&self.default_plan);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let kill_at = plan.kill_after.map(|(lo, hi)| {
            if lo >= hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            }
        });
        let jitter_us = plan.delay_jitter.as_micros() as u64;
        let delay = plan.delay_base
            + if jitter_us == 0 {
                Duration::ZERO
            } else {
                Duration::from_micros(rng.random_range(0..=jitter_us))
            };
        ResolvedFault {
            kill_at,
            count_direction: plan.count_direction,
            truncate_to: plan.truncate_to,
            delay,
            partition_after_kill: plan.partition_after_kill,
        }
    }
}

/// The kinds of fault the chaos layer can inject.
///
/// Wire faults ([`ConnFault`]) operate on proxied connections; process
/// faults operate on the server itself. `CrashServer` is the
/// durability-layer fault: an abrupt kill of the OVSDB server task at a
/// scheduled commit index, optionally mid-WAL-write so the log is left
/// with a torn (partially persisted) final record.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// A wire-level fault on a proxied connection.
    Conn(ConnFault),
    /// Kill the server process abruptly once its commit index reaches a
    /// seed-resolved point, tearing the WAL tail.
    CrashServer {
        /// Inclusive range of commit indices; the concrete kill point is
        /// drawn from the seeded RNG. Use `lo == hi` for an exact point.
        after_commits: (u64, u64),
        /// Inclusive range of bytes to chop off the WAL's final record
        /// (seed-resolved), simulating a crash mid-write. `(0, 0)` is a
        /// clean crash — the final record fully reached disk.
        torn_tail_bytes: (u64, u64),
    },
}

/// A [`FaultKind::CrashServer`] with its RNG-dependent choices pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedCrash {
    /// Kill once the commit index reaches exactly this value.
    pub after_commits: u64,
    /// Chop exactly this many bytes off the WAL's final record (the WAL
    /// layer clamps the chop to that record, so at most the single
    /// in-flight transaction is lost).
    pub torn_tail_bytes: u64,
}

/// Salt mixed into crash-fault resolution so crash choices are drawn
/// from a different stream than wire-fault choices under the same seed.
const CRASH_SALT: u64 = 0xC7A5_11FE_DB01_4E55;

impl FaultKind {
    /// Resolve a `CrashServer` fault for occurrence `idx` under `seed`.
    /// Deterministic: the same `(seed, idx)` pins the same commit index
    /// and the same torn-tail chop, run after run — which makes the torn
    /// WAL image itself byte-exact reproducible. Returns `None` for wire
    /// faults.
    pub fn resolve_crash(&self, seed: u64, idx: u64) -> Option<ResolvedCrash> {
        let FaultKind::CrashServer {
            after_commits,
            torn_tail_bytes,
        } = self
        else {
            return None;
        };
        let mut rng =
            StdRng::seed_from_u64(seed ^ CRASH_SALT ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pick = |rng: &mut StdRng, (lo, hi): (u64, u64)| {
            if lo >= hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            }
        };
        Some(ResolvedCrash {
            after_commits: pick(&mut rng, *after_commits),
            torn_tail_bytes: pick(&mut rng, *torn_tail_bytes),
        })
    }
}

/// Incremental splitter that turns a byte stream into complete protocol
/// messages according to a [`Framing`].
#[derive(Debug)]
pub struct Splitter {
    framing: Framing,
    buf: Vec<u8>,
}

impl Splitter {
    /// A splitter for `framing`.
    pub fn new(framing: Framing) -> Splitter {
        Splitter {
            framing,
            buf: Vec::new(),
        }
    }

    /// Feed raw bytes read from the stream.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete message (including its delimiter/length
    /// header), or `None` if the buffer holds only a partial message.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        match self.framing {
            Framing::Raw => {
                if self.buf.is_empty() {
                    None
                } else {
                    Some(std::mem::take(&mut self.buf))
                }
            }
            Framing::Ndjson => {
                let pos = self.buf.iter().position(|&b| b == b'\n')?;
                let rest = self.buf.split_off(pos + 1);
                Some(std::mem::replace(&mut self.buf, rest))
            }
            Framing::LengthPrefixed => {
                if self.buf.len() < 4 {
                    return None;
                }
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if self.buf.len() < 4 + len {
                    return None;
                }
                let rest = self.buf.split_off(4 + len);
                Some(std::mem::replace(&mut self.buf, rest))
            }
        }
    }

    /// Bytes currently buffered as an incomplete message.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_deterministic() {
        let s = FaultSchedule::scripted(
            42,
            Framing::Ndjson,
            vec![ConnFault::kill_between(5, 50, Direction::ServerToClient)
                .delayed(Duration::from_micros(100), Duration::from_micros(400))],
        );
        let a = s.resolve(0);
        let b = s.resolve(0);
        assert_eq!(a.kill_at, b.kill_at);
        assert_eq!(a.delay, b.delay);
        let k = a.kill_at.unwrap();
        assert!((5..=50).contains(&k));
        // A different seed picks a different point (with overwhelming
        // probability for this range; pinned here to stay deterministic).
        let s2 = FaultSchedule::scripted(
            43,
            Framing::Ndjson,
            vec![ConnFault::kill_between(5, 50, Direction::ServerToClient)],
        );
        let _ = s2.resolve(0); // must not panic; value is seed-defined
                               // Connections beyond the script are transparent.
        assert!(s.resolve(1).kill_at.is_none());
        assert_eq!(s.resolve(1).delay, Duration::ZERO);
    }

    #[test]
    fn exact_kill_point_ignores_rng() {
        let s = FaultSchedule::scripted(
            7,
            Framing::Raw,
            vec![ConnFault::kill_after(3, Direction::Both)],
        );
        assert_eq!(s.resolve(0).kill_at, Some(3));
    }

    #[test]
    fn crash_fault_resolution_is_deterministic() {
        let f = FaultKind::CrashServer {
            after_commits: (3, 40),
            torn_tail_bytes: (1, 64),
        };
        let a = f.resolve_crash(99, 0).unwrap();
        let b = f.resolve_crash(99, 0).unwrap();
        assert_eq!(a, b);
        assert!((3..=40).contains(&a.after_commits));
        assert!((1..=64).contains(&a.torn_tail_bytes));
        // Exact points ignore the RNG.
        let exact = FaultKind::CrashServer {
            after_commits: (7, 7),
            torn_tail_bytes: (0, 0),
        };
        let r = exact.resolve_crash(1234, 5).unwrap();
        assert_eq!(r.after_commits, 7);
        assert_eq!(r.torn_tail_bytes, 0);
        // Wire faults resolve to no crash.
        assert!(FaultKind::Conn(ConnFault::transparent())
            .resolve_crash(99, 0)
            .is_none());
    }

    #[test]
    fn torn_tail_is_byte_exact_reproducible() {
        // Build a real WAL image, tear it twice with the same resolved
        // crash fault, and require byte-identical results.
        use ovsdb::wal::{tear_tail, WalRecord};
        let mut image = Vec::new();
        for i in 1..=3u64 {
            image.extend_from_slice(
                &WalRecord {
                    commit_index: i,
                    uuid_counter: i,
                    ops: serde_json::json!([{"op": "comment"}]),
                }
                .encode(),
            );
        }
        let f = FaultKind::CrashServer {
            after_commits: (1, 1),
            torn_tail_bytes: (1, 1 << 16),
        };
        let r = f.resolve_crash(4242, 0).unwrap();
        let dir = std::env::temp_dir().join(format!("nerpa-chaos-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let torn: Vec<Vec<u8>> = (0..2)
            .map(|run| {
                let path = dir.join(format!("wal-{run}.log"));
                std::fs::write(&path, &image).unwrap();
                let chopped = tear_tail(&path, r.torn_tail_bytes).unwrap();
                assert!(chopped > 0);
                std::fs::read(&path).unwrap()
            })
            .collect();
        assert_eq!(torn[0], torn[1], "torn image must be byte-exact");
        assert!(torn[0].len() < image.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ndjson_splitter() {
        let mut sp = Splitter::new(Framing::Ndjson);
        sp.push(b"{\"a\":1}\n{\"b\"");
        assert_eq!(sp.next_message().unwrap(), b"{\"a\":1}\n".to_vec());
        assert_eq!(sp.next_message(), None);
        assert_eq!(sp.pending_bytes(), 4);
        sp.push(b":2}\n");
        assert_eq!(sp.next_message().unwrap(), b"{\"b\":2}\n".to_vec());
        assert_eq!(sp.next_message(), None);
    }

    #[test]
    fn length_prefixed_splitter() {
        let mut sp = Splitter::new(Framing::LengthPrefixed);
        let mut frame = 3u32.to_be_bytes().to_vec();
        frame.extend_from_slice(b"abc");
        sp.push(&frame[..5]);
        assert_eq!(sp.next_message(), None);
        sp.push(&frame[5..]);
        assert_eq!(sp.next_message().unwrap(), frame);
        // Two frames in one push split correctly.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        sp.push(&two);
        assert_eq!(sp.next_message().unwrap(), frame);
        assert_eq!(sp.next_message().unwrap(), frame);
        assert_eq!(sp.next_message(), None);
    }

    #[test]
    fn raw_splitter_counts_chunks() {
        let mut sp = Splitter::new(Framing::Raw);
        sp.push(b"xyz");
        assert_eq!(sp.next_message().unwrap(), b"xyz".to_vec());
        assert_eq!(sp.next_message(), None);
    }
}
