//! The fault-injecting TCP proxy.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::schedule::{Direction, FaultSchedule, ResolvedFault, Splitter};

/// Counters exposed by a running proxy.
#[derive(Debug, Clone, Default)]
pub struct ProxyStats {
    /// Connections accepted (including refused-by-partition ones).
    pub connections: u64,
    /// Connections refused while the link was partitioned.
    pub refused: u64,
    /// Messages forwarded client → server.
    pub forwarded_c2s: u64,
    /// Messages forwarded server → client.
    pub forwarded_s2c: u64,
    /// Connections severed by a scripted kill.
    pub kills: u64,
    /// Fatal frames that were forwarded truncated.
    pub truncations: u64,
    /// Scripted stalls that fired (connection frozen without closing).
    pub stalls: u64,
}

struct ProxyState {
    schedule: FaultSchedule,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    stats: Mutex<ProxyStats>,
    partition_until: Mutex<Option<Instant>>,
    conns: Mutex<HashMap<u64, (TcpStream, TcpStream)>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ProxyState {
    fn partitioned(&self) -> bool {
        matches!(*lock(&self.partition_until), Some(t) if Instant::now() < t)
    }

    fn arm_partition(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let until = Instant::now() + d;
        let mut g = lock(&self.partition_until);
        match *g {
            Some(t) if t >= until => {}
            _ => *g = Some(until),
        }
    }
}

/// A deterministic fault-injecting TCP proxy.
///
/// Accepts connections on an ephemeral local port and forwards each to
/// the upstream address, executing the [`FaultSchedule`] plan resolved
/// for that connection. Faults can also be fired manually
/// ([`FaultProxy::sever_all`], [`FaultProxy::partition_for`]) for tests
/// that want imperative control.
pub struct FaultProxy {
    addr: SocketAddr,
    upstream: SocketAddr,
    state: Arc<ProxyState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy in front of `upstream` executing `schedule`.
    pub fn start(
        upstream: impl ToSocketAddrs,
        schedule: FaultSchedule,
    ) -> std::io::Result<FaultProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            schedule,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            stats: Mutex::new(ProxyStats::default()),
            partition_until: Mutex::new(None),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_state = state.clone();
        let accept_thread = std::thread::spawn(move || loop {
            if accept_state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((client, _)) => {
                    let conn_id = accept_state.next_conn.fetch_add(1, Ordering::Relaxed);
                    lock(&accept_state.stats).connections += 1;
                    if accept_state.partitioned() {
                        lock(&accept_state.stats).refused += 1;
                        telemetry::record_event_note(
                            telemetry::Plane::Chaos,
                            "chaos.fault",
                            0,
                            &[("conn", conn_id)],
                            "partition-refused",
                        );
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let server = match TcpStream::connect(upstream) {
                        Ok(s) => s,
                        Err(_) => {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    spawn_pumps(accept_state.clone(), conn_id, client, server);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
        Ok(FaultProxy {
            addr,
            upstream,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (point clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The upstream address the proxy forwards to.
    pub fn upstream_addr(&self) -> SocketAddr {
        self.upstream
    }

    /// A snapshot of the proxy counters.
    pub fn stats(&self) -> ProxyStats {
        lock(&self.state.stats).clone()
    }

    /// Imperatively sever every active proxied connection.
    pub fn sever_all(&self) {
        let conns = lock(&self.state.conns);
        for (client, server) in conns.values() {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
        }
    }

    /// Imperatively partition the link: new connections are refused
    /// until `d` elapses. Active connections are also severed.
    pub fn partition_for(&self, d: Duration) {
        telemetry::record_event_note(
            telemetry::Plane::Chaos,
            "chaos.fault",
            0,
            &[("duration_ms", d.as_millis() as u64)],
            "partition",
        );
        self.state.arm_partition(d);
        self.sever_all();
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.state.partitioned()
    }

    /// Number of currently active proxied connections.
    pub fn active_connections(&self) -> usize {
        lock(&self.state.conns).len()
    }

    /// Stop the proxy: no new connections, all active ones severed.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.sever_all();
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection shared fault state: one message counter shared by the
/// two pump threads so `Direction::Both` counting is globally ordered,
/// plus the armed-stall deadline both pumps honor so a triggered stall
/// freezes the connection in *both* directions.
struct ConnShared {
    counted: AtomicU64,
    stall_fired: AtomicBool,
    stall_until: Mutex<Option<Instant>>,
    throttle_noted: AtomicBool,
}

fn spawn_pumps(state: Arc<ProxyState>, conn_id: u64, client: TcpStream, server: TcpStream) {
    let fault = state.schedule.resolve(conn_id);
    let shared = Arc::new(ConnShared {
        counted: AtomicU64::new(0),
        stall_fired: AtomicBool::new(false),
        stall_until: Mutex::new(None),
        throttle_noted: AtomicBool::new(false),
    });

    let clones = (
        client.try_clone(),
        server.try_clone(),
        server.try_clone(),
        client.try_clone(),
    );
    let (c_read, s_write, s_read, c_write) = match clones {
        (Ok(cr), Ok(sw), Ok(sr), Ok(cw)) => (cr, sw, sr, cw),
        _ => {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        }
    };
    lock(&state.conns).insert(conn_id, (client, server));

    let counted_c2s = matches!(
        fault.count_direction,
        Direction::ClientToServer | Direction::Both
    );
    let counted_s2c = matches!(
        fault.count_direction,
        Direction::ServerToClient | Direction::Both
    );

    let st = state.clone();
    let f = fault.clone();
    let sh = shared.clone();
    std::thread::spawn(move || {
        pump(
            st,
            conn_id,
            c_read,
            s_write,
            /*to_server=*/ true,
            f,
            sh,
            counted_c2s,
        );
    });
    std::thread::spawn(move || {
        pump(
            state,
            conn_id,
            s_read,
            c_write,
            /*to_server=*/ false,
            fault,
            shared,
            counted_s2c,
        );
    });
}

/// Forward messages from `src` to `dst` until EOF, error, or a scripted
/// kill. `to_server` selects which forwarding counter to bump.
#[allow(clippy::too_many_arguments)]
fn pump(
    state: Arc<ProxyState>,
    conn_id: u64,
    mut src: TcpStream,
    mut dst: TcpStream,
    to_server: bool,
    fault: ResolvedFault,
    shared: Arc<ConnShared>,
    counted: bool,
) {
    let mut splitter = Splitter::new(state.schedule.framing());
    let mut buf = [0u8; 16 * 1024];
    'outer: loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        splitter.push(&buf[..n]);
        while let Some(msg) = splitter.next_message() {
            if !fault.delay.is_zero() {
                std::thread::sleep(fault.delay);
            }
            // Slow-consumer emulation: cap the server→client drain rate
            // while leaving the client→server direction untouched.
            if !to_server && !fault.s2c_throttle.is_zero() {
                if !shared.throttle_noted.swap(true, Ordering::SeqCst) {
                    telemetry::record_event_note(
                        telemetry::Plane::Chaos,
                        "chaos.fault",
                        0,
                        &[
                            ("conn", conn_id),
                            ("per_message_us", fault.s2c_throttle.as_micros() as u64),
                        ],
                        "slow-consumer",
                    );
                }
                std::thread::sleep(fault.s2c_throttle);
            }
            let fatal = if counted {
                let seq = shared.counted.fetch_add(1, Ordering::SeqCst) + 1;
                if fault.stall_at == Some(seq) && !shared.stall_fired.swap(true, Ordering::SeqCst) {
                    *lock(&shared.stall_until) = Some(Instant::now() + fault.stall_duration);
                    lock(&state.stats).stalls += 1;
                    telemetry::record_event_note(
                        telemetry::Plane::Chaos,
                        "chaos.fault",
                        0,
                        &[
                            ("conn", conn_id),
                            ("duration_ms", fault.stall_duration.as_millis() as u64),
                        ],
                        "stall",
                    );
                }
                match fault.kill_at {
                    Some(k) if seq > k => break 'outer, // past the kill point
                    Some(k) => seq == k,
                    None => false,
                }
            } else {
                false
            };
            // Honor an armed stall: hold this message (and, via the
            // shared deadline, the opposite pump's next message) until
            // the freeze elapses. The socket stays open throughout —
            // the peer sees a hang, never an EOF.
            let stall_deadline = *lock(&shared.stall_until);
            if let Some(t) = stall_deadline {
                std::thread::sleep(t.saturating_duration_since(Instant::now()));
            }
            let payload: &[u8] = if fatal {
                match fault.truncate_to {
                    Some(t) if t < msg.len() => {
                        lock(&state.stats).truncations += 1;
                        telemetry::record_event_note(
                            telemetry::Plane::Chaos,
                            "chaos.fault",
                            0,
                            &[("conn", conn_id), ("bytes", t as u64)],
                            "truncate",
                        );
                        &msg[..t]
                    }
                    _ => &msg,
                }
            } else {
                &msg
            };
            if dst.write_all(payload).and_then(|_| dst.flush()).is_err() {
                break 'outer;
            }
            {
                let mut stats = lock(&state.stats);
                if to_server {
                    stats.forwarded_c2s += 1;
                } else {
                    stats.forwarded_s2c += 1;
                }
            }
            if fatal {
                lock(&state.stats).kills += 1;
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[
                        ("conn", conn_id),
                        ("to_server", to_server as u64),
                        (
                            "partition_ms",
                            fault.partition_after_kill.as_millis() as u64,
                        ),
                    ],
                    "kill",
                );
                state.arm_partition(fault.partition_after_kill);
                break 'outer;
            }
        }
    }
    // Tear down both halves so each peer observes the close, and drop
    // the registry entry (first pump thread to exit wins).
    if let Some((client, server)) = lock(&state.conns).remove(&conn_id) {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ConnFault, Framing};
    use std::io::{BufRead, BufReader};

    /// A line-based echo server: replies `ack:<line>` to every line.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections so the thread ends.
            for _ in 0..16 {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut w = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {
                                let reply = format!("ack:{line}");
                                if w.write_all(reply.as_bytes()).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, i: usize) -> bool {
        if stream.write_all(format!("m{i}\n").as_bytes()).is_err() {
            return false;
        }
        let mut reply = String::new();
        matches!(reader.read_line(&mut reply), Ok(n) if n > 0)
    }

    #[test]
    fn transparent_proxy_forwards() {
        let (upstream, _h) = echo_server();
        let proxy =
            FaultProxy::start(upstream, FaultSchedule::transparent(1, Framing::Ndjson)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        for i in 0..5 {
            assert!(request(&mut c, &mut r, i), "request {i} failed");
        }
        // The c2s counter is bumped after the forwarding write, so the
        // final reply can round-trip before the pump thread records it;
        // poll briefly instead of snapshotting immediately.
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut stats = proxy.stats();
        while (stats.forwarded_c2s, stats.forwarded_s2c) != (5, 5) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            stats = proxy.stats();
        }
        assert_eq!(stats.forwarded_c2s, 5);
        assert_eq!(stats.forwarded_s2c, 5);
        assert_eq!(stats.kills, 0);
    }

    #[test]
    fn scripted_kill_after_n_replies() {
        let (upstream, _h) = echo_server();
        let schedule = FaultSchedule::scripted(
            9,
            Framing::Ndjson,
            vec![ConnFault::kill_after(3, Direction::ServerToClient)],
        );
        let proxy = FaultProxy::start(upstream, schedule).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        // Exactly 3 round trips succeed; the link dies with the third
        // reply delivered.
        let mut ok = 0;
        for i in 0..6 {
            if request(&mut c, &mut r, i) {
                ok += 1;
            } else {
                break;
            }
        }
        assert_eq!(ok, 3, "stats: {:?}", proxy.stats());
        assert_eq!(proxy.stats().kills, 1);

        // The next connection is transparent: recovery traffic flows.
        let mut c2 = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r2 = BufReader::new(c2.try_clone().unwrap());
        assert!(request(&mut c2, &mut r2, 99));
    }

    #[test]
    fn seeded_kill_point_is_reproducible() {
        let run = |seed: u64| -> usize {
            let (upstream, _h) = echo_server();
            let schedule = FaultSchedule::scripted(
                seed,
                Framing::Ndjson,
                vec![ConnFault::kill_between(2, 6, Direction::ServerToClient)],
            );
            let proxy = FaultProxy::start(upstream, schedule).unwrap();
            let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
            let mut r = BufReader::new(c.try_clone().unwrap());
            let mut ok = 0;
            for i in 0..10 {
                if request(&mut c, &mut r, i) {
                    ok += 1;
                } else {
                    break;
                }
            }
            ok
        };
        let a = run(1234);
        let b = run(1234);
        assert_eq!(a, b, "same seed must kill at the same message");
        assert!((2..=6).contains(&(a as u64)));
    }

    #[test]
    fn partition_refuses_reconnects_then_heals() {
        let (upstream, _h) = echo_server();
        let schedule = FaultSchedule::scripted(
            5,
            Framing::Ndjson,
            vec![ConnFault::kill_after(1, Direction::ServerToClient)
                .partitioning(Duration::from_millis(250))],
        );
        let proxy = FaultProxy::start(upstream, schedule).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        assert!(request(&mut c, &mut r, 0));
        assert!(
            !request(&mut c, &mut r, 1),
            "link must die after the first reply"
        );
        assert!(proxy.is_partitioned());

        // During the partition a fresh connection is cut immediately.
        let mut c2 = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r2 = BufReader::new(c2.try_clone().unwrap());
        assert!(!request(&mut c2, &mut r2, 2));

        // After it heals, traffic flows again.
        std::thread::sleep(Duration::from_millis(300));
        assert!(!proxy.is_partitioned());
        let mut c3 = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r3 = BufReader::new(c3.try_clone().unwrap());
        assert!(request(&mut c3, &mut r3, 3));
        assert!(proxy.stats().refused >= 1);
    }

    #[test]
    fn truncated_fatal_frame() {
        let (upstream, _h) = echo_server();
        // Kill on the first client→server message, forwarding only 2 of
        // its bytes: the server sees a torn frame, the client sees EOF.
        let schedule = FaultSchedule::scripted(
            11,
            Framing::Ndjson,
            vec![ConnFault::kill_after(1, Direction::ClientToServer).truncating(2)],
        );
        let proxy = FaultProxy::start(upstream, schedule).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        assert!(!request(&mut c, &mut r, 0));
        assert_eq!(proxy.stats().truncations, 1);
        assert_eq!(proxy.stats().kills, 1);
    }

    #[test]
    fn stall_freezes_without_closing() {
        let (upstream, _h) = echo_server();
        // Counting both directions: m0 (1), ack0 (2), m1 (3) — the
        // stall fires while forwarding the second request, freezing the
        // link for 300ms without closing it.
        let schedule = FaultSchedule::scripted(
            3,
            Framing::Ndjson,
            vec![ConnFault::transparent().stalling(3, 3, Duration::from_millis(300))],
        );
        let proxy = FaultProxy::start(upstream, schedule).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        assert!(request(&mut c, &mut r, 0));
        let t0 = Instant::now();
        assert!(request(&mut c, &mut r, 1), "link must survive the stall");
        assert!(
            t0.elapsed() >= Duration::from_millis(250),
            "stalled request returned too fast: {:?}",
            t0.elapsed()
        );
        // After the freeze the connection keeps working — no kill.
        assert!(request(&mut c, &mut r, 2));
        assert_eq!(proxy.stats().stalls, 1);
        assert_eq!(proxy.stats().kills, 0);
    }

    #[test]
    fn slow_consumer_throttles_replies() {
        let (upstream, _h) = echo_server();
        let schedule = FaultSchedule::scripted(
            4,
            Framing::Ndjson,
            vec![ConnFault::transparent().slow_consumer(Duration::from_millis(100))],
        );
        let proxy = FaultProxy::start(upstream, schedule).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        let t0 = Instant::now();
        for i in 0..3 {
            assert!(request(&mut c, &mut r, i));
        }
        // Each reply pays the 100ms throttle; requests flow untouched.
        assert!(
            t0.elapsed() >= Duration::from_millis(300),
            "replies were not throttled: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn sever_all_cuts_active_connections() {
        let (upstream, _h) = echo_server();
        let proxy =
            FaultProxy::start(upstream, FaultSchedule::transparent(0, Framing::Ndjson)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut r = BufReader::new(c.try_clone().unwrap());
        assert!(request(&mut c, &mut r, 0));
        assert_eq!(proxy.active_connections(), 1);
        proxy.sever_all();
        assert!(!request(&mut c, &mut r, 1));
    }
}
