//! Deterministic fault injection for the Nerpa stack.
//!
//! The central piece is [`FaultProxy`], a TCP proxy that sits between the
//! controller and its peers (the OVSDB server, the P4 switch control
//! services) and executes a scripted [`FaultSchedule`]: drop a connection
//! after N messages, delay each message, truncate the final frame of a
//! connection mid-byte, or partition the link (refuse reconnects) for a
//! duration after a kill. Because the schedule is resolved through
//! `StdRng::seed_from_u64`, every chaos run is reproducible: the same
//! seed yields the same kill points and the same delays.
//!
//! The proxy understands both wire framings used in the stack —
//! newline-delimited JSON (OVSDB's JSON-RPC) and 4-byte length-prefixed
//! JSON (the P4Runtime-style control protocol) — so "messages" are
//! protocol messages, not TCP segments, and fault points are exact.

#![warn(missing_docs)]

pub mod proxy;
pub mod schedule;

pub use proxy::{FaultProxy, ProxyStats};
pub use schedule::{
    ConnFault, Direction, FaultKind, FaultSchedule, Framing, ResolvedCrash, ResolvedFault,
};
