//! Failure recovery: reconnect with backoff, and delta-only state
//! resynchronization.
//!
//! The paper's core claim is incrementality: a management-plane change
//! costs work proportional to the change, not to the database. This
//! module extends that claim across failures. After an OVSDB link drop,
//! the controller does **not** rebuild the engine from scratch: it takes
//! the fresh `monitor` snapshot, diffs it against the engine's current
//! input relations, and commits only the delta — so a reconnect costs
//! O(missed changes), not O(database). Likewise a restarted switch is
//! reconciled by reading back its actual table state and pushing only
//! the difference from the desired state derived from the engine's
//! output relations.

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use crossbeam_channel::Receiver;
use ddlog::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::Value as Json;

use crate::controller::Controller;
use crate::convert;

// ------------------------------------------------------------ reports

/// What a snapshot resync committed: the delta between the engine's
/// input relations and the fresh monitor snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResyncReport {
    /// Rows present in the fresh snapshot.
    pub snapshot_rows: usize,
    /// Rows inserted by the resync transaction (missed additions).
    pub inserts: usize,
    /// Rows deleted by the resync transaction (missed removals).
    pub deletes: usize,
    /// Tables diffed.
    pub tables: usize,
}

impl ResyncReport {
    /// Total operations in the resync transaction. The incrementality
    /// invariant: this is proportional to the changes missed while
    /// disconnected, not to `snapshot_rows`.
    pub fn delta_ops(&self) -> usize {
        self.inserts + self.deletes
    }
}

/// What a switch reconciliation pushed: the delta between the desired
/// table state (engine output relations) and the switch's actual state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Entries the switch was missing (re-pushed).
    pub inserted: usize,
    /// Entries the switch had but should not (retracted).
    pub deleted: usize,
    /// Entries already correct (left untouched).
    pub unchanged: usize,
    /// Multicast groups re-pushed.
    pub mcast_groups: usize,
}

impl ReconcileReport {
    /// Total updates written to the switch.
    pub fn delta_ops(&self) -> usize {
        self.inserted + self.deleted
    }
}

// ------------------------------------------------------- snapshot diff

/// Parse a monitor initial-state snapshot into per-relation row
/// multisets, using the same conversion path as live monitor updates.
pub fn snapshot_rows(
    initial: &Json,
    schema: &ovsdb::Schema,
    rel_types: &dyn Fn(&str) -> Option<Vec<ddlog::Type>>,
) -> Result<BTreeMap<String, Vec<Vec<Value>>>, String> {
    let ops = convert::monitor_update_to_ops(initial, schema, rel_types)?;
    let mut out: BTreeMap<String, Vec<Vec<Value>>> = BTreeMap::new();
    for (rel, row, is_insert) in ops {
        if !is_insert {
            // An initial snapshot only carries inserts; tolerate other
            // shapes by ignoring retractions.
            continue;
        }
        out.entry(rel).or_default().push(row);
    }
    Ok(out)
}

/// Multiset difference between the engine's current rows and the target
/// snapshot rows: `(inserts, deletes)` to turn `current` into `target`.
pub fn diff_rows(
    current: &[Vec<Value>],
    target: &[Vec<Value>],
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut counts: BTreeMap<&[Value], i64> = BTreeMap::new();
    for row in target {
        *counts.entry(row.as_slice()).or_default() += 1;
    }
    for row in current {
        *counts.entry(row.as_slice()).or_default() -= 1;
    }
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for (row, n) in counts {
        for _ in 0..n.max(0) {
            inserts.push(row.to_vec());
        }
        for _ in 0..(-n).max(0) {
            deletes.push(row.to_vec());
        }
    }
    (inserts, deletes)
}

// ------------------------------------------------------------- backoff

/// Exponential backoff with deterministic, seeded jitter.
///
/// Jitter is drawn from `StdRng::seed_from_u64(seed)`, so a chaos run
/// retries at exactly the same instants every time it is replayed.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// Delay before the second attempt (the first is immediate).
    pub base: Duration,
    /// Ceiling on any single delay.
    pub max: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Total connection attempts before giving up.
    pub max_attempts: u32,
    /// Jitter as a fraction of the delay (`0.2` = ±20%).
    pub jitter: f64,
    /// RNG seed for the jitter sequence.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(5),
            multiplier: 2.0,
            max_attempts: 10,
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay sequence: one entry per retry (the initial attempt is
    /// not delayed). Deterministic for a given policy, and lazy — a
    /// policy with a huge retry budget costs nothing up front.
    pub fn delays(&self) -> impl Iterator<Item = Duration> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (max, multiplier, jitter) = (self.max.as_secs_f64(), self.multiplier, self.jitter);
        let mut delay = self.base.as_secs_f64();
        (1..self.max_attempts).map(move |_| {
            let capped = delay.min(max);
            let jittered = if jitter > 0.0 {
                let f: f64 = rng.random_range(-jitter..=jitter);
                (capped * (1.0 + f)).max(0.0)
            } else {
                capped
            };
            delay *= multiplier;
            Duration::from_secs_f64(jittered)
        })
    }
}

// ---------------------------------------------------------- supervisor

/// The monitor subscription a supervisor re-issues on every reconnect.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Database name.
    pub db: String,
    /// Monitor id echoed in updates.
    pub mon_id: Json,
    /// The `monitor` requests object (table → columns spec).
    pub requests: Json,
}

impl MonitorConfig {
    /// Monitor all columns of `tables` in database `db`.
    pub fn all_columns(db: &str, tables: &[&str]) -> MonitorConfig {
        let mut requests = serde_json::Map::new();
        for t in tables {
            requests.insert((*t).to_string(), Json::Object(serde_json::Map::new()));
        }
        MonitorConfig {
            db: db.to_string(),
            mon_id: Json::String("nerpa-supervisor".to_string()),
            requests: Json::Object(requests),
        }
    }

    /// The monitored table names (the tables a resync must diff, even
    /// when absent from a snapshot because they became empty).
    pub fn tables(&self) -> Vec<String> {
        self.requests
            .as_object()
            .map(|o| o.keys().cloned().collect())
            .unwrap_or_default()
    }
}

struct SupervisorMetrics {
    attempts: telemetry::Counter,
    connects: telemetry::Counter,
    backoff_us: telemetry::Histogram,
    resync_delta_ops: telemetry::Histogram,
    epoch_resets: telemetry::Counter,
}

fn supervisor_metrics() -> &'static SupervisorMetrics {
    static M: std::sync::OnceLock<SupervisorMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = &telemetry::global().registry;
        SupervisorMetrics {
            attempts: reg.counter(
                "resync_connect_attempts_total",
                "OVSDB connection attempts by supervisors (including failures)",
            ),
            connects: reg.counter(
                "resync_connects_total",
                "Successful OVSDB (re)connections by supervisors",
            ),
            backoff_us: reg.histogram(
                "resync_backoff_delay_us",
                "Backoff delays slept before reconnection attempts (us)",
                &telemetry::LATENCY_BOUNDS_US,
            ),
            resync_delta_ops: reg.histogram(
                "resync_delta_ops",
                "Operations per snapshot resync (the incrementality invariant)",
                &telemetry::SIZE_BOUNDS,
            ),
            epoch_resets: reg.counter(
                "resync_epoch_resets_total",
                "Server restarts detected via a lower commit index (full resync forced)",
            ),
        }
    })
}

/// Counters describing a supervisor's recovery history.
#[derive(Debug, Clone, Default)]
pub struct SupervisorStats {
    /// Successful (re)connections, including the first.
    pub connects: u64,
    /// Individual connection attempts, including failures.
    pub attempts: u64,
    /// Resyncs committed (one per successful connect).
    pub resyncs: u64,
    /// The most recent resync's delta report.
    pub last_resync: Option<ResyncReport>,
    /// Server epoch resets detected: reconnects where the server
    /// reported a *lower* commit index than the previous session — a
    /// restart that lost (some) state, so monitor continuity cannot be
    /// assumed and a full resync is mandatory.
    pub epoch_resets: u64,
    /// The server's commit index observed at the last successful
    /// connect.
    pub last_commit_index: Option<u64>,
}

/// Supervises the controller's OVSDB link: connects with exponential
/// backoff + seeded jitter, re-issues the monitor call, and resyncs the
/// engine against the fresh snapshot with a delta-only transaction.
pub struct OvsdbSupervisor {
    addr: SocketAddr,
    config: MonitorConfig,
    policy: BackoffPolicy,
    /// Recovery counters (readable between calls).
    pub stats: SupervisorStats,
}

impl OvsdbSupervisor {
    /// A supervisor for the OVSDB server at `addr`.
    pub fn new(
        addr: impl ToSocketAddrs,
        config: MonitorConfig,
        policy: BackoffPolicy,
    ) -> std::io::Result<OvsdbSupervisor> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        Ok(OvsdbSupervisor {
            addr,
            config,
            policy,
            stats: SupervisorStats::default(),
        })
    }

    /// The monitor configuration re-issued on every connect.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Connect (retrying per the backoff policy), issue the monitor
    /// call, and resync `controller` against the returned snapshot.
    ///
    /// Returns the live client, the update channel, and the resync
    /// delta. The resync preserves incrementality across the failure:
    /// only rows that changed while disconnected are committed, and the
    /// resulting engine delta flows to the switches like any other
    /// transaction.
    pub fn connect_and_sync(
        &mut self,
        controller: &mut Controller,
    ) -> Result<(ovsdb::Client, Receiver<Json>, ResyncReport), String> {
        let mut last_err = String::from("no attempts made");
        let mut delays = std::iter::once(Duration::ZERO).chain(self.policy.delays());
        let monitored = self.config.tables();
        loop {
            let Some(delay) = delays.next() else {
                return Err(format!(
                    "gave up after {} attempts: {last_err}",
                    self.policy.max_attempts
                ));
            };
            if !delay.is_zero() {
                supervisor_metrics().backoff_us.record_duration(delay);
                telemetry::record_event(
                    telemetry::Plane::Stack,
                    "resync.backoff",
                    0,
                    &[
                        ("attempt", self.stats.attempts),
                        ("delay_ms", delay.as_millis() as u64),
                    ],
                );
                telemetry::global()
                    .health
                    .set("ovsdb", format!("reconnecting(backoff {delay:?})"));
                std::thread::sleep(delay);
            }
            self.stats.attempts += 1;
            supervisor_metrics().attempts.inc();
            let client = match ovsdb::Client::connect(self.addr) {
                Ok(c) => c,
                Err(e) => {
                    last_err = e.to_string();
                    telemetry::log_warn!("resync", "connect to {} failed: {last_err}", self.addr);
                    continue;
                }
            };
            // Epoch check: a restarted server that lost state reports a
            // *lower* commit index than its predecessor. Monitor streams
            // carry no cross-restart continuity, so a lower index means
            // the snapshot we are about to diff may silently rewind rows
            // — record the reset explicitly and force the full-diff
            // resync path (never a continuity shortcut).
            let commit_index = match client.commit_index() {
                Ok(i) => i,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            let epoch_reset = self
                .stats
                .last_commit_index
                .is_some_and(|prev| commit_index < prev);
            if epoch_reset {
                self.stats.epoch_resets += 1;
                supervisor_metrics().epoch_resets.inc();
                telemetry::log_warn!(
                    "resync",
                    "server epoch reset: commit index went {} -> {commit_index}; forcing full resync",
                    self.stats.last_commit_index.unwrap_or(0)
                );
            }
            let (initial, updates) = match client.monitor(
                &self.config.db,
                self.config.mon_id.clone(),
                self.config.requests.clone(),
            ) {
                Ok(r) => r,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            let report = controller.resync_from_snapshot(&initial, &monitored)?;
            self.stats.last_commit_index = Some(commit_index);
            self.stats.connects += 1;
            self.stats.resyncs += 1;
            self.stats.last_resync = Some(report.clone());
            let m = supervisor_metrics();
            m.connects.inc();
            m.resync_delta_ops.record(report.delta_ops() as u64);
            telemetry::record_event(
                telemetry::Plane::Stack,
                "resync.reconnect",
                0,
                &[
                    ("attempts", self.stats.attempts),
                    ("delta_ops", report.delta_ops() as u64),
                    ("epoch_reset", epoch_reset as u64),
                ],
            );
            telemetry::global().health.set("ovsdb", "connected");
            telemetry::log_info!(
                "resync",
                "connected to {} after {} attempts; resync delta {} ops",
                self.addr,
                self.stats.attempts,
                report.delta_ops()
            );
            return Ok((client, updates, report));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: i128) -> Vec<Value> {
        vec![Value::Int(n)]
    }

    #[test]
    fn diff_is_delta_only() {
        let current = vec![v(1), v(2), v(3)];
        let target = vec![v(2), v(3), v(4), v(5)];
        let (ins, del) = diff_rows(&current, &target);
        assert_eq!(ins, vec![v(4), v(5)]);
        assert_eq!(del, vec![v(1)]);

        // Identical states diff to nothing.
        let (ins, del) = diff_rows(&target, &target);
        assert!(ins.is_empty() && del.is_empty());

        // Multiset semantics: duplicate rows count.
        let (ins, del) = diff_rows(&[v(7)], &[v(7), v(7)]);
        assert_eq!(ins, vec![v(7)]);
        assert!(del.is_empty());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(100),
            max: Duration::from_millis(400),
            multiplier: 2.0,
            max_attempts: 6,
            jitter: 0.25,
            seed: 99,
        };
        let a: Vec<Duration> = policy.delays().collect();
        let b: Vec<Duration> = policy.delays().collect();
        assert_eq!(a, b, "same seed, same jitter sequence");
        assert_eq!(a.len(), 5);
        for (i, d) in a.iter().enumerate() {
            // Within jitter bounds of the capped exponential value.
            let ideal = (100.0 * 2f64.powi(i as i32)).min(400.0);
            let lo = ideal * 0.75;
            let hi = ideal * 1.25;
            let ms = d.as_secs_f64() * 1000.0;
            assert!(
                ms >= lo - 1e-6 && ms <= hi + 1e-6,
                "delay {i} = {ms}ms not in [{lo},{hi}]"
            );
        }

        // Zero jitter is exact.
        let exact: Vec<Duration> = BackoffPolicy {
            jitter: 0.0,
            ..policy
        }
        .delays()
        .collect();
        assert_eq!(exact[0], Duration::from_millis(100));
        assert_eq!(exact[1], Duration::from_millis(200));
        assert_eq!(exact[2], Duration::from_millis(400));
        assert_eq!(exact[3], Duration::from_millis(400), "capped at max");
    }

    #[test]
    fn monitor_config_tables() {
        let c = MonitorConfig::all_columns("snvs", &["Port", "Switch"]);
        let mut t = c.tables();
        t.sort();
        assert_eq!(t, vec!["Port".to_string(), "Switch".to_string()]);
    }
}
