//! The Nerpa controller: state synchronization between the three planes.
//!
//! The controller owns the incremental DDlog engine. Management-plane
//! changes (OVSDB monitor updates) and data-plane notifications (digests)
//! become engine transactions; output deltas become P4Runtime writes —
//! including the digest feedback loop of Fig. 4.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Select};
use ddlog::{Engine, Transaction, TxnDelta};
use ovsdb::db::RowChange;
use p4sim::runtime::{Digest, TableEntry, Update, WriteOp};
use p4sim::service::SwitchDevice;
use serde_json::Value as Json;
use telemetry::{Span, SpanTree};

use crate::codegen::{
    assemble_program, ovsdb2ddlog, p4info2ddlog, CodegenOptions, DigestBinding, Generated,
    TableBinding,
};
use crate::convert;
use crate::resync::{self, OvsdbSupervisor, ReconcileReport, ResyncReport};

/// Anything that accepts P4Runtime writes (an in-process device or a TCP
/// control client).
pub trait DataPlane: Send {
    /// Apply updates atomically.
    fn write_updates(&self, updates: &[Update]) -> Result<(), String>;

    /// Apply updates atomically, carrying the causal trace id that
    /// produced them. Data planes that cannot attribute writes fall back
    /// to [`DataPlane::write_updates`].
    fn write_updates_traced(&self, updates: &[Update], trace: u64) -> Result<(), String> {
        let _ = trace;
        self.write_updates(updates)
    }

    /// Configure a multicast group (empty ports = remove).
    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String>;

    /// Read back the switch's full table state, for reconciliation after
    /// a restart. Data planes without read-back support return `Err`.
    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        Err("data plane does not support table read-back".to_string())
    }

    /// Whether a returned `write_updates*` means the device settled the
    /// write. Asynchronous handles that merely enqueue (the shard
    /// runtime's writer queues) return `false`; their writer records
    /// convergence when the device acknowledges.
    fn settles_inline(&self) -> bool {
        true
    }
}

impl DataPlane for SwitchDevice {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write(updates)
    }

    fn write_updates_traced(&self, updates: &[Update], trace: u64) -> Result<(), String> {
        self.write_traced(updates, Some(trace))
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        SwitchDevice::set_mcast_group(self, group, ports);
        Ok(())
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        Ok(SwitchDevice::read_all_tables(self))
    }
}

impl DataPlane for p4sim::service::ControlClient {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write(updates.to_vec())
    }

    fn write_updates_traced(&self, updates: &[Update], trace: u64) -> Result<(), String> {
        self.write_traced(updates.to_vec(), Some(trace))
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        p4sim::service::ControlClient::set_mcast_group(self, group, ports)
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        p4sim::service::ControlClient::read_all_tables(self)
    }
}

/// Latency and work metrics, the measurement surface for the paper's
/// §4.3 experiment.
///
/// The fields are shared handles into the process-wide
/// [`telemetry::Registry`]: recording is a lock-free atomic op, memory
/// is bounded no matter how long the controller runs, and the same
/// series appear on the live introspection endpoint's `/metrics`. Each
/// controller instance gets fresh handles (so tests read exactly their
/// own controller's counts) and publishes them under the `controller_*`
/// names — the endpoint always shows the live instance.
#[derive(Clone)]
pub struct Metrics {
    /// End-to-end latencies of handled events (change observed →
    /// data-plane write acknowledged), in microseconds.
    pub latency: telemetry::Histogram,
    /// Number of engine transactions committed.
    pub transactions: telemetry::Counter,
    /// Number of table-entry updates pushed to switches.
    pub entries_pushed: telemetry::Counter,
    /// Snapshot resyncs performed (one per successful OVSDB reconnect).
    pub resyncs: telemetry::Counter,
    /// Switch reconciliations performed after data-plane restarts.
    pub reconciles: telemetry::Counter,
    /// Digest batches handled (the feedback loop of Fig. 4).
    pub digest_batches: telemetry::Counter,
    /// Digest handling latency (batch received → write acked), in
    /// microseconds — the controller's digest lag.
    pub digest_lag_us: telemetry::Histogram,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh handles, published into the global registry.
    pub fn new() -> Metrics {
        let m = Metrics {
            latency: telemetry::Histogram::new(&telemetry::LATENCY_BOUNDS_US),
            transactions: telemetry::Counter::new(),
            entries_pushed: telemetry::Counter::new(),
            resyncs: telemetry::Counter::new(),
            reconciles: telemetry::Counter::new(),
            digest_batches: telemetry::Counter::new(),
            digest_lag_us: telemetry::Histogram::new(&telemetry::LATENCY_BOUNDS_US),
        };
        let reg = &telemetry::global().registry;
        reg.publish_histogram(
            "controller_e2e_latency_us",
            "End-to-end change-to-dataplane latency (us)",
            &m.latency,
        );
        reg.publish_counter(
            "controller_transactions_total",
            "Engine transactions committed by the controller",
            &m.transactions,
        );
        reg.publish_counter(
            "controller_entries_pushed_total",
            "Table-entry updates pushed to switches",
            &m.entries_pushed,
        );
        reg.publish_counter(
            "controller_resyncs_total",
            "Snapshot resyncs after OVSDB reconnects",
            &m.resyncs,
        );
        reg.publish_counter(
            "controller_reconciles_total",
            "Switch reconciliations after data-plane restarts",
            &m.reconciles,
        );
        reg.publish_counter(
            "controller_digest_batches_total",
            "Digest batches handled by the controller",
            &m.digest_batches,
        );
        reg.publish_histogram(
            "controller_digest_lag_us",
            "Digest handling latency, batch received to write acked (us)",
            &m.digest_lag_us,
        );
        m
    }

    /// First recorded latency.
    pub fn first_latency(&self) -> Option<Duration> {
        self.latency.first().map(Duration::from_micros)
    }

    /// Last recorded latency.
    pub fn last_latency(&self) -> Option<Duration> {
        self.latency.last().map(Duration::from_micros)
    }
}

/// The causal context of one change flowing through the stack: the
/// trace id plus what is known about the upstream commit.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    id: u64,
    /// Management-plane commit duration, when the change arrived via a
    /// monitor update carrying [`ovsdb::TRACE_KEY`]; 0 otherwise.
    commit_ns: u64,
    source: &'static str,
}

impl TraceCtx {
    /// Mint a fresh trace for a change entering the stack at `source`.
    pub fn minted(source: &'static str) -> TraceCtx {
        TraceCtx {
            id: telemetry::next_trace_id(),
            commit_ns: 0,
            source,
        }
    }

    /// Extract the trace the OVSDB server attached to a monitor update,
    /// or mint a fresh one for untraced update objects.
    fn from_monitor_update(updates: &Json) -> TraceCtx {
        let embedded = updates.get(ovsdb::TRACE_KEY).and_then(|t| {
            Some(TraceCtx {
                id: t.get("id")?.as_u64()?,
                commit_ns: t.get("commit_ns").and_then(Json::as_u64).unwrap_or(0),
                source: "monitor",
            })
        });
        embedded.unwrap_or_else(|| TraceCtx::minted("monitor"))
    }
}

/// The output of [`Controller::commit_to_plan`]: per-switch write
/// batches (deletes before inserts, switch-id order), multicast group
/// snapshots to replay, and the commit's partially-assembled span tree.
/// Everything the push half of the commit→convert→write cycle needs,
/// detached from the engine so writes can be pipelined behind commits.
pub struct PushPlan {
    ctx: TraceCtx,
    /// When the commit began — push latency is measured from here so
    /// the e2e series still covers change-observed → write-acked.
    start: Instant,
    writes: Vec<(usize, Vec<Update>)>,
    mcast_pushes: Vec<(usize, u16, Vec<u16>)>,
    root: Span,
}

impl PushPlan {
    /// The trace id that produced this plan (follows the writes down).
    pub fn trace_id(&self) -> u64 {
        self.ctx.id
    }

    /// The per-switch write batches, in ascending switch-id order.
    pub fn writes(&self) -> &[(usize, Vec<Update>)] {
        &self.writes
    }

    /// Total table-entry updates across all batches.
    pub fn update_count(&self) -> usize {
        self.writes.iter().map(|(_, u)| u.len()).sum()
    }
}

/// Build-time description of a Nerpa program: the three plane artifacts.
pub struct NerpaProgram {
    /// The management-plane schema.
    pub schema: ovsdb::Schema,
    /// The data-plane program's control surface.
    pub p4info: p4sim::P4Info,
    /// Hand-written control-plane rules.
    pub rules: String,
    /// Codegen options.
    pub options: CodegenOptions,
}

impl NerpaProgram {
    /// Generate declarations and assemble the complete DDlog source.
    pub fn generate(&self) -> (String, Generated, Generated) {
        let schema_gen = ovsdb2ddlog(&self.schema);
        let p4_gen = p4info2ddlog(&self.p4info, self.options);
        let src = assemble_program(&[&schema_gen, &p4_gen], &self.rules);
        (src, schema_gen, p4_gen)
    }
}

/// The controller.
pub struct Controller {
    engine: Engine,
    schema: ovsdb::Schema,
    tables: HashMap<String, TableBinding>,
    digests: HashMap<String, DigestBinding>,
    /// Registered data planes, keyed by global switch id. Sparse on
    /// purpose: a shard controller registers only the switches its
    /// partition owns, under their global ids, and output rows routed
    /// to unregistered switches are simply not this instance's to push.
    switches: BTreeMap<usize, Box<dyn DataPlane>>,
    /// Replication state derived from the `MulticastGroup` convention
    /// relation: (switch, group) → member ports. Ordered so replaying
    /// it (switch reconcile) always pushes groups in the same order.
    mcast: BTreeMap<(usize, u16), BTreeSet<u16>>,
    /// Rendered `/dataflow` snapshot shared with the introspection
    /// endpoint's page closure; refreshed after each commit while the
    /// endpoint holds a clone (the engine itself cannot cross threads).
    dataflow: std::sync::Arc<std::sync::Mutex<String>>,
    /// Rendered `/why` snapshot (provenance ledger summary), refreshed
    /// like `dataflow`.
    why_page: std::sync::Arc<std::sync::Mutex<String>>,
    /// Metrics collected so far.
    pub metrics: Metrics,
}

impl Controller {
    /// Compile a Nerpa program into a running controller. This is where
    /// the whole stack is type-checked together; errors carry the DDlog
    /// diagnostics.
    pub fn new(program: &NerpaProgram) -> Result<Controller, String> {
        Controller::new_with(program, ddlog::ProvenanceConfig::off())
    }

    /// Like [`Controller::new`], with explicit provenance configuration
    /// for the engine: when enabled, every derived tuple carries its
    /// justification and [`Controller::why_entry`] /
    /// [`Controller::why_mcast`] can answer "why is this rule
    /// installed?" down to the OVSDB-mirrored base facts.
    pub fn new_with(
        program: &NerpaProgram,
        prov: ddlog::ProvenanceConfig,
    ) -> Result<Controller, String> {
        let (src, _schema_gen, p4_gen) = program.generate();
        let engine = Engine::from_source_with(&src, prov).map_err(|e| e.to_string())?;
        Ok(Controller {
            engine,
            schema: program.schema.clone(),
            tables: p4_gen
                .tables
                .into_iter()
                .map(|t| (t.relation.clone(), t))
                .collect(),
            digests: p4_gen
                .digests
                .into_iter()
                .map(|d| (d.relation.clone(), d))
                .collect(),
            switches: BTreeMap::new(),
            mcast: BTreeMap::new(),
            dataflow: std::sync::Arc::new(std::sync::Mutex::new(String::new())),
            why_page: std::sync::Arc::new(std::sync::Mutex::new(String::new())),
            metrics: Metrics::default(),
        })
    }

    /// Register a data plane; returns its switch id (used by
    /// `switch_id` routing and digest attribution). Ids are assigned
    /// sequentially after the highest registered id.
    pub fn add_switch(&mut self, dp: Box<dyn DataPlane>) -> usize {
        let id = self.switches.keys().next_back().map_or(0, |last| last + 1);
        self.add_switch_with_id(id, dp);
        id
    }

    /// Register a data plane under a specific global switch id. Shard
    /// controllers use this so each partition's switches keep their
    /// topology-wide ids: output rows whose `switch_id` column names an
    /// unregistered switch are skipped (they belong to another shard),
    /// and broadcast rows go to registered switches only.
    pub fn add_switch_with_id(&mut self, id: usize, dp: Box<dyn DataPlane>) {
        self.switches.insert(id, dp);
        telemetry::global()
            .health
            .set(format!("switch/{id}"), "connected");
    }

    /// The global ids of all registered switches, in ascending order.
    pub fn switch_ids(&self) -> Vec<usize> {
        self.switches.keys().copied().collect()
    }

    /// Start the live introspection endpoint on `addr` (port 0 for an
    /// ephemeral port): `/metrics`, `/metrics.json`, `/traces`,
    /// `/health`, and `/dataflow` (this controller's compiled plan with
    /// per-operator cumulative costs as JSON) over HTTP, backed by the
    /// process-wide telemetry bundle every plane registers into. The
    /// server stops when the returned handle drops.
    pub fn serve_introspection(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<telemetry::IntrospectionServer> {
        *self.dataflow.lock().unwrap() = self.engine.explain_json();
        let snap = self.dataflow.clone();
        telemetry::global().register_page("/dataflow", "application/json", move || {
            snap.lock().unwrap().clone()
        });
        *self.why_page.lock().unwrap() = self.engine.provenance_summary_json();
        let why = self.why_page.clone();
        telemetry::global().register_page("/why", "application/json", move || {
            why.lock().unwrap().clone()
        });
        telemetry::IntrospectionServer::start(addr, telemetry::global().clone())
    }

    /// Number of registered switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Direct read access to the engine (dumps, diagnostics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Enable (or disable, with `None`) the engine's incrementality
    /// audit: every commit asserts total dataflow work is
    /// O(|input delta| + |output delta|) within the configured budget.
    pub fn set_work_audit(&mut self, cfg: Option<ddlog::AuditConfig>) {
        self.engine.set_audit(cfg);
    }

    /// Fault injection for the oracle's `stale-arrangement` demo: make
    /// the engine skip index maintenance on retractions, so ghost rows
    /// linger in arrangements and joins keep deriving from deleted
    /// state. The differential harness must catch the divergence.
    pub fn inject_stale_arrangement(&mut self, on: bool) {
        self.engine.inject_stale_arrangement(on);
    }

    /// Handle committed OVSDB row changes (in-process path).
    pub fn handle_row_changes(&mut self, changes: &[RowChange]) -> Result<TxnDelta, String> {
        self.handle_row_changes_traced(changes, 0)
    }

    /// Like [`Controller::handle_row_changes`], but under a trace id
    /// the caller already minted — the sharded runtime fans one
    /// commit's changes to several engines, and every shard's writes
    /// must join the same trace instead of minting orphans.
    pub fn handle_row_changes_traced(
        &mut self,
        changes: &[RowChange],
        trace: u64,
    ) -> Result<TxnDelta, String> {
        let ctx = if trace != 0 {
            TraceCtx {
                id: trace,
                commit_ns: 0,
                source: "row_changes",
            }
        } else {
            TraceCtx::minted("row_changes")
        };
        let rel_types = |name: &str| self.engine.relation_types(name);
        let ops = convert::changes_to_ops(changes, &self.schema, &rel_types)?;
        self.commit_and_push(ops, ctx)
    }

    /// Handle a monitor `table-updates` JSON object (TCP path; also the
    /// initial state returned by the `monitor` call). If the update
    /// carries the trace the OVSDB server minted at commit time, that
    /// trace follows the change down to the P4Runtime writes.
    pub fn handle_monitor_update(&mut self, updates: &Json) -> Result<TxnDelta, String> {
        let ctx = TraceCtx::from_monitor_update(updates);
        let rel_types = |name: &str| self.engine.relation_types(name);
        let ops = convert::monitor_update_to_ops(updates, &self.schema, &rel_types)?;
        self.commit_and_push(ops, ctx)
    }

    /// Handle digests from switch `switch_id` (the feedback loop).
    pub fn handle_digests(
        &mut self,
        switch_id: usize,
        digests: &[Digest],
    ) -> Result<TxnDelta, String> {
        self.commit_digests(switch_id, digests, true)
    }

    /// Retract previously-learned digests from switch `switch_id` — the
    /// aging half of the learn/age cycle (a digest that times out is a
    /// deletion of the same input tuple the learn inserted). Retracting
    /// a digest that was never learned is a no-op.
    pub fn retract_digests(
        &mut self,
        switch_id: usize,
        digests: &[Digest],
    ) -> Result<TxnDelta, String> {
        self.commit_digests(switch_id, digests, false)
    }

    fn commit_digests(
        &mut self,
        switch_id: usize,
        digests: &[Digest],
        insert: bool,
    ) -> Result<TxnDelta, String> {
        let started = Instant::now();
        let mut ops = Vec::new();
        for d in digests {
            let Some(binding) = self.digests.get(&d.name) else {
                continue; // digest type not used by the control plane
            };
            let vals = convert::digest_to_values(d, binding, switch_id)?;
            ops.push((d.name.clone(), vals, insert));
        }
        let source = if insert { "digest" } else { "digest_retract" };
        let delta = self.commit_and_push(ops, TraceCtx::minted(source))?;
        self.metrics.digest_batches.inc();
        self.metrics
            .digest_lag_us
            .record_duration(started.elapsed());
        Ok(delta)
    }

    /// Commit raw `(relation, row, is_insert)` operations on input
    /// relations and push the resulting delta, exactly as the monitor
    /// and digest paths do. An escape hatch for test harnesses (the
    /// differential oracle uses it to model deliberately-buggy resync
    /// variants); production paths go through the typed handlers above.
    pub fn apply_input_ops(
        &mut self,
        ops: Vec<(String, Vec<Value>, bool)>,
    ) -> Result<TxnDelta, String> {
        self.commit_and_push(ops, TraceCtx::minted("input_ops"))
    }

    fn commit_and_push(
        &mut self,
        ops: Vec<(String, Vec<Value>, bool)>,
        ctx: TraceCtx,
    ) -> Result<TxnDelta, String> {
        let (delta, plan) = self.commit_to_plan(ops, ctx)?;
        if let Some(plan) = plan {
            self.push_plan(plan)?;
        }
        Ok(delta)
    }

    /// The commit half of the cycle: run the engine transaction, route
    /// the output delta to per-switch write batches, and fold any
    /// `MulticastGroup` changes into the replication state — but do not
    /// touch a data plane. The returned [`PushPlan`] carries everything
    /// the push half needs, so callers that pipeline (the shard runtime,
    /// benches) can start the next commit while this plan is written.
    pub fn commit_to_plan(
        &mut self,
        ops: Vec<(String, Vec<Value>, bool)>,
        ctx: TraceCtx,
    ) -> Result<(TxnDelta, Option<PushPlan>), String> {
        if ops.is_empty() {
            return Ok((TxnDelta::default(), None));
        }
        let start = Instant::now();
        let input_ops = ops.len();
        let mut txn = Transaction::new();
        for (rel, row, insert) in ops {
            if insert {
                txn.insert(rel, row);
            } else {
                txn.delete(rel, row);
            }
        }
        // The engine stamps its flight-recorder events with this commit's
        // trace; the convergence clock starts here for changes that enter
        // the stack in-process (monitor-path traces already started at
        // the OVSDB ack, which `begin` keeps as the earlier anchor).
        self.engine.set_commit_trace(ctx.id);
        telemetry::global().convergence_begin(ctx.id);
        let (delta, profile) = self
            .engine
            .commit_profiled(txn)
            .map_err(|e| e.to_string())?;
        let apply_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.metrics.transactions.inc();
        // Refresh the /dataflow snapshot only while an introspection
        // endpoint actually holds the other end.
        if std::sync::Arc::strong_count(&self.dataflow) > 1 {
            *self.dataflow.lock().unwrap() = self.engine.explain_json();
        }
        if std::sync::Arc::strong_count(&self.why_page) > 1 {
            *self.why_page.lock().unwrap() = self.engine.provenance_summary_json();
        }

        // Route output deltas to switches. Deletes go first so that
        // replacing an entry (delete+insert of the same key) is valid.
        // BTreeMap so switches are always written in id order — a fixed
        // push order keeps partial-failure states reproducible.
        let mut per_switch: BTreeMap<usize, (Vec<Update>, Vec<Update>)> = BTreeMap::new();
        let mut mcast_pushes = Vec::new();
        for (rel, rows) in &delta.changes {
            if rel == "MulticastGroup" {
                mcast_pushes = self.apply_mcast_delta(rows)?;
                continue;
            }
            let Some(binding) = self.tables.get(rel) else {
                continue;
            };
            for (row, weight) in rows {
                let (target, update) = convert::row_to_update(row, *weight, binding)?;
                let targets: Vec<usize> = match target {
                    Some(t) if self.switches.contains_key(&t) => vec![t],
                    Some(_) => vec![], // another shard's switch
                    None => self.switches.keys().copied().collect(),
                };
                for t in targets {
                    let bucket = per_switch.entry(t).or_default();
                    if weight < &0 {
                        bucket.0.push(update.clone());
                    } else {
                        bucket.1.push(update.clone());
                    }
                }
            }
        }
        let writes = per_switch
            .into_iter()
            .map(|(t, (mut dels, ins))| {
                dels.extend(ins);
                (t, dels)
            })
            .collect();

        // Assemble the span tree's commit half: management-plane commit
        // (if known) and the control-plane apply. Write spans are
        // appended when the plan is pushed.
        let mut root = Span::new("stack.change", "stack")
            .timed(0, (ctx.commit_ns + apply_ns).max(1))
            .attr_text("source", ctx.source)
            .attr_u64("input_ops", input_ops as u64)
            .attr_u64("delta_rows", delta.len() as u64);
        if ctx.commit_ns > 0 {
            root.children
                .push(Span::new("ovsdb.commit", "management").timed(0, ctx.commit_ns));
        }
        let mut apply_span = Span::new("ddlog.apply", "control")
            .timed(ctx.commit_ns, apply_ns.max(1))
            .attr_u64("input_ops", input_ops as u64)
            .attr_u64("output_changes", delta.len() as u64)
            .attr_u64("work_tuples", profile.total_tuples());
        if let Some(&hot) = profile.hottest(1).first() {
            let meta = &self.engine.op_catalog().ops[hot];
            apply_span = apply_span
                .attr_text(
                    "hottest_op",
                    format!("[{hot}] {} {}", meta.kind.name(), meta.detail),
                )
                .attr_u64("hottest_op_tuples", profile.stats[hot].tuples());
        }
        root.children.push(apply_span);
        telemetry::log_debug!(
            "controller",
            "trace {}: {} ops -> {} changes ({} source)",
            ctx.id,
            input_ops,
            delta.len(),
            ctx.source
        );

        let plan = PushPlan {
            ctx,
            start,
            writes,
            mcast_pushes,
            root,
        };
        Ok((delta, Some(plan)))
    }

    /// The push half of the cycle: write a plan's batches to the
    /// registered data planes (in switch-id order), replay its touched
    /// multicast groups, and close out the commit's span tree and
    /// latency metrics. Registered planes may be asynchronous handles
    /// that enqueue instead of blocking — that is the shard runtime's
    /// write pipeline.
    pub fn push_plan(&self, plan: PushPlan) -> Result<(), String> {
        let PushPlan {
            ctx,
            start,
            writes,
            mcast_pushes,
            mut root,
        } = plan;
        for (t, updates) in &writes {
            let Some(dp) = self.switches.get(t) else {
                return Err(format!("push plan routed to unregistered switch {t}"));
            };
            self.metrics.entries_pushed.add(updates.len() as u64);
            let write_start_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let write_start = Instant::now();
            dp.write_updates_traced(updates, ctx.id)?;
            if dp.settles_inline() {
                telemetry::global().convergence_settled(ctx.id, None);
            }
            let write_ns = write_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            root.children.push(
                Span::new("p4.write", "data")
                    .timed(ctx.commit_ns + write_start_ns, write_ns.max(1))
                    .attr_u64("switch", *t as u64)
                    .attr_u64("updates", updates.len() as u64),
            );
        }
        for (s, group, ports) in mcast_pushes {
            if let Some(dp) = self.switches.get(&s) {
                dp.set_mcast_group(group, ports)?;
            }
        }
        let total = start.elapsed();
        self.metrics.latency.record_duration(total);
        let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
        root.dur_ns = (ctx.commit_ns + total_ns).max(1);
        telemetry::global().tracer.record(SpanTree {
            trace: ctx.id,
            root,
        });
        Ok(())
    }

    /// Fold a delta of the convention relation
    /// `output relation MulticastGroup(group, port)` (optionally with a
    /// leading `switch_id` column when there are ≥3 columns) into the
    /// replication state, returning the group snapshots that must be
    /// pushed to registered switches.
    fn apply_mcast_delta(
        &mut self,
        rows: &[(Vec<Value>, isize)],
    ) -> Result<Vec<(usize, u16, Vec<u16>)>, String> {
        let mut touched: BTreeSet<(usize, u16)> = BTreeSet::new();
        for (row, w) in rows {
            let (switches, group, port): (Vec<usize>, u16, u16) = match row.len() {
                2 => {
                    let g = row[0].as_u128().ok_or("MulticastGroup: bad group")? as u16;
                    let p = row[1].as_u128().ok_or("MulticastGroup: bad port")? as u16;
                    (self.switches.keys().copied().collect(), g, p)
                }
                3 => {
                    let s = row[0].as_u128().ok_or("MulticastGroup: bad switch")? as usize;
                    let g = row[1].as_u128().ok_or("MulticastGroup: bad group")? as u16;
                    let p = row[2].as_u128().ok_or("MulticastGroup: bad port")? as u16;
                    (vec![s], g, p)
                }
                n => return Err(format!("MulticastGroup must have 2 or 3 columns, has {n}")),
            };
            for s in switches {
                let set = self.mcast.entry((s, group)).or_default();
                if *w > 0 {
                    set.insert(port);
                } else {
                    set.remove(&port);
                }
                touched.insert((s, group));
            }
        }
        let mut pushes = Vec::new();
        for (s, group) in touched {
            if !self.switches.contains_key(&s) {
                continue;
            }
            let ports: Vec<u16> = self
                .mcast
                .get(&(s, group))
                .map(|set| set.iter().copied().collect())
                .unwrap_or_default();
            pushes.push((s, group, ports));
        }
        Ok(pushes)
    }

    /// Resync the engine's input relations against a fresh monitor
    /// initial-state snapshot, committing **only the delta**.
    ///
    /// This is the recovery half of the paper's incrementality story:
    /// after a disconnect the controller does not rebuild from scratch —
    /// it diffs the snapshot against what the engine already holds and
    /// commits the difference, so recovery work is proportional to the
    /// changes missed while disconnected, not to the database size. The
    /// resulting engine delta flows to the switches like any other
    /// transaction.
    ///
    /// `monitored_tables` lists every monitored table, so that tables
    /// which became empty while disconnected (and are therefore absent
    /// from the snapshot) still get their stale rows retracted.
    pub fn resync_from_snapshot(
        &mut self,
        initial: &Json,
        monitored_tables: &[String],
    ) -> Result<ResyncReport, String> {
        let snapshot = {
            let rel_types = |name: &str| self.engine.relation_types(name);
            resync::snapshot_rows(initial, &self.schema, &rel_types)?
        };
        let mut tables: BTreeSet<String> = monitored_tables.iter().cloned().collect();
        tables.extend(snapshot.keys().cloned());

        let empty = Vec::new();
        let mut ops = Vec::new();
        let mut report = ResyncReport::default();
        for t in &tables {
            if self.engine.relation_types(t).is_none() {
                continue; // not an input relation of this program
            }
            let target = snapshot.get(t).unwrap_or(&empty);
            let current = self.engine.dump(t).map_err(|e| e.to_string())?;
            let (inserts, deletes) = resync::diff_rows(&current, target);
            report.snapshot_rows += target.len();
            report.inserts += inserts.len();
            report.deletes += deletes.len();
            report.tables += 1;
            for row in deletes {
                ops.push((t.clone(), row, false));
            }
            for row in inserts {
                ops.push((t.clone(), row, true));
            }
        }
        self.commit_and_push(ops, TraceCtx::minted("resync"))?;
        self.metrics.resyncs.inc();
        telemetry::log_info!(
            "controller",
            "resync: {} snapshot rows, +{} -{} across {} tables",
            report.snapshot_rows,
            report.inserts,
            report.deletes,
            report.tables
        );
        Ok(report)
    }

    /// The table entries switch `switch_id` should hold, derived from
    /// the engine's output relations.
    pub fn desired_entries(&self, switch_id: usize) -> Result<BTreeSet<TableEntry>, String> {
        let mut out = BTreeSet::new();
        for (rel, binding) in &self.tables {
            let rows = self.engine.dump(rel).map_err(|e| e.to_string())?;
            for row in &rows {
                let (target, update) = convert::row_to_update(row, 1, binding)?;
                let applies = match target {
                    Some(t) => t == switch_id,
                    None => true,
                };
                if applies {
                    out.insert(update.entry);
                }
            }
        }
        Ok(out)
    }

    /// The multicast groups the controller believes switch `switch_id`
    /// holds (its replication state), order-normalized with empty groups
    /// pruned — comparable against a device's `mcast_snapshot`.
    pub fn mcast_snapshot(&self, switch_id: usize) -> BTreeMap<u16, BTreeSet<u16>> {
        self.mcast
            .iter()
            .filter(|((s, _), set)| *s == switch_id && !set.is_empty())
            .map(|((_, g), set)| (*g, set.clone()))
            .collect()
    }

    /// Resolve an installed P4 table entry back to the output-relation
    /// row that produced it, through the table bindings (the reverse of
    /// the commit path's row→update conversion). Returns
    /// `(relation, row)`.
    pub fn entry_source(
        &self,
        switch_id: usize,
        entry: &TableEntry,
    ) -> Result<(String, Vec<ddlog::Value>), String> {
        let Some(binding) = self.tables.get(&entry.table) else {
            return Err(format!(
                "no table-bound output relation named `{}`",
                entry.table
            ));
        };
        for row in self.engine.dump(&entry.table).map_err(|e| e.to_string())? {
            let (target, update) = convert::row_to_update(&row, 1, binding)?;
            let applies = match target {
                Some(t) => t == switch_id,
                None => true,
            };
            if applies && update.entry == *entry {
                return Ok((entry.table.clone(), row));
            }
        }
        Err(format!(
            "no `{}` output row maps to that entry on switch {switch_id}",
            entry.table
        ))
    }

    /// Why is this P4 table entry installed? Resolves the entry to its
    /// output-relation row and returns the engine's derivation tree,
    /// rooted at the OVSDB-mirrored input facts. Requires a
    /// provenance-enabled controller ([`Controller::new_with`]).
    pub fn why_entry(
        &self,
        switch_id: usize,
        entry: &TableEntry,
    ) -> Result<ddlog::WhyNode, String> {
        let (rel, row) = self.entry_source(switch_id, entry)?;
        self.engine.why(&rel, row).map_err(|e| e.to_string())
    }

    /// Why is `port` a member of multicast `group`? Resolves through
    /// the `MulticastGroup` convention relation (2- or 3-column form)
    /// and returns the derivation tree.
    pub fn why_mcast(
        &self,
        switch_id: usize,
        group: u16,
        port: u16,
    ) -> Result<ddlog::WhyNode, String> {
        for row in self
            .engine
            .dump("MulticastGroup")
            .map_err(|e| e.to_string())?
        {
            let hit = match row.len() {
                2 => {
                    row[0].as_u128() == Some(group as u128)
                        && row[1].as_u128() == Some(port as u128)
                }
                3 => {
                    row[0].as_u128() == Some(switch_id as u128)
                        && row[1].as_u128() == Some(group as u128)
                        && row[2].as_u128() == Some(port as u128)
                }
                _ => false,
            };
            if hit {
                return self
                    .engine
                    .why("MulticastGroup", row)
                    .map_err(|e| e.to_string());
            }
        }
        Err(format!(
            "no MulticastGroup row for group {group} port {port} on switch {switch_id}"
        ))
    }

    /// Build the output-relation row that *would* produce `entry` on
    /// `switch_id` — the inverse of the commit path's row→update
    /// conversion, typed against the relation's declared columns. Param
    /// columns owned by other actions are set to 0 (the convention the
    /// generated rules follow).
    fn entry_to_row(
        &self,
        switch_id: usize,
        entry: &TableEntry,
    ) -> Result<Vec<ddlog::Value>, String> {
        use ddlog::Type;
        use p4sim::runtime::FieldMatch;
        let Some(binding) = self.tables.get(&entry.table) else {
            return Err(format!(
                "no table-bound output relation named `{}`",
                entry.table
            ));
        };
        let schema = self
            .engine
            .relation_schema(&entry.table)
            .map_err(|e| e.to_string())?;
        let mut types = schema.iter().map(|(_, t)| t);
        fn num(ty: Option<&Type>, v: u128) -> Result<ddlog::Value, String> {
            match ty {
                Some(Type::Bit(w)) => Ok(ddlog::Value::Bit { width: *w, val: v }),
                Some(Type::Int) => Ok(ddlog::Value::Int(v as i128)),
                other => Err(format!("expected numeric column, found {other:?}")),
            }
        }
        let mut row = Vec::with_capacity(schema.len());
        if binding.per_switch {
            row.push(num(types.next(), switch_id as u128)?);
        }
        if entry.matches.len() != binding.table.keys.len() {
            return Err(format!(
                "entry has {} matches, table `{}` has {} keys",
                entry.matches.len(),
                entry.table,
                binding.table.keys.len()
            ));
        }
        for m in &entry.matches {
            match m {
                FieldMatch::Exact { value } => row.push(num(types.next(), *value)?),
                FieldMatch::Lpm { value, prefix_len } => {
                    row.push(num(types.next(), *value)?);
                    row.push(num(types.next(), *prefix_len as u128)?);
                }
                FieldMatch::Ternary { value, mask } => {
                    row.push(num(types.next(), *value)?);
                    row.push(num(types.next(), *mask)?);
                }
            }
        }
        if binding.has_priority {
            row.push(num(types.next(), entry.priority as u128)?);
        }
        let _ = types.next(); // action column
        row.push(ddlog::Value::str(&entry.action));
        let action_params: Vec<u128> = binding
            .table
            .actions
            .iter()
            .find(|a| a.name == entry.action)
            .map(|a| (0..a.params.len()).map(|i| entry.params[i]).collect())
            .unwrap_or_default();
        for (_, owner, idx) in &binding.param_cols {
            let v = if owner == &entry.action {
                action_params.get(*idx).copied().unwrap_or(0)
            } else {
                0
            };
            row.push(num(types.next(), v)?);
        }
        Ok(row)
    }

    /// Why is this P4 table entry *not* installed? Inverts the entry to
    /// its would-be output-relation row and reports, per candidate
    /// rule, the first failing literal.
    pub fn why_not_entry(
        &self,
        switch_id: usize,
        entry: &TableEntry,
    ) -> Result<ddlog::WhyNot, String> {
        let row = self.entry_to_row(switch_id, entry)?;
        self.engine
            .why_not(&entry.table, row)
            .map_err(|e| e.to_string())
    }

    /// Swap the data plane behind an existing switch id (e.g. after the
    /// switch restarted and must be re-dialed). Follow with
    /// [`Controller::reconcile_switch`] to restore its table state.
    pub fn replace_switch(
        &mut self,
        switch_id: usize,
        dp: Box<dyn DataPlane>,
    ) -> Result<(), String> {
        let Some(slot) = self.switches.get_mut(&switch_id) else {
            return Err(format!("no switch with id {switch_id}"));
        };
        *slot = dp;
        Ok(())
    }

    /// Reconcile a (possibly restarted) switch: read back its actual
    /// table state, diff against the desired state from the engine's
    /// output relations, and push only the difference — deletes first,
    /// then missing inserts. Multicast groups are replayed from the
    /// controller's replication state.
    pub fn reconcile_switch(&mut self, switch_id: usize) -> Result<ReconcileReport, String> {
        let mut reports = self.reconcile_switches(&[switch_id])?;
        reports
            .remove(&switch_id)
            .ok_or_else(|| format!("no switch with id {switch_id}"))
    }

    /// Reconcile several switches, running the device-facing half
    /// (table read-back, diff push, multicast replay) concurrently —
    /// one scoped thread per switch. Fails on the first per-switch
    /// error; supervisors that must survive one dead switch use
    /// [`Controller::try_reconcile_switches`].
    pub fn reconcile_switches(
        &mut self,
        ids: &[usize],
    ) -> Result<BTreeMap<usize, ReconcileReport>, String> {
        let mut reports = BTreeMap::new();
        for (id, res) in self.try_reconcile_switches(ids) {
            reports.insert(id, res?);
        }
        Ok(reports)
    }

    /// Reconcile several switches concurrently, reporting each one's
    /// outcome independently: a dead or misbehaving switch yields an
    /// `Err` for its id while its neighbors still converge. The desired
    /// states are computed serially first (they share the engine); the
    /// per-device work runs on one scoped thread per switch, so a slow
    /// device only delays its own recovery.
    pub fn try_reconcile_switches(
        &mut self,
        ids: &[usize],
    ) -> BTreeMap<usize, Result<ReconcileReport, String>> {
        // Phase 1 (serial, shared engine): desired entries and desired
        // multicast groups per switch.
        type Desired = (BTreeSet<TableEntry>, Vec<(u16, Vec<u16>)>);
        let mut results: BTreeMap<usize, Result<ReconcileReport, String>> = BTreeMap::new();
        let mut desired: BTreeMap<usize, Desired> = BTreeMap::new();
        for &id in ids {
            if !self.switches.contains_key(&id) {
                results.insert(id, Err(format!("no switch with id {id}")));
                continue;
            }
            match self.desired_entries(id) {
                Ok(entries) => {
                    let groups: Vec<(u16, Vec<u16>)> = self
                        .mcast
                        .iter()
                        .filter(|((s, _), _)| *s == id)
                        .map(|((_, g), ports)| (*g, ports.iter().copied().collect()))
                        .collect();
                    desired.insert(id, (entries, groups));
                }
                Err(e) => {
                    results.insert(id, Err(e));
                }
            }
        }

        // Phase 2 (parallel, per device): read back, diff, push.
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (id, dp) in self.switches.iter_mut() {
                let Some((want, groups)) = desired.remove(id) else {
                    continue;
                };
                let id = *id;
                handles.push((
                    id,
                    scope.spawn(move || reconcile_device(dp.as_mut(), &want, &groups)),
                ));
            }
            for (id, h) in handles {
                let res = h
                    .join()
                    .unwrap_or_else(|_| Err(format!("reconcile thread for switch {id} panicked")));
                results.insert(id, res);
            }
        });

        for (id, res) in &results {
            match res {
                Ok(report) => {
                    self.metrics
                        .entries_pushed
                        .add((report.inserted + report.deleted) as u64);
                    self.metrics.reconciles.inc();
                    telemetry::global()
                        .health
                        .set(format!("switch/{id}"), "ok(reconciled)");
                    telemetry::log_info!(
                        "controller",
                        "reconcile switch {id}: +{} -{} ={}",
                        report.inserted,
                        report.deleted,
                        report.unchanged
                    );
                }
                Err(e) => {
                    telemetry::global()
                        .health
                        .set(format!("switch/{id}"), "degraded(reconcile failed)");
                    telemetry::log_warn!("controller", "reconcile switch {id} failed: {e}");
                }
            }
        }
        results
    }

    /// Run the event loop under a supervisor: whenever the OVSDB link
    /// dies (the monitor channel disconnects), reconnect with backoff,
    /// re-issue the monitor call, resync from the snapshot, and resume.
    /// Returns when `stop` fires or the supervisor exhausts its retry
    /// budget.
    pub fn run_supervised(
        &mut self,
        supervisor: &mut OvsdbSupervisor,
        digest_feeds: Vec<Receiver<Vec<Digest>>>,
        stop: Receiver<()>,
    ) -> Result<(), String> {
        let mut digests_alive = vec![true; digest_feeds.len()];
        let mut sessions = 0u64;
        loop {
            let (client, updates, report) = supervisor.connect_and_sync(self)?;
            // After a RE-connect that replayed missed changes, the
            // switches may have drifted too (e.g. the fault hit both
            // links). Reconcile them concurrently and tolerantly: each
            // switch converges on its own thread, and one dead switch
            // degrades only itself — never the event loop or the other
            // switches. The initial connect skips this (nothing pushed
            // yet to drift from).
            sessions += 1;
            if sessions > 1 && report.inserts + report.deletes > 0 {
                let ids = self.switch_ids();
                self.try_reconcile_switches(&ids);
            }
            'session: loop {
                let mut sel = Select::new();
                let mon_idx = sel.recv(&updates);
                let mut digest_idxs = Vec::new();
                for (rx, alive) in digest_feeds.iter().zip(&digests_alive) {
                    if *alive {
                        digest_idxs.push(Some(sel.recv(rx)));
                    } else {
                        digest_idxs.push(None);
                    }
                }
                let stop_idx = sel.recv(&stop);
                let op = sel.select();
                let idx = op.index();
                if idx == mon_idx {
                    match op.recv(&updates) {
                        Ok(update) => {
                            self.handle_monitor_update(&update)?;
                        }
                        Err(_) => {
                            // Link died: reconnect.
                            telemetry::global()
                                .health
                                .set("ovsdb", "down(monitor channel)");
                            telemetry::log_warn!(
                                "controller",
                                "ovsdb monitor link died; reconnecting"
                            );
                            break 'session;
                        }
                    }
                } else if idx == stop_idx {
                    let _ = op.recv(&stop);
                    drop(client);
                    return Ok(());
                } else {
                    let pos = digest_idxs.iter().position(|i| *i == Some(idx)).unwrap();
                    match op.recv(&digest_feeds[pos]) {
                        Ok(digests) => {
                            self.handle_digests(pos, &digests)?;
                        }
                        Err(_) => digests_alive[pos] = false,
                    }
                }
            }
            drop(client);
        }
    }

    /// Run a blocking event loop over channels of monitor updates and
    /// digests until `stop` fires. Intended to be called on a dedicated
    /// thread.
    pub fn run_event_loop(
        &mut self,
        monitor_updates: Receiver<Json>,
        digest_feeds: Vec<Receiver<Vec<Digest>>>,
        stop: Receiver<()>,
    ) -> Result<(), String> {
        loop {
            let mut sel = Select::new();
            let mon_idx = sel.recv(&monitor_updates);
            let digest_base = 1 + digest_feeds.len();
            let mut digest_idxs = Vec::new();
            for rx in &digest_feeds {
                digest_idxs.push(sel.recv(rx));
            }
            let stop_idx = sel.recv(&stop);
            let _ = digest_base;
            let op = sel.select();
            let idx = op.index();
            if idx == mon_idx {
                match op.recv(&monitor_updates) {
                    Ok(update) => {
                        self.handle_monitor_update(&update)?;
                    }
                    Err(_) => return Ok(()), // channel closed
                }
            } else if idx == stop_idx {
                let _ = op.recv(&stop);
                return Ok(());
            } else {
                // A digest feed: find which one.
                let pos = digest_idxs.iter().position(|i| *i == idx).unwrap();
                match op.recv(&digest_feeds[pos]) {
                    Ok(digests) => {
                        self.handle_digests(pos, &digests)?;
                    }
                    Err(_) => return Ok(()),
                }
            }
        }
    }
}

/// The device-facing half of a switch reconciliation: read back actual
/// table state, push the diff against `want` (deletes first), and
/// replay the desired multicast groups. Runs on a per-switch thread in
/// [`Controller::reconcile_switches`] so one stalled device cannot
/// delay another's recovery.
fn reconcile_device(
    dp: &mut dyn DataPlane,
    want: &BTreeSet<TableEntry>,
    groups: &[(u16, Vec<u16>)],
) -> Result<ReconcileReport, String> {
    let actual: BTreeSet<TableEntry> = dp
        .read_all_tables()?
        .into_iter()
        .flat_map(|(_, entries)| entries)
        .collect();

    let mut report = ReconcileReport::default();
    let mut updates = Vec::new();
    for entry in actual.difference(want) {
        updates.push(Update {
            op: WriteOp::Delete,
            entry: entry.clone(),
        });
        report.deleted += 1;
    }
    for entry in want.difference(&actual) {
        updates.push(Update {
            op: WriteOp::Insert,
            entry: entry.clone(),
        });
        report.inserted += 1;
    }
    report.unchanged = want.intersection(&actual).count();
    if !updates.is_empty() {
        dp.write_updates(&updates)?;
    }
    for (group, ports) in groups {
        dp.set_mcast_group(*group, ports.clone())?;
        report.mcast_groups += 1;
    }
    Ok(report)
}

use ddlog::Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_latency_histogram_is_bounded_and_exact() {
        let m = Metrics::new();
        let h = &m.latency;
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none());
        h.record_duration(Duration::from_micros(40)); // bucket 0 (<= 50us)
        h.record_duration(Duration::from_micros(60)); // bucket 1 (<= 100us)
        h.record_duration(Duration::from_millis(1)); // bucket 4 (<= 1000us)
        h.record_duration(Duration::from_secs(1)); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(m.first_latency(), Some(Duration::from_micros(40)));
        assert_eq!(m.last_latency(), Some(Duration::from_secs(1)));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.sum(), 1_100 + 1_000_000);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[4], 1);
        assert_eq!(b[telemetry::LATENCY_BOUNDS_US.len()], 1);
        assert_eq!(b.iter().sum::<u64>(), 4);

        // Memory stays fixed no matter how many events are recorded —
        // the bucket array never grows.
        for _ in 0..10_000 {
            h.record_duration(Duration::from_micros(5));
        }
        assert_eq!(h.count(), 10_004);
        assert_eq!(h.bucket_counts()[0], 10_001);
        assert!(h.mean().is_some());

        // The published series read through to this instance's handles
        // (same #[test] so no parallel Metrics::new() can replace them).
        m.transactions.add(3);
        assert_eq!(
            telemetry::global()
                .registry
                .value("controller_transactions_total"),
            Some(3)
        );
        assert_eq!(
            telemetry::global()
                .registry
                .value("controller_e2e_latency_us"),
            Some(10_004)
        );
    }
}
