//! The Nerpa controller: state synchronization between the three planes.
//!
//! The controller owns the incremental DDlog engine. Management-plane
//! changes (OVSDB monitor updates) and data-plane notifications (digests)
//! become engine transactions; output deltas become P4Runtime writes —
//! including the digest feedback loop of Fig. 4.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Select};
use ddlog::{Engine, Transaction, TxnDelta};
use ovsdb::db::RowChange;
use p4sim::runtime::{Digest, Update};
use p4sim::service::SwitchDevice;
use serde_json::Value as Json;

use crate::codegen::{
    assemble_program, ovsdb2ddlog, p4info2ddlog, CodegenOptions, DigestBinding, Generated,
    TableBinding,
};
use crate::convert;

/// Anything that accepts P4Runtime writes (an in-process device or a TCP
/// control client).
pub trait DataPlane: Send {
    /// Apply updates atomically.
    fn write_updates(&self, updates: &[Update]) -> Result<(), String>;

    /// Configure a multicast group (empty ports = remove).
    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String>;
}

impl DataPlane for SwitchDevice {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write(updates)
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        SwitchDevice::set_mcast_group(self, group, ports);
        Ok(())
    }
}

impl DataPlane for p4sim::service::ControlClient {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write(updates.to_vec())
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        p4sim::service::ControlClient::set_mcast_group(self, group, ports)
    }
}

/// Latency and work metrics, the measurement surface for the paper's
/// §4.3 experiment.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// End-to-end latency of each handled event (change observed →
    /// data-plane write acknowledged).
    pub event_latencies: Vec<Duration>,
    /// Number of engine transactions committed.
    pub transactions: u64,
    /// Number of table-entry updates pushed to switches.
    pub entries_pushed: u64,
}

impl Metrics {
    /// First recorded latency.
    pub fn first_latency(&self) -> Option<Duration> {
        self.event_latencies.first().copied()
    }

    /// Last recorded latency.
    pub fn last_latency(&self) -> Option<Duration> {
        self.event_latencies.last().copied()
    }
}

/// Build-time description of a Nerpa program: the three plane artifacts.
pub struct NerpaProgram {
    /// The management-plane schema.
    pub schema: ovsdb::Schema,
    /// The data-plane program's control surface.
    pub p4info: p4sim::P4Info,
    /// Hand-written control-plane rules.
    pub rules: String,
    /// Codegen options.
    pub options: CodegenOptions,
}

impl NerpaProgram {
    /// Generate declarations and assemble the complete DDlog source.
    pub fn generate(&self) -> (String, Generated, Generated) {
        let schema_gen = ovsdb2ddlog(&self.schema);
        let p4_gen = p4info2ddlog(&self.p4info, self.options);
        let src = assemble_program(&[&schema_gen, &p4_gen], &self.rules);
        (src, schema_gen, p4_gen)
    }
}

/// The controller.
pub struct Controller {
    engine: Engine,
    schema: ovsdb::Schema,
    tables: HashMap<String, TableBinding>,
    digests: HashMap<String, DigestBinding>,
    switches: Vec<Box<dyn DataPlane>>,
    /// Replication state derived from the `MulticastGroup` convention
    /// relation: (switch, group) → member ports.
    mcast: HashMap<(usize, u16), std::collections::BTreeSet<u16>>,
    /// Metrics collected so far.
    pub metrics: Metrics,
}

impl Controller {
    /// Compile a Nerpa program into a running controller. This is where
    /// the whole stack is type-checked together; errors carry the DDlog
    /// diagnostics.
    pub fn new(program: &NerpaProgram) -> Result<Controller, String> {
        let (src, _schema_gen, p4_gen) = program.generate();
        let engine = Engine::from_source(&src).map_err(|e| e.to_string())?;
        Ok(Controller {
            engine,
            schema: program.schema.clone(),
            tables: p4_gen
                .tables
                .into_iter()
                .map(|t| (t.relation.clone(), t))
                .collect(),
            digests: p4_gen
                .digests
                .into_iter()
                .map(|d| (d.relation.clone(), d))
                .collect(),
            switches: Vec::new(),
            mcast: HashMap::new(),
            metrics: Metrics::default(),
        })
    }

    /// Register a data plane; returns its switch id (used by
    /// `switch_id` routing and digest attribution).
    pub fn add_switch(&mut self, dp: Box<dyn DataPlane>) -> usize {
        self.switches.push(dp);
        self.switches.len() - 1
    }

    /// Number of registered switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Direct read access to the engine (dumps, diagnostics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Handle committed OVSDB row changes (in-process path).
    pub fn handle_row_changes(&mut self, changes: &[RowChange]) -> Result<TxnDelta, String> {
        let rel_types = |name: &str| self.engine.relation_types(name);
        let ops = convert::changes_to_ops(changes, &self.schema, &rel_types)?;
        self.commit_and_push(ops)
    }

    /// Handle a monitor `table-updates` JSON object (TCP path; also the
    /// initial state returned by the `monitor` call).
    pub fn handle_monitor_update(&mut self, updates: &Json) -> Result<TxnDelta, String> {
        let rel_types = |name: &str| self.engine.relation_types(name);
        let ops = convert::monitor_update_to_ops(updates, &self.schema, &rel_types)?;
        self.commit_and_push(ops)
    }

    /// Handle digests from switch `switch_id` (the feedback loop).
    pub fn handle_digests(
        &mut self,
        switch_id: usize,
        digests: &[Digest],
    ) -> Result<TxnDelta, String> {
        let mut ops = Vec::new();
        for d in digests {
            let Some(binding) = self.digests.get(&d.name) else {
                continue; // digest type not used by the control plane
            };
            let vals = convert::digest_to_values(d, binding, switch_id)?;
            ops.push((d.name.clone(), vals, true));
        }
        self.commit_and_push(ops)
    }

    fn commit_and_push(
        &mut self,
        ops: Vec<(String, Vec<Value>, bool)>,
    ) -> Result<TxnDelta, String> {
        if ops.is_empty() {
            return Ok(TxnDelta::default());
        }
        let start = Instant::now();
        let mut txn = Transaction::new();
        for (rel, row, insert) in ops {
            if insert {
                txn.insert(rel, row);
            } else {
                txn.delete(rel, row);
            }
        }
        let delta = self.engine.commit(txn).map_err(|e| e.to_string())?;
        self.metrics.transactions += 1;

        // Route output deltas to switches. Deletes go first so that
        // replacing an entry (delete+insert of the same key) is valid.
        let mut per_switch: HashMap<usize, (Vec<Update>, Vec<Update>)> = HashMap::new();
        for (rel, rows) in &delta.changes {
            if rel == "MulticastGroup" {
                self.apply_mcast_delta(rows)?;
                continue;
            }
            let Some(binding) = self.tables.get(rel) else { continue };
            for (row, weight) in rows {
                let (target, update) = convert::row_to_update(row, *weight, binding)?;
                let targets: Vec<usize> = match target {
                    Some(t) if t < self.switches.len() => vec![t],
                    Some(_) => vec![],
                    None => (0..self.switches.len()).collect(),
                };
                for t in targets {
                    let bucket = per_switch.entry(t).or_default();
                    if weight < &0 {
                        bucket.0.push(update.clone());
                    } else {
                        bucket.1.push(update.clone());
                    }
                }
            }
        }
        for (t, (dels, ins)) in per_switch {
            let mut updates = dels;
            updates.extend(ins);
            self.metrics.entries_pushed += updates.len() as u64;
            self.switches[t].write_updates(&updates)?;
        }
        self.metrics.event_latencies.push(start.elapsed());
        Ok(delta)
    }

    /// Apply a delta of the convention relation
    /// `output relation MulticastGroup(group, port)` (optionally with a
    /// leading `switch_id` column when there are ≥3 columns): maintain
    /// group membership and push it to the data planes.
    fn apply_mcast_delta(&mut self, rows: &[(Vec<Value>, isize)]) -> Result<(), String> {
        let mut touched: std::collections::BTreeSet<(usize, u16)> = std::collections::BTreeSet::new();
        for (row, w) in rows {
            let (switches, group, port): (Vec<usize>, u16, u16) = match row.len() {
                2 => {
                    let g = row[0].as_u128().ok_or("MulticastGroup: bad group")? as u16;
                    let p = row[1].as_u128().ok_or("MulticastGroup: bad port")? as u16;
                    ((0..self.switches.len()).collect(), g, p)
                }
                3 => {
                    let s = row[0].as_u128().ok_or("MulticastGroup: bad switch")? as usize;
                    let g = row[1].as_u128().ok_or("MulticastGroup: bad group")? as u16;
                    let p = row[2].as_u128().ok_or("MulticastGroup: bad port")? as u16;
                    (vec![s], g, p)
                }
                n => return Err(format!("MulticastGroup must have 2 or 3 columns, has {n}")),
            };
            for s in switches {
                let set = self.mcast.entry((s, group)).or_default();
                if *w > 0 {
                    set.insert(port);
                } else {
                    set.remove(&port);
                }
                touched.insert((s, group));
            }
        }
        for (s, group) in touched {
            if s >= self.switches.len() {
                continue;
            }
            let ports: Vec<u16> = self
                .mcast
                .get(&(s, group))
                .map(|set| set.iter().copied().collect())
                .unwrap_or_default();
            self.switches[s].set_mcast_group(group, ports)?;
        }
        Ok(())
    }

    /// Run a blocking event loop over channels of monitor updates and
    /// digests until `stop` fires. Intended to be called on a dedicated
    /// thread.
    pub fn run_event_loop(
        &mut self,
        monitor_updates: Receiver<Json>,
        digest_feeds: Vec<Receiver<Vec<Digest>>>,
        stop: Receiver<()>,
    ) -> Result<(), String> {
        loop {
            let mut sel = Select::new();
            let mon_idx = sel.recv(&monitor_updates);
            let digest_base = 1 + digest_feeds.len();
            let mut digest_idxs = Vec::new();
            for rx in &digest_feeds {
                digest_idxs.push(sel.recv(rx));
            }
            let stop_idx = sel.recv(&stop);
            let _ = digest_base;
            let op = sel.select();
            let idx = op.index();
            if idx == mon_idx {
                match op.recv(&monitor_updates) {
                    Ok(update) => {
                        self.handle_monitor_update(&update)?;
                    }
                    Err(_) => return Ok(()), // channel closed
                }
            } else if idx == stop_idx {
                let _ = op.recv(&stop);
                return Ok(());
            } else {
                // A digest feed: find which one.
                let pos = digest_idxs.iter().position(|i| *i == idx).unwrap();
                match op.recv(&digest_feeds[pos]) {
                    Ok(digests) => {
                        self.handle_digests(pos, &digests)?;
                    }
                    Err(_) => return Ok(()),
                }
            }
        }
    }
}

use ddlog::Value;
