//! Nerpa: unified full-stack SDN programming (HotNets '22).
//!
//! This crate is the paper's primary contribution: a framework that
//! programs the management plane (an OVSDB-style database), the control
//! plane (an incremental DDlog-style program), and the data plane (P4
//! behavioral switches) **together**:
//!
//! * [`codegen`] generates the control-plane relation declarations from
//!   the management-plane schema and the P4 program, so the whole stack
//!   type-checks as one program;
//! * [`convert`] moves data between the planes without hand-written glue;
//! * [`controller`] is the runtime: OVSDB monitor updates and P4 digests
//!   drive incremental engine transactions whose output deltas become
//!   P4Runtime table writes.
//!
//! ```no_run
//! use nerpa::controller::{Controller, NerpaProgram};
//! use nerpa::codegen::CodegenOptions;
//!
//! let program = NerpaProgram {
//!     schema: ovsdb::Schema::parse(r#"{"name":"db","tables":{}}"#).unwrap(),
//!     p4info: p4sim::P4Info::from_program(
//!         &p4sim::parse_p4(p4sim::parser::DEMO).unwrap()),
//!     rules: String::new(),
//!     options: CodegenOptions::default(),
//! };
//! let controller = Controller::new(&program).unwrap();
//! ```
#![warn(missing_docs)]

pub mod codegen;
pub mod controller;
pub mod convert;
pub mod resync;

pub use codegen::{assemble_program, ovsdb2ddlog, p4info2ddlog, CodegenOptions, Generated};
pub use controller::{Controller, DataPlane, Metrics, NerpaProgram};
pub use resync::{
    BackoffPolicy, MonitorConfig, OvsdbSupervisor, ReconcileReport, ResyncReport, SupervisorStats,
};
