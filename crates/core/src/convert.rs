//! Data conversion between the three planes.
//!
//! "Generated helper functions ... convert data between P4Runtime and
//! DDlog types" (§4.2). Here the helpers are table-driven from the
//! bindings produced by [`crate::codegen`]: OVSDB rows become DDlog
//! tuples, DDlog output rows become P4Runtime table entries, and digests
//! become DDlog input tuples.

use ddlog::value::{Uuid as DUuid, Value};
use ddlog::Type;
use ovsdb::datum::{Atom, Datum};
use ovsdb::db::{RowChange, RowData};
use ovsdb::schema::TableSchema;
use p4sim::runtime::{Digest, FieldMatch, TableEntry, Update, WriteOp};
use serde_json::Value as Json;

use crate::codegen::{DigestBinding, TableBinding};

/// Convert an OVSDB atom to a DDlog value.
pub fn atom_to_value(atom: &Atom) -> Value {
    match atom {
        Atom::Integer(i) => Value::Int(*i as i128),
        Atom::Real(r) => Value::Double(ddlog::value::F64(r.0)),
        Atom::Boolean(b) => Value::Bool(*b),
        Atom::String(s) => Value::str(s),
        Atom::Uuid(u) => Value::Uuid(DUuid(u.0)),
    }
}

/// Convert an OVSDB datum to a DDlog value of the generated type
/// (scalar, `Set<T>`, or `Map<K,V>` — see
/// [`crate::codegen::ovsdb_type_to_ddlog`]).
pub fn datum_to_value(datum: &Datum, ty: &Type) -> Result<Value, String> {
    match (datum, ty) {
        (Datum::Set(s), Type::Set(_)) => Ok(Value::set(s.iter().map(atom_to_value))),
        (Datum::Set(s), _) => {
            let atom = s
                .iter()
                .next()
                .ok_or_else(|| format!("empty set for scalar column of type {ty}"))?;
            if s.len() != 1 {
                return Err(format!("{} atoms for scalar column of type {ty}", s.len()));
            }
            Ok(atom_to_value(atom))
        }
        (Datum::Map(m), Type::Map(_, _)) => Ok(Value::map(
            m.iter().map(|(k, v)| (atom_to_value(k), atom_to_value(v))),
        )),
        (Datum::Map(_), _) => Err(format!("map datum for column of type {ty}")),
    }
}

/// Convert a full OVSDB row to a DDlog tuple: `_uuid` first, then the
/// columns in schema (alphabetical) order.
pub fn row_to_values(
    uuid: ovsdb::Uuid,
    row: &RowData,
    schema: &TableSchema,
    col_types: &[Type],
) -> Result<Vec<Value>, String> {
    let mut out = Vec::with_capacity(schema.columns.len() + 1);
    out.push(Value::Uuid(DUuid(uuid.0)));
    for ((cname, cschema), ty) in schema.columns.iter().zip(&col_types[1..]) {
        let datum = row
            .get(cname)
            .cloned()
            .unwrap_or_else(|| cschema.ty.default_datum());
        out.push(datum_to_value(&datum, ty).map_err(|e| format!("column `{cname}`: {e}"))?);
    }
    Ok(out)
}

/// Translate committed OVSDB row changes into DDlog transaction ops:
/// `(relation, row values, is_insert)`.
pub fn changes_to_ops(
    changes: &[RowChange],
    schema: &ovsdb::Schema,
    rel_types: &dyn Fn(&str) -> Option<Vec<Type>>,
) -> Result<Vec<(String, Vec<Value>, bool)>, String> {
    let mut ops = Vec::new();
    for ch in changes {
        let Some(ts) = schema.table(&ch.table) else {
            continue;
        };
        let Some(types) = rel_types(&ch.table) else {
            continue;
        };
        if let Some(old) = &ch.old {
            ops.push((
                ch.table.clone(),
                row_to_values(ch.uuid, old, ts, &types)?,
                false,
            ));
        }
        if let Some(new) = &ch.new {
            ops.push((
                ch.table.clone(),
                row_to_values(ch.uuid, new, ts, &types)?,
                true,
            ));
        }
    }
    Ok(ops)
}

/// Reconstruct row changes from a monitor `table-updates` JSON object
/// (the TCP path). For modifications the full old row is rebuilt by
/// patching the reported old columns over the new row.
pub fn monitor_update_to_ops(
    updates: &Json,
    schema: &ovsdb::Schema,
    rel_types: &dyn Fn(&str) -> Option<Vec<Type>>,
) -> Result<Vec<(String, Vec<Value>, bool)>, String> {
    let obj = updates
        .as_object()
        .ok_or("table-updates must be an object")?;
    let mut ops = Vec::new();
    for (tname, rows) in obj {
        let Some(ts) = schema.table(tname) else {
            continue;
        };
        let Some(types) = rel_types(tname) else {
            continue;
        };
        let rows = rows.as_object().ok_or("row updates must be an object")?;
        for (uuid_str, update) in rows {
            let uuid =
                ovsdb::Uuid::parse(uuid_str).ok_or_else(|| format!("bad row uuid {uuid_str:?}"))?;
            let old_json = update.get("old");
            let new_json = update.get("new");
            let parse_row = |j: &Json| -> Result<RowData, String> {
                let obj = j.as_object().ok_or("row must be an object")?;
                let mut row = RowData::new();
                for (cname, cval) in obj {
                    if cname == "_uuid" {
                        continue;
                    }
                    let Some(cs) = ts.columns.get(cname) else {
                        continue;
                    };
                    let datum = ovsdb::db::datum_from_json(cval, &cs.ty, &|_| None)?;
                    row.insert(cname.clone(), datum);
                }
                Ok(row)
            };
            match (old_json, new_json) {
                (None, Some(new)) => {
                    let row = parse_row(new)?;
                    ops.push((tname.clone(), row_to_values(uuid, &row, ts, &types)?, true));
                }
                (Some(old), None) => {
                    let row = parse_row(old)?;
                    ops.push((tname.clone(), row_to_values(uuid, &row, ts, &types)?, false));
                }
                (Some(old_changed), Some(new)) => {
                    let new_row = parse_row(new)?;
                    let mut old_row = new_row.clone();
                    for (c, d) in parse_row(old_changed)? {
                        old_row.insert(c, d);
                    }
                    ops.push((
                        tname.clone(),
                        row_to_values(uuid, &old_row, ts, &types)?,
                        false,
                    ));
                    ops.push((
                        tname.clone(),
                        row_to_values(uuid, &new_row, ts, &types)?,
                        true,
                    ));
                }
                (None, None) => {}
            }
        }
    }
    Ok(ops)
}

/// Convert a digest into a DDlog input tuple.
pub fn digest_to_values(
    digest: &Digest,
    binding: &DigestBinding,
    switch_id: usize,
) -> Result<Vec<Value>, String> {
    let mut out = Vec::with_capacity(binding.fields.len() + 1);
    if binding.per_switch {
        out.push(Value::Int(switch_id as i128));
    }
    for (fname, width) in &binding.fields {
        let v = digest
            .field(fname)
            .ok_or_else(|| format!("digest `{}` missing field `{fname}`", digest.name))?;
        out.push(Value::bit(*width, v));
    }
    Ok(out)
}

/// Convert one DDlog output row into a P4Runtime update, returning the
/// target switch (`None` = broadcast to all switches).
pub fn row_to_update(
    row: &[Value],
    weight: isize,
    binding: &TableBinding,
) -> Result<(Option<usize>, Update), String> {
    let mut i = 0;
    let mut next = |what: &str| -> Result<&Value, String> {
        let v = row.get(i).ok_or_else(|| {
            format!(
                "row too short for `{}` at column {i} ({what})",
                binding.relation
            )
        })?;
        i += 1;
        Ok(v)
    };
    let switch = if binding.per_switch {
        let v = next("switch_id")?;
        Some(v.as_i128().ok_or("switch_id must be an integer")? as usize)
    } else {
        None
    };
    let mut matches = Vec::with_capacity(binding.table.keys.len());
    for k in &binding.table.keys {
        match k.match_kind.as_str() {
            "exact" => {
                let v = next("key")?.as_u128().ok_or("key must be numeric")?;
                matches.push(FieldMatch::Exact { value: v });
            }
            "lpm" => {
                let v = next("key")?.as_u128().ok_or("key must be numeric")?;
                let plen = next("prefix_len")?
                    .as_u128()
                    .ok_or("prefix_len must be numeric")? as u16;
                matches.push(FieldMatch::Lpm {
                    value: v,
                    prefix_len: plen,
                });
            }
            "ternary" => {
                let v = next("key")?.as_u128().ok_or("key must be numeric")?;
                let m = next("mask")?.as_u128().ok_or("mask must be numeric")?;
                matches.push(FieldMatch::Ternary {
                    value: v & m,
                    mask: m,
                });
            }
            other => return Err(format!("unknown match kind {other}")),
        }
    }
    let priority = if binding.has_priority {
        next("priority")?
            .as_i128()
            .ok_or("priority must be an integer")? as i32
    } else {
        0
    };
    let action = next("action")?
        .as_str()
        .ok_or("action must be a string")?
        .to_string();
    let action_info = binding
        .table
        .actions
        .iter()
        .find(|a| a.name == action)
        .ok_or_else(|| format!("table `{}` has no action `{action}`", binding.relation))?;
    // Param columns: pick only the ones belonging to the chosen action.
    let mut params = vec![0u128; action_info.params.len()];
    for (_, owner, idx) in &binding.param_cols {
        let v = next("param")?.as_u128().ok_or("param must be numeric")?;
        if owner == &action {
            params[*idx] = v;
        }
    }
    let entry = TableEntry {
        table: binding.relation.clone(),
        matches,
        priority,
        action,
        params,
    };
    let op = if weight > 0 {
        WriteOp::Insert
    } else {
        WriteOp::Delete
    };
    Ok((switch, Update { op, entry }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::p4info::{ActionInfo, KeyInfo, ParamInfo, TableInfo};

    fn binding() -> TableBinding {
        TableBinding {
            relation: "MacLearned".into(),
            table: TableInfo {
                name: "MacLearned".into(),
                control: "ingress".into(),
                keys: vec![
                    KeyInfo {
                        name: "vlan".into(),
                        width: 12,
                        match_kind: "exact".into(),
                    },
                    KeyInfo {
                        name: "mac".into(),
                        width: 48,
                        match_kind: "exact".into(),
                    },
                ],
                actions: vec![
                    ActionInfo {
                        name: "output".into(),
                        params: vec![ParamInfo {
                            name: "port".into(),
                            width: 9,
                        }],
                    },
                    ActionInfo {
                        name: "flood".into(),
                        params: vec![],
                    },
                ],
                size: 1024,
            },
            per_switch: false,
            has_priority: false,
            param_cols: vec![("output_port".into(), "output".into(), 0)],
        }
    }

    #[test]
    fn output_row_to_insert() {
        let row = vec![
            Value::bit(12, 10),
            Value::bit(48, 0xAB),
            Value::str("output"),
            Value::bit(9, 3),
        ];
        let (sw, up) = row_to_update(&row, 1, &binding()).unwrap();
        assert_eq!(sw, None);
        assert_eq!(up.op, WriteOp::Insert);
        assert_eq!(
            up.entry.matches,
            vec![
                FieldMatch::Exact { value: 10 },
                FieldMatch::Exact { value: 0xAB },
            ]
        );
        assert_eq!(up.entry.params, vec![3]);

        let (_, down) = row_to_update(&row, -1, &binding()).unwrap();
        assert_eq!(down.op, WriteOp::Delete);
    }

    #[test]
    fn unused_action_params_dropped() {
        // Action `flood` has no params; the output_port column value is
        // present in the row but must be ignored.
        let row = vec![
            Value::bit(12, 10),
            Value::bit(48, 0xAB),
            Value::str("flood"),
            Value::bit(9, 3),
        ];
        let (_, up) = row_to_update(&row, 1, &binding()).unwrap();
        assert_eq!(up.entry.action, "flood");
        assert!(up.entry.params.is_empty());
    }

    #[test]
    fn unknown_action_rejected() {
        let row = vec![
            Value::bit(12, 10),
            Value::bit(48, 0xAB),
            Value::str("zap"),
            Value::bit(9, 3),
        ];
        assert!(row_to_update(&row, 1, &binding()).is_err());
    }

    #[test]
    fn datum_conversions() {
        // Scalar.
        let d = Datum::scalar(Atom::i(5));
        assert_eq!(datum_to_value(&d, &Type::Int).unwrap(), Value::Int(5));
        // Optional-as-set.
        let d = Datum::set(vec![Atom::i(1), Atom::i(2)]);
        let v = datum_to_value(&d, &Type::Set(Box::new(Type::Int))).unwrap();
        assert_eq!(v, Value::set(vec![Value::Int(1), Value::Int(2)]));
        // Scalar column with empty set: error.
        assert!(datum_to_value(&Datum::empty(), &Type::Int).is_err());
        // Map.
        let d = Datum::map(vec![(Atom::s("k"), Atom::s("v"))]);
        let v = datum_to_value(&d, &Type::Map(Box::new(Type::Str), Box::new(Type::Str))).unwrap();
        assert_eq!(v, Value::map(vec![(Value::str("k"), Value::str("v"))]));
    }

    #[test]
    fn digest_conversion() {
        let b = DigestBinding {
            relation: "d".into(),
            fields: vec![("port".into(), 9), ("mac".into(), 48)],
            per_switch: true,
        };
        let d = Digest {
            name: "d".into(),
            fields: vec![("port".into(), 2), ("mac".into(), 7)],
        };
        let vals = digest_to_values(&d, &b, 4).unwrap();
        assert_eq!(
            vals,
            vec![Value::Int(4), Value::bit(9, 2), Value::bit(48, 7)]
        );
        // Missing field errors.
        let bad = Digest {
            name: "d".into(),
            fields: vec![("port".into(), 2)],
        };
        assert!(digest_to_values(&bad, &b, 0).is_err());
    }
}
