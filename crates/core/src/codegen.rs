//! Cross-plane code generation — the heart of Nerpa's co-design story
//! (§3–§4.2 of the paper).
//!
//! * [`ovsdb2ddlog`] generates one DDlog **input** relation per
//!   management-plane table (the paper's `ovsdb2ddlog` tool);
//! * [`p4info2ddlog`] generates one DDlog **output** relation per P4
//!   match-action table and one **input** relation per packet digest
//!   (the paper's `p4info2ddlog` tool).
//!
//! The generated declarations are concatenated with the programmer's
//! rules and compiled together, so any mismatch between planes surfaces
//! as a type error — "all three parts are type-checked together".

use ovsdb::schema::{ColumnType, Schema};
use p4sim::p4info::{P4Info, TableInfo};

/// How a P4 table maps onto its generated DDlog output relation.
#[derive(Debug, Clone)]
pub struct TableBinding {
    /// Relation (and table) name.
    pub relation: String,
    /// The P4 table description.
    pub table: TableInfo,
    /// True when a leading `switch_id: bigint` column routes entries to a
    /// specific switch.
    pub per_switch: bool,
    /// True when the relation carries a `priority: bigint` column
    /// (any ternary key forces it).
    pub has_priority: bool,
    /// Parameter columns: (column name, action it belongs to, param index).
    pub param_cols: Vec<(String, String, usize)>,
}

/// How a digest maps onto its generated DDlog input relation.
#[derive(Debug, Clone)]
pub struct DigestBinding {
    /// Relation (and digest struct) name.
    pub relation: String,
    /// Field names and widths, in order. A leading implicit
    /// `switch_id: bigint` column is added when `per_switch`.
    pub fields: Vec<(String, u16)>,
    /// True when digests are tagged with the originating switch.
    pub per_switch: bool,
}

/// Options controlling generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenOptions {
    /// Add `switch_id: bigint` columns so one control plane can program
    /// several switches running the same P4 program (the paper's
    /// multi-device deployment).
    pub per_switch: bool,
}

/// Generated code plus the bindings the controller needs at runtime.
#[derive(Debug, Clone, Default)]
pub struct Generated {
    /// DDlog source text (relation declarations only).
    pub source: String,
    /// P4-table bindings.
    pub tables: Vec<TableBinding>,
    /// Digest bindings.
    pub digests: Vec<DigestBinding>,
    /// Names of generated OVSDB input relations.
    pub ovsdb_relations: Vec<String>,
}

/// Map an OVSDB column type to a DDlog type expression.
///
/// Optional scalars (`min 0, max 1`) become `Set<T>` — faithfully
/// mirroring OVSDB's "a scalar is a set of size one" data model.
pub fn ovsdb_type_to_ddlog(ct: &ColumnType) -> String {
    let base = |bt: &ovsdb::schema::BaseType| -> &'static str {
        match bt.ty {
            ovsdb::AtomType::Integer => "bigint",
            ovsdb::AtomType::Real => "double",
            ovsdb::AtomType::Boolean => "bool",
            ovsdb::AtomType::String => "string",
            ovsdb::AtomType::Uuid => "uuid",
        }
    };
    if let Some(v) = &ct.value {
        return format!("Map<{},{}>", base(&ct.key), base(v));
    }
    if ct.min == 1 && ct.max == 1 {
        return base(&ct.key).to_string();
    }
    format!("Set<{}>", base(&ct.key))
}

/// Generate input relations for every table of an OVSDB schema.
pub fn ovsdb2ddlog(schema: &Schema) -> Generated {
    let mut src = String::new();
    let mut rels = Vec::new();
    src.push_str(&format!(
        "// ---- generated from OVSDB schema `{}` (version {}) ----\n",
        schema.name, schema.version
    ));
    for (tname, table) in &schema.tables {
        let mut cols = vec!["_uuid: uuid".to_string()];
        for (cname, col) in &table.columns {
            cols.push(format!(
                "{}: {}",
                sanitize(cname),
                ovsdb_type_to_ddlog(&col.ty)
            ));
        }
        src.push_str(&format!("input relation {}({})\n", tname, cols.join(", ")));
        rels.push(tname.clone());
    }
    Generated {
        source: src,
        ovsdb_relations: rels,
        ..Default::default()
    }
}

/// Generate output relations for every P4 table and input relations for
/// every digest.
pub fn p4info2ddlog(info: &P4Info, opts: CodegenOptions) -> Generated {
    let mut src = String::new();
    let mut tables = Vec::new();
    let mut digests = Vec::new();
    src.push_str(&format!(
        "// ---- generated from P4 program `{}` ----\n",
        info.program
    ));
    for t in &info.tables {
        let mut cols = Vec::new();
        if opts.per_switch {
            cols.push("switch_id: bigint".to_string());
        }
        let mut has_priority = false;
        for k in &t.keys {
            let kname = sanitize(&k.name);
            match k.match_kind.as_str() {
                "exact" => cols.push(format!("{kname}: bit<{}>", k.width)),
                "lpm" => {
                    cols.push(format!("{kname}: bit<{}>", k.width));
                    cols.push(format!("{kname}_prefix_len: bigint"));
                }
                "ternary" => {
                    cols.push(format!("{kname}: bit<{}>", k.width));
                    cols.push(format!("{kname}_mask: bit<{}>", k.width));
                    has_priority = true;
                }
                other => unreachable!("unknown match kind {other}"),
            }
        }
        if has_priority {
            cols.push("priority: bigint".to_string());
        }
        cols.push("action: string".to_string());
        let mut param_cols = Vec::new();
        for a in &t.actions {
            for (i, p) in a.params.iter().enumerate() {
                let col = format!("{}_{}", a.name, p.name);
                cols.push(format!("{col}: bit<{}>", p.width));
                param_cols.push((col, a.name.clone(), i));
            }
        }
        src.push_str(&format!(
            "output relation {}({})\n",
            t.name,
            cols.join(", ")
        ));
        tables.push(TableBinding {
            relation: t.name.clone(),
            table: t.clone(),
            per_switch: opts.per_switch,
            has_priority,
            param_cols,
        });
    }
    for d in &info.digests {
        let mut cols = Vec::new();
        if opts.per_switch {
            cols.push("switch_id: bigint".to_string());
        }
        for f in &d.fields {
            cols.push(format!("{}: bit<{}>", sanitize(&f.name), f.width));
        }
        src.push_str(&format!("input relation {}({})\n", d.name, cols.join(", ")));
        digests.push(DigestBinding {
            relation: d.name.clone(),
            fields: d.fields.iter().map(|f| (f.name.clone(), f.width)).collect(),
            per_switch: opts.per_switch,
        });
    }
    Generated {
        source: src,
        tables,
        digests,
        ..Default::default()
    }
}

/// Turn a P4 key name like `std.ingress_port` or `hdr.eth.dst` into a
/// valid DDlog column identifier.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    // Strip the standard prefixes for readability: std_x → x,
    // hdr_eth_dst stays distinctive.
    if let Some(rest) = out.strip_prefix("std_") {
        out = rest.to_string();
    }
    if let Some(rest) = out.strip_prefix("meta_") {
        out = rest.to_string();
    }
    out
}

/// Combine generated declarations with hand-written rules into a full
/// program source. This is the "unified program" the developer ships.
pub fn assemble_program(parts: &[&Generated], rules: &str) -> String {
    let mut src = String::new();
    for p in parts {
        src.push_str(&p.source);
        src.push('\n');
    }
    src.push_str("// ---- hand-written control-plane rules ----\n");
    src.push_str(rules);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn demo_schema() -> Schema {
        Schema::from_json(&json!({
            "name": "snvs",
            "tables": {
                "Port": {"columns": {
                    "id": {"type": "integer"},
                    "vlan_mode": {"type": {"key": "string", "min": 0, "max": 1}},
                    "tag": {"type": {"key": "integer", "min": 0, "max": 1}},
                    "trunks": {"type": {"key": "integer", "min": 0, "max": "unlimited"}},
                    "options": {"type": {"key": "string", "value": "string",
                                 "min": 0, "max": "unlimited"}}
                }, "isRoot": true}
            }
        }))
        .unwrap()
    }

    #[test]
    fn ovsdb_generation() {
        let gen = ovsdb2ddlog(&demo_schema());
        assert!(
            gen.source.contains(
                "input relation Port(_uuid: uuid, id: bigint, options: Map<string,string>, \
             tag: Set<bigint>, trunks: Set<bigint>, vlan_mode: Set<string>)"
            ),
            "{}",
            gen.source
        );
        assert_eq!(gen.ovsdb_relations, vec!["Port"]);
    }

    #[test]
    fn p4info_generation() {
        let prog = p4sim::parse_p4(p4sim::parser::DEMO).unwrap();
        let info = P4Info::from_program(&prog);
        let gen = p4info2ddlog(&info, CodegenOptions::default());
        assert!(
            gen.source.contains(
                "output relation InVlan(ingress_port: bit<16>, action: string, set_vlan_vid: bit<12>)"
            ),
            "{}",
            gen.source
        );
        assert!(
            gen.source.contains(
                "output relation MacLearned(vlan_id: bit<12>, hdr_eth_dst: bit<48>, \
                 action: string, output_port: bit<16>)"
            ),
            "{}",
            gen.source
        );
        assert!(gen.source.contains(
            "input relation mac_learn_digest_t(port: bit<16>, mac: bit<48>, vlan: bit<12>)"
        ));
        assert_eq!(gen.tables.len(), 2);
        assert_eq!(gen.digests.len(), 1);
    }

    #[test]
    fn per_switch_columns() {
        let prog = p4sim::parse_p4(p4sim::parser::DEMO).unwrap();
        let info = P4Info::from_program(&prog);
        let gen = p4info2ddlog(&info, CodegenOptions { per_switch: true });
        assert!(gen
            .source
            .contains("output relation InVlan(switch_id: bigint, "));
        assert!(gen
            .source
            .contains("input relation mac_learn_digest_t(switch_id: bigint, "));
    }

    #[test]
    fn generated_code_typechecks_with_rules() {
        // Fig. 5 of the paper: the InVlan output relation computed from
        // the Port input relation by one hand-written rule.
        let schema_gen = ovsdb2ddlog(&demo_schema());
        let prog = p4sim::parse_p4(p4sim::parser::DEMO).unwrap();
        let p4_gen = p4info2ddlog(&P4Info::from_program(&prog), CodegenOptions::default());
        let rules = r#"
            InVlan(id as bit<16>, "set_vlan", tag as bit<12>) :-
                Port(_, id, _, tags, _, modes),
                set_contains(modes, "access"),
                var tag = FlatMap(tags).
        "#;
        let src = assemble_program(&[&schema_gen, &p4_gen], rules);
        let engine = ddlog::Engine::from_source(&src);
        assert!(engine.is_ok(), "{src}\n{:?}", engine.err());
    }

    #[test]
    fn type_mismatch_across_planes_rejected() {
        // The paper's correctness claim: using a management-plane column
        // at the wrong data-plane width is a compile error.
        let schema_gen = ovsdb2ddlog(&demo_schema());
        let prog = p4sim::parse_p4(p4sim::parser::DEMO).unwrap();
        let p4_gen = p4info2ddlog(&P4Info::from_program(&prog), CodegenOptions::default());
        let rules = r#"
            InVlan(id, "set_vlan", 1) :- Port(_, id, _, _, _, _).
        "#; // `id` is bigint, key is bit<16>: must not typecheck
        let src = assemble_program(&[&schema_gen, &p4_gen], rules);
        assert!(ddlog::Engine::from_source(&src).is_err());
    }

    #[test]
    fn lpm_and_ternary_columns() {
        let p4 = r#"
            header ipv4_t { bit<32> src; bit<32> dst; bit<8> proto; }
            struct headers_t { ipv4_t ip; }
            struct meta_t { bit<1> unused; }
            parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
                     inout standard_metadata_t std) {
                state start { pkt.extract(hdr.ip); transition accept; }
            }
            control I(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) {
                action fwd(bit<16> port) { std.egress_spec = port; }
                action deny() { mark_to_drop(); }
                table Route {
                    key = { hdr.ip.dst: lpm; }
                    actions = { fwd; }
                }
                table Acl {
                    key = { hdr.ip.src: ternary; hdr.ip.proto: exact; }
                    actions = { deny; fwd; }
                }
                apply { Acl.apply(); Route.apply(); }
            }
            control E(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) { apply { } }
            V1Switch(P(), I(), E()) main;
        "#;
        let prog = p4sim::parse_p4(p4).unwrap();
        let gen = p4info2ddlog(&P4Info::from_program(&prog), CodegenOptions::default());
        assert!(
            gen.source.contains(
                "output relation Route(hdr_ip_dst: bit<32>, hdr_ip_dst_prefix_len: bigint, \
             action: string, fwd_port: bit<16>)"
            ),
            "{}",
            gen.source
        );
        assert!(
            gen.source.contains(
                "output relation Acl(hdr_ip_src: bit<32>, hdr_ip_src_mask: bit<32>, \
             hdr_ip_proto: bit<8>, priority: bigint, action: string, deny"
            ) || gen.source.contains(
                "output relation Acl(hdr_ip_src: bit<32>, hdr_ip_src_mask: bit<32>, \
             hdr_ip_proto: bit<8>, priority: bigint, action: string, fwd_port: bit<16>)"
            ),
            "{}",
            gen.source
        );
        let acl = gen.tables.iter().find(|t| t.relation == "Acl").unwrap();
        assert!(acl.has_priority);
    }
}
