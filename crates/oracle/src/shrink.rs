//! Delta-debugging (ddmin) over workload op sequences.
//!
//! Classic Zeller/Hildebrandt ddmin: partition the failing sequence into
//! `n` chunks, try each chunk and each complement, keep any candidate
//! that still fails, and refine the granularity until single-op removal
//! no longer helps. The predicate re-runs the full deterministic harness
//! on each candidate, so the result is a genuinely minimal reproducing
//! transaction sequence (1-minimal: removing any single op makes the
//! failure disappear).

use crate::workload::WorkloadOp;

/// Minimize `ops` with respect to `fails` (which must return `true` for
/// `ops` itself; if it does not, `ops` is returned unchanged).
pub fn ddmin(ops: &[WorkloadOp], mut fails: impl FnMut(&[WorkloadOp]) -> bool) -> Vec<WorkloadOp> {
    let mut current: Vec<WorkloadOp> = ops.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        // Try complements (remove one chunk at a time): the usual fast
        // path, shrinking by a factor of n/(n-1) per hit.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<WorkloadOp> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        // Try single chunks (keep one chunk only).
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<WorkloadOp> = current[start..end].to_vec();
            if candidate.len() < current.len() && fails(&candidate) {
                current = candidate;
                n = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }
        if n >= current.len() {
            break; // single-op granularity exhausted: 1-minimal
        }
        n = (n * 2).min(current.len());
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadOp;

    fn op(port: u16) -> WorkloadOp {
        WorkloadOp::RemovePort { port }
    }

    #[test]
    fn shrinks_to_single_culprit() {
        // Failure iff the sequence contains port 13.
        let ops: Vec<WorkloadOp> = (0..50).map(op).collect();
        let out = ddmin(&ops, |c| {
            c.iter()
                .any(|o| matches!(o, WorkloadOp::RemovePort { port: 13 }))
        });
        assert_eq!(out, vec![op(13)]);
    }

    #[test]
    fn shrinks_to_minimal_pair() {
        // Failure needs both port 3 and port 40 (order-independent).
        let ops: Vec<WorkloadOp> = (0..50).map(op).collect();
        let has = |c: &[WorkloadOp], want: u16| {
            c.iter()
                .any(|o| matches!(o, WorkloadOp::RemovePort { port } if *port == want))
        };
        let out = ddmin(&ops, |c| has(c, 3) && has(c, 40));
        assert_eq!(out.len(), 2);
        assert!(has(&out, 3) && has(&out, 40));
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let ops: Vec<WorkloadOp> = (0..5).map(op).collect();
        let out = ddmin(&ops, |_| false);
        assert_eq!(out, ops);
    }
}
