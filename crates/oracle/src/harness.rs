//! The lockstep differential harness.
//!
//! Two controllers consume the same workload:
//!
//! * the **incremental** side is the real pipeline — an
//!   [`ovsdb::Database`], a [`nerpa::Controller`] holding the snvs DDlog
//!   program, and a [`p4sim::service::SwitchDevice`];
//! * the **baseline** side is [`baselines::FullRecompute`] reconciling
//!   its own `SwitchDevice` from a plain-Rust model of the management
//!   state.
//!
//! After every step (while the management link is up) the harness
//! asserts the two data planes are identical and that the cross-plane
//! invariants hold: engine inputs mirror the database, every installed
//! entry is traceable to an output-relation tuple, no Z-set weight is
//! non-positive, and the database's uniqueness indexes are intact.

use std::collections::{BTreeMap, BTreeSet};

use baselines::{FullRecompute, LearnedMac, Mode, PortConfig};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use nerpa::resync;
use ovsdb::db::RowChange;
use p4sim::runtime::{Digest, FieldMatch, TableEntry, Update, WriteOp};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;

use crate::workload::{FaultKind, FaultPlan, WorkloadOp};

/// A deliberately-introduced controller defect, used to demonstrate
/// that the oracle catches real bug classes and shrinks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// The post-reconnect resync forgets to retract rows that were
    /// deleted while the link was down (stale state survives recovery).
    SkipResyncDeletes,
    /// The monitor-update handler drops row deletions entirely (a
    /// classic "handles inserts, forgets deletes" controller bug).
    DropConfigDeletes,
    /// The engine skips arrangement (index) maintenance on retractions:
    /// ghost rows linger in the shared join indexes, so joins keep
    /// deriving flows from deleted state while the relation itself looks
    /// correct — the evaluator-level analogue of a stale cache.
    StaleArrangement,
}

impl InjectedBug {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<InjectedBug> {
        match s {
            "skip-resync-deletes" => Some(InjectedBug::SkipResyncDeletes),
            "drop-config-deletes" => Some(InjectedBug::DropConfigDeletes),
            "stale-arrangement" => Some(InjectedBug::StaleArrangement),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            InjectedBug::SkipResyncDeletes => "skip-resync-deletes",
            InjectedBug::DropConfigDeletes => "drop-config-deletes",
            InjectedBug::StaleArrangement => "stale-arrangement",
        }
    }
}

/// Configuration of one oracle run.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Workload seed.
    pub seed: u64,
    /// Number of workload steps.
    pub steps: usize,
    /// Chaos seed: when set, a [`FaultPlan`] derived from it injects
    /// management-link outages and switch restarts.
    pub chaos: Option<u64>,
    /// When true (and `chaos` is set), the fault plan also schedules
    /// abrupt server-process crashes with torn WAL tails; the run uses a
    /// durable database and checks crash-equivalence on every crash.
    pub crashes: bool,
    /// Deliberate controller defect to inject.
    pub bug: Option<InjectedBug>,
    /// When non-zero, run the sharded harness instead
    /// ([`crate::sharded::run_sharded_oracle`]): a `ShardSet` of this
    /// many engines over as many switches, checked for cross-shard
    /// equivalence against one unsharded controller and the
    /// full-recompute spec at every step.
    pub shards: usize,
}

impl OracleConfig {
    /// A fault-free, bug-free run.
    pub fn new(seed: u64, steps: usize) -> OracleConfig {
        OracleConfig {
            seed,
            steps,
            chaos: None,
            crashes: false,
            bug: None,
            shards: 0,
        }
    }
}

/// Statistics from a successful run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Steps executed.
    pub steps: usize,
    /// Management-link outages injected.
    pub outages: usize,
    /// Switch restarts injected.
    pub switch_restarts: usize,
    /// Server-process crashes injected (with recovery from the WAL).
    pub crashes: usize,
    /// Crashes whose WAL tail was actually torn (a committed record
    /// partially persisted and then truncated on recovery).
    pub torn_tails: usize,
    /// Table entries installed at the end of the run.
    pub final_entries: usize,
    /// Multicast groups installed at the end of the run.
    pub final_groups: usize,
    /// Engine transactions committed by the incremental controller.
    pub transactions: u64,
}

/// A failed step: which step, which op, and why.
#[derive(Debug, Clone)]
pub struct StepFailure {
    /// 0-based index of the failing step.
    pub step: usize,
    /// The op applied at that step (`None` if the failure happened
    /// during setup or a fault transition).
    pub op: Option<WorkloadOp>,
    /// Which invariant broke, with detail.
    pub reason: String,
    /// Rendered [`ddlog::WorkProfile`] of the engine commit closest to
    /// the failure — which operators did the work and how much (`None`
    /// if the engine never committed).
    pub work_profile: Option<String>,
    /// Provenance dump for the first diverging tuple: a `why` derivation
    /// tree for a stale installed entry (which base fact still supports
    /// it), or a `why_not` report for a missing one (which literal
    /// blocks it). `None` when the failure is not a state divergence.
    pub why_dump: Option<String>,
}

impl std::fmt::Display for StepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}", self.step)?;
        if let Some(op) = &self.op {
            write!(f, " ({op:?})")?;
        }
        write!(f, ": {}", self.reason)
    }
}

/// A failure plus the shrunk reproduction.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The original failure.
    pub failure: StepFailure,
    /// Length of the originally-failing workload.
    pub original_len: usize,
    /// Minimal reproducing op sequence found by ddmin.
    pub shrunk: Vec<WorkloadOp>,
    /// Prometheus-style metrics snapshot captured at the moment the
    /// invariant broke, before the ddmin re-runs perturb the registry.
    pub metrics_snapshot: String,
    /// Rendered span tree of the last change that flowed through the
    /// stack before the failure (`None` if nothing was traced).
    pub failing_trace: Option<String>,
    /// Flight-recorder dump (`.nfr`) snapshotted at the moment the
    /// invariant broke — the black box attached to the counterexample.
    /// Inspect with `nerpa-flight show`.
    pub dump_path: Option<std::path::PathBuf>,
}

const MONITORED: [&str; 2] = ["Port", "Switch"];

/// A scratch durability directory for a crash-capable run, removed when
/// the harness is dropped (including on panic or early return).
struct DurableDir(std::path::PathBuf);

impl DurableDir {
    fn new() -> DurableDir {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("nerpa-oracle-wal-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DurableDir(dir)
    }
}

impl Drop for DurableDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Durability settings for crash-capable oracle runs: fsync suppressed
/// (the oracle tears files, not the page cache, so syncs only cost
/// time), compaction threshold low enough that seeded runs exercise
/// snapshot+suffix recovery, not just log replay.
fn oracle_durability() -> ovsdb::DurabilityConfig {
    ovsdb::DurabilityConfig {
        fsync: ovsdb::FsyncPolicy::Never,
        snapshot_after_bytes: 16 * 1024,
    }
}

struct Harness {
    db: ovsdb::Database,
    controller: Controller,
    device: SwitchDevice,
    program: p4sim::ast::Program,
    baseline: FullRecompute,
    base_device: SwitchDevice,
    ports: Vec<PortConfig>,
    macs: Vec<LearnedMac>,
    live_macs: BTreeSet<(u16, u64, u16)>,
    connected: bool,
    outage_remaining: usize,
    bug: Option<InjectedBug>,
    /// Scratch durability directory (crash-capable runs only).
    durable: Option<DurableDir>,
    /// Monitor-snapshot of the database before the most recent committed
    /// transaction — the committed prefix a torn-tail recovery must land
    /// on.
    pre_last_commit: String,
    /// Monitor-snapshot after the most recent committed transaction.
    post_last_commit: String,
    /// The most recent committed transaction's ops (re-applied after a
    /// torn-tail recovery, since the client was already acked).
    last_ops: Option<serde_json::Value>,
}

impl Harness {
    fn new(bug: Option<InjectedBug>, durable: bool) -> Result<Harness, String> {
        let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA)?;
        let program = p4sim::parse_p4(snvs::assets::SNVS_P4).map_err(|e| e.to_string())?;
        let nerpa_program = NerpaProgram {
            schema: schema.clone(),
            p4info: p4sim::P4Info::from_program(&program),
            rules: snvs::assets::SNVS_RULES.to_string(),
            options: CodegenOptions { per_switch: true },
        };
        // Provenance stays on for every oracle run: when an invariant
        // breaks, the failure report explains the first diverging tuple
        // from its derivation tree.
        let mut controller = Controller::new_with(&nerpa_program, ddlog::ProvenanceConfig::on())?;
        // Every oracle step also audits incrementality: commit work must
        // stay proportional to the input + output deltas. Generous
        // budget — DRed on MAC-learning churn legitimately over-deletes.
        controller.set_work_audit(Some(ddlog::AuditConfig {
            ratio: 64,
            slack: 4096,
        }));
        if bug == Some(InjectedBug::StaleArrangement) {
            controller.inject_stale_arrangement(true);
        }
        let device = SwitchDevice::new(Switch::new(program.clone()));
        controller.add_switch(Box::new(device.clone()));
        let (db, durable) = if durable {
            let dir = DurableDir::new();
            let (db, _) = ovsdb::Database::open(&dir.0, schema, oracle_durability())
                .map_err(|e| e.to_string())?;
            (db, Some(dir))
        } else {
            (ovsdb::Database::new(schema), None)
        };
        let base_device = SwitchDevice::new(Switch::new(program.clone()));
        let mut harness = Harness {
            db,
            controller,
            device,
            program,
            baseline: FullRecompute::new(),
            base_device,
            ports: Vec::new(),
            macs: Vec::new(),
            live_macs: BTreeSet::new(),
            connected: true,
            outage_remaining: 0,
            bug,
            durable,
            pre_last_commit: String::new(),
            post_last_commit: String::new(),
            last_ops: None,
        };
        harness.pre_last_commit = harness.db.monitor_snapshot(&MONITORED)?.to_string();
        harness.post_last_commit = harness.pre_last_commit.clone();
        let changes = harness.commit(json!([
            {"op": "insert", "table": "Switch", "row": {"idx": 0}}
        ]))?;
        harness.controller.handle_row_changes(&changes)?;
        Ok(harness)
    }

    /// Run one transaction against the database, maintaining the
    /// crash-equivalence bookkeeping: the committed-prefix snapshots and
    /// the last acked ops.
    fn commit(&mut self, ops: serde_json::Value) -> Result<Vec<RowChange>, String> {
        let pre = self.db.monitor_snapshot(&MONITORED)?.to_string();
        let before = self.db.commit_index();
        let (results, changes) = self.db.transact(&ops);
        if self.db.commit_index() == before {
            return Err(format!("oracle transaction aborted: {results}"));
        }
        self.pre_last_commit = pre;
        self.post_last_commit = self.db.monitor_snapshot(&MONITORED)?.to_string();
        self.last_ops = Some(ops);
        Ok(changes)
    }

    /// Feed committed row changes to the controller, through the
    /// injected bug filter if one is armed.
    fn deliver(&mut self, changes: &[RowChange]) -> Result<(), String> {
        if !self.connected {
            return Ok(()); // the monitor link is down: updates are lost
        }
        if self.bug == Some(InjectedBug::DropConfigDeletes) {
            let kept: Vec<RowChange> = changes
                .iter()
                .filter(|c| c.new.is_some())
                .cloned()
                .collect();
            self.controller.handle_row_changes(&kept)?;
        } else {
            self.controller.handle_row_changes(changes)?;
        }
        Ok(())
    }

    fn port_row_json(cfg: &PortConfig) -> serde_json::Value {
        let mirror: Vec<u16> = cfg.mirror.into_iter().collect();
        match &cfg.mode {
            Mode::Access(v) => json!({
                "id": cfg.id,
                "vlan_mode": "access",
                "tag": v,
                "trunks": ["set", []],
                "mirror_dst": ["set", mirror],
            }),
            Mode::Trunk(vs) => json!({
                "id": cfg.id,
                "vlan_mode": "trunk",
                "trunks": ["set", vs],
                "mirror_dst": ["set", mirror],
            }),
        }
    }

    /// Upsert a port in the database and the plain model.
    fn upsert_port(&mut self, cfg: PortConfig) -> Result<(), String> {
        let row = Self::port_row_json(&cfg);
        let changes = self.commit(json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", cfg.id]]},
            {"op": "insert", "table": "Port", "row": row},
        ]))?;
        self.deliver(&changes)?;
        self.ports.retain(|p| p.id != cfg.id);
        self.ports.push(cfg);
        Ok(())
    }

    fn remove_port(&mut self, id: u16) -> Result<(), String> {
        let changes = self.commit(json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", id]]},
        ]))?;
        self.deliver(&changes)?;
        self.ports.retain(|p| p.id != id);
        Ok(())
    }

    fn digest(port: u16, mac: u64, vlan: u16) -> Digest {
        Digest {
            name: "mac_learn_t".into(),
            fields: vec![
                ("port".into(), port as u128),
                ("mac".into(), mac as u128),
                ("vlan".into(), vlan as u128),
            ],
        }
    }

    fn apply(&mut self, op: &WorkloadOp) -> Result<(), String> {
        match op {
            WorkloadOp::AddAccess { port, vlan } => {
                self.upsert_port(PortConfig::access(*port, *vlan))?;
            }
            WorkloadOp::AddTrunk { port, vlans } => {
                self.upsert_port(PortConfig::trunk(*port, vlans.clone()))?;
            }
            WorkloadOp::FlipMode { port } => {
                let Some(cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                let mut next = match &cur.mode {
                    Mode::Access(v) => PortConfig::trunk(cur.id, vec![*v]),
                    Mode::Trunk(vs) => {
                        PortConfig::access(cur.id, vs.first().copied().unwrap_or(10))
                    }
                };
                next.mirror = cur.mirror;
                self.upsert_port(next)?;
            }
            WorkloadOp::SetMirror { port, dst } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = Some(*dst);
                self.upsert_port(cur)?;
            }
            WorkloadOp::ClearMirror { port } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = None;
                self.upsert_port(cur)?;
            }
            WorkloadOp::RemovePort { port } => {
                self.remove_port(*port)?;
            }
            WorkloadOp::Learn { port, mac, vlan } => {
                if !self.live_macs.insert((*port, *mac, *vlan)) {
                    return Ok(()); // already learned: the switch dedups
                }
                self.controller
                    .handle_digests(0, &[Self::digest(*port, *mac, *vlan)])?;
                self.macs.push(LearnedMac {
                    port: *port,
                    mac: *mac,
                    vlan: *vlan,
                });
            }
            WorkloadOp::Age { pick } => {
                if self.live_macs.is_empty() {
                    return Ok(());
                }
                let idx = (*pick as usize) % self.live_macs.len();
                let (port, mac, vlan) = *self.live_macs.iter().nth(idx).expect("non-empty");
                self.live_macs.remove(&(port, mac, vlan));
                self.controller
                    .retract_digests(0, &[Self::digest(port, mac, vlan)])?;
                self.macs
                    .retain(|m| (m.port, m.mac, m.vlan) != (port, mac, vlan));
            }
        }
        // The baseline recomputes its whole desired state on every
        // change and pushes the diff to its own switch.
        let (updates, mcast) = self.baseline.reconcile(&self.ports, &self.macs);
        self.base_device.write(&updates)?;
        for (group, members) in mcast {
            self.base_device.set_mcast_group(group, members);
        }
        Ok(())
    }

    fn inject_fault(&mut self, kind: FaultKind, report: &mut OracleReport) -> Result<(), String> {
        match kind {
            FaultKind::OvsdbOutage { outage_steps } => {
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[("outage_steps", outage_steps.max(1) as u64)],
                    "ovsdb-outage",
                );
                self.connected = false;
                self.outage_remaining = outage_steps.max(1);
                report.outages += 1;
            }
            FaultKind::SwitchRestart => {
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[("switch", 0)],
                    "switch-restart",
                );
                // The switch comes back with leftover stale state the
                // controller never installed; reconciliation must purge
                // it and re-push the desired tables.
                let fresh = SwitchDevice::new(Switch::new(self.program.clone()));
                fresh.write(&[Update {
                    op: WriteOp::Insert,
                    entry: TableEntry {
                        table: "InVlan".into(),
                        matches: vec![
                            FieldMatch::Exact { value: 999 },
                            FieldMatch::Exact { value: 0 },
                        ],
                        priority: 0,
                        action: "set_port_vlan".into(),
                        params: vec![77],
                    },
                }])?;
                self.controller.replace_switch(0, Box::new(fresh.clone()))?;
                self.controller.reconcile_switch(0)?;
                self.device = fresh;
                report.switch_restarts += 1;
            }
            FaultKind::CrashServer { torn_tail_bytes } => {
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[("torn_tail_bytes", torn_tail_bytes)],
                    "crash-server",
                );
                self.crash_server(torn_tail_bytes, report)?;
            }
        }
        Ok(())
    }

    /// Abruptly kill the durable OVSDB "server", tear the WAL tail, and
    /// recover — asserting crash-equivalence at every stage:
    ///
    /// 1. recovered state == the pre-crash committed prefix (the full
    ///    committed state for a clean crash; exactly one transaction
    ///    less when the tail was torn);
    /// 2. a torn tail loses at most that single record — re-applying the
    ///    acked-but-lost transaction reproduces the pre-crash state
    ///    byte-for-byte (uuids included);
    /// 3. the controller resyncs from the recovered snapshot and the
    ///    regular invariant battery passes afterwards.
    fn crash_server(
        &mut self,
        torn_tail_bytes: u64,
        report: &mut OracleReport,
    ) -> Result<(), String> {
        let dir = self
            .durable
            .as_ref()
            .map(|d| d.0.clone())
            .ok_or("CrashServer fault on a non-durable harness")?;
        let pre_crash_index = self.db.commit_index();
        let schema = self.db.schema().clone();
        // Abrupt kill: drop the live database (open WAL handle included)
        // with no graceful shutdown, then damage the log on disk.
        let placeholder = ovsdb::Database::new(schema.clone());
        drop(std::mem::replace(&mut self.db, placeholder));
        let chopped = ovsdb::wal::tear_tail(&dir.join(ovsdb::wal::WAL_FILE), torn_tail_bytes)
            .map_err(|e| e.to_string())?;

        let (recovered, recovery) = ovsdb::Database::open(&dir, schema, oracle_durability())
            .map_err(|e| format!("crash recovery failed: {e}"))?;
        self.db = recovered;
        report.crashes += 1;

        let got = self.db.monitor_snapshot(&MONITORED)?.to_string();
        if chopped == 0 {
            // Clean crash: every committed transaction survives.
            if got != self.post_last_commit {
                return Err(format!(
                    "crash-equivalence: clean-crash recovery diverged from committed state\n\
                     recovered: {got}\ncommitted: {}",
                    self.post_last_commit
                ));
            }
            if self.db.commit_index() != pre_crash_index {
                return Err(format!(
                    "crash-equivalence: commit index {} after clean recovery, expected {pre_crash_index}",
                    self.db.commit_index()
                ));
            }
        } else {
            report.torn_tails += 1;
            if !recovery.truncated_tail {
                return Err(
                    "crash-equivalence: tail was torn but recovery saw no torn tail".into(),
                );
            }
            // Torn tail: exactly the final record is lost, nothing more.
            if got != self.pre_last_commit {
                return Err(format!(
                    "crash-equivalence: torn-tail recovery lost more (or less) than the final record\n\
                     recovered: {got}\nexpected prefix: {}",
                    self.pre_last_commit
                ));
            }
            if self.db.commit_index() + 1 != pre_crash_index {
                return Err(format!(
                    "crash-equivalence: commit index {} after torn-tail recovery, expected {}",
                    self.db.commit_index(),
                    pre_crash_index - 1
                ));
            }
            // The lost transaction was acked to the client; redo it. The
            // redo must reproduce the pre-crash state exactly — same
            // rows, same uuids — because replay determinism pins uuid
            // minting to the (restored) counters.
            let ops = self
                .last_ops
                .clone()
                .ok_or("crash-equivalence: torn tail with no transaction on record")?;
            let before = self.db.commit_index();
            let (results, _changes) = self.db.transact(&ops);
            if self.db.commit_index() == before {
                return Err(format!(
                    "crash-equivalence: redo of lost transaction aborted: {results}"
                ));
            }
            let redone = self.db.monitor_snapshot(&MONITORED)?.to_string();
            if redone != self.post_last_commit {
                return Err(format!(
                    "crash-equivalence: redone transaction diverged from pre-crash state\n\
                     redone: {redone}\npre-crash: {}",
                    self.post_last_commit
                ));
            }
            // The controller already consumed this transaction's changes
            // pre-crash, so they are deliberately not re-delivered.
        }
        // The server restarted: re-issue the monitor and resync, exactly
        // as a supervisor detecting the epoch reset would. The delta
        // should be empty (the db is back at the state the engine saw),
        // which check_invariants verifies at the end of the step.
        if self.connected {
            self.reconnect()?;
        }
        Ok(())
    }

    fn reconnect(&mut self) -> Result<(), String> {
        let initial = self.db.monitor_snapshot(&MONITORED)?;
        if self.bug == Some(InjectedBug::SkipResyncDeletes) {
            // The buggy resync: diff against the snapshot but only push
            // the missed inserts, never the missed deletes.
            let snapshot = {
                let engine = self.controller.engine();
                let rel_types = |name: &str| engine.relation_types(name);
                resync::snapshot_rows(&initial, self.db.schema(), &rel_types)?
            };
            let mut ops = Vec::new();
            for t in MONITORED {
                let target = snapshot.get(t).cloned().unwrap_or_default();
                let current = self
                    .controller
                    .engine()
                    .dump(t)
                    .map_err(|e| e.to_string())?;
                let (inserts, _deletes) = resync::diff_rows(&current, &target);
                for row in inserts {
                    ops.push((t.to_string(), row, true));
                }
            }
            self.controller.apply_input_ops(ops)?;
        } else {
            let tables: Vec<String> = MONITORED.iter().map(|t| t.to_string()).collect();
            self.controller.resync_from_snapshot(&initial, &tables)?;
        }
        self.connected = true;
        Ok(())
    }

    fn installed(device: &SwitchDevice) -> BTreeSet<TableEntry> {
        device
            .read_all_tables()
            .into_iter()
            .flat_map(|(_, entries)| entries)
            .collect()
    }

    /// The full invariant battery. Only meaningful while the management
    /// link is up (during an outage the two sides legitimately diverge).
    fn check_invariants(&self) -> Result<(), String> {
        // (1) Installed data-plane state identical across the two
        // controllers, on-device and as tracked by the baseline.
        let inc = Self::installed(&self.device);
        let base = Self::installed(&self.base_device);
        if inc != base {
            return Err(diff_entries("device tables differ", &inc, &base));
        }
        let base_tracked = self.baseline.installed_snapshot();
        if base != base_tracked {
            return Err(diff_entries(
                "baseline device diverged from its own bookkeeping",
                &base,
                &base_tracked,
            ));
        }
        // (2) Both match the pure-function specification.
        let (spec_entries, spec_groups) = FullRecompute::desired_state(&self.ports, &self.macs);
        let spec: BTreeSet<TableEntry> = spec_entries.into_iter().collect();
        if inc != spec {
            return Err(diff_entries(
                "installed state differs from spec",
                &inc,
                &spec,
            ));
        }
        // (3) Every installed entry is traceable to an output-relation
        // tuple: the device holds exactly the controller's desired set.
        let desired = self.controller.desired_entries(0)?;
        if inc != desired {
            return Err(diff_entries(
                "device tables differ from engine output relations",
                &inc,
                &desired,
            ));
        }
        // (4) Multicast groups agree everywhere.
        let inc_groups = self.device.mcast_snapshot();
        let ctl_groups = self.controller.mcast_snapshot(0);
        let base_groups = self.baseline.mcast_snapshot();
        let spec_groups: BTreeMap<u16, BTreeSet<u16>> = spec_groups
            .into_iter()
            .filter(|(_, m)| !m.is_empty())
            .collect();
        for (label, got) in [
            ("controller replication state", &ctl_groups),
            ("baseline groups", &base_groups),
            ("spec groups", &spec_groups),
        ] {
            if &inc_groups != got {
                return Err(format!(
                    "multicast groups: device {inc_groups:?} != {label} {got:?}"
                ));
            }
        }
        // (5) Engine input relations mirror the database exactly.
        let initial = self.db.monitor_snapshot(&MONITORED)?;
        let engine = self.controller.engine();
        let rel_types = |name: &str| engine.relation_types(name);
        let snapshot = resync::snapshot_rows(&initial, self.db.schema(), &rel_types)?;
        for t in MONITORED {
            let target = snapshot.get(t).cloned().unwrap_or_default();
            let current = engine.dump(t).map_err(|e| e.to_string())?;
            let (inserts, deletes) = resync::diff_rows(&current, &target);
            if !inserts.is_empty() || !deletes.is_empty() {
                return Err(format!(
                    "engine input relation {t} out of sync with OVSDB: \
                     missing {inserts:?}, stale {deletes:?}"
                ));
            }
        }
        // (6) No non-positive Z-set weights anywhere in the engine.
        let names: Vec<String> = engine
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for rel in names {
            for (row, w) in engine.dump_weights(&rel).map_err(|e| e.to_string())? {
                if w <= 0 {
                    return Err(format!(
                        "relation {rel}: row {row:?} has non-positive weight {w}"
                    ));
                }
            }
        }
        // (7) OVSDB uniqueness indexes are intact (schema declares
        // Port.id and Switch.idx unique).
        for (table, col) in [("Port", "id"), ("Switch", "idx")] {
            let mut seen = BTreeSet::new();
            for (uuid, row) in self.db.rows(table) {
                let key = row
                    .get(col)
                    .map(|d| d.to_json().to_string())
                    .unwrap_or_default();
                if !seen.insert(key.clone()) {
                    return Err(format!(
                        "OVSDB index violation: duplicate {table}.{col}={key} (row {uuid:?})"
                    ));
                }
            }
        }
        Ok(())
    }
}

fn diff_entries(label: &str, a: &BTreeSet<TableEntry>, b: &BTreeSet<TableEntry>) -> String {
    let only_a: Vec<&TableEntry> = a.difference(b).collect();
    let only_b: Vec<&TableEntry> = b.difference(a).collect();
    format!("{label}: extra {only_a:?}, missing {only_b:?}")
}

/// Run an explicit op sequence under `cfg` (faults and bugs taken from
/// `cfg`; `cfg.seed`/`cfg.steps` are ignored in favor of `ops`). This is
/// the deterministic core [`run_oracle`] and the shrinker share.
pub fn run_workload(ops: &[WorkloadOp], cfg: &OracleConfig) -> Result<OracleReport, StepFailure> {
    run_workload_inner(ops, cfg).map(|(report, _)| report)
}

/// Render the work profile of the harness engine's most recent commit:
/// totals plus the hottest operators, for failure reports.
fn profile_snapshot(harness: &Harness) -> Option<String> {
    let engine = harness.controller.engine();
    let profile = engine.last_profile()?;
    let catalog = engine.op_catalog();
    let mut out = format!(
        "last commit: {} input tuples, {} tuples processed, {} ns\n",
        profile.input_tuples,
        profile.total_tuples(),
        profile.total_wall_ns
    );
    for id in profile.hottest(5) {
        let meta = &catalog.ops[id];
        let s = &profile.stats[id];
        out.push_str(&format!(
            "  [{id:3}] {:9} {:24} in={} out={} peak={}\n",
            meta.kind.name(),
            meta.detail,
            s.tuples_in,
            s.tuples_out,
            s.peak
        ));
    }
    Some(out)
}

/// Explain the first diverging tuple through the provenance engine:
/// a stale installed entry gets its `why` tree (which base fact still
/// supports it); a missing one gets a `why_not` report (which literal
/// blocks the derivation). `None` when the data plane matches the spec
/// (the failure was some other invariant).
fn why_snapshot(harness: &Harness) -> Option<String> {
    let inc = Harness::installed(&harness.device);
    let (spec_entries, spec_groups) = FullRecompute::desired_state(&harness.ports, &harness.macs);
    let spec: BTreeSet<TableEntry> = spec_entries.into_iter().collect();
    if let Some(extra) = inc.difference(&spec).next() {
        let mut out = format!("first diverging tuple: stale installed entry {extra:?}\n");
        match harness.controller.why_entry(0, extra) {
            Ok(tree) => {
                out.push_str("why the engine still derives it:\n");
                out.push_str(&tree.render_text());
            }
            Err(e) => out.push_str(&format!("(not resolvable through the engine: {e})\n")),
        }
        return Some(out);
    }
    if let Some(missing) = spec.difference(&inc).next() {
        let mut out = format!("first diverging tuple: missing entry {missing:?}\n");
        match harness.controller.why_not_entry(0, missing) {
            Ok(report) => {
                out.push_str("why the engine does not derive it:\n");
                out.push_str(&report.render_text());
            }
            Err(e) => out.push_str(&format!("(why_not unavailable: {e})\n")),
        }
        return Some(out);
    }
    // Table entries agree; check multicast membership against the spec.
    let inc_groups = harness.device.mcast_snapshot();
    let spec_groups: BTreeMap<u16, BTreeSet<u16>> = spec_groups
        .into_iter()
        .filter(|(_, m)| !m.is_empty())
        .collect();
    for (group, ports) in &inc_groups {
        let expected = spec_groups.get(group);
        if let Some(port) = ports
            .iter()
            .find(|p| !expected.is_some_and(|e| e.contains(p)))
        {
            let mut out =
                format!("first diverging tuple: stale mcast member (group {group}, port {port})\n");
            match harness.controller.why_mcast(0, *group, *port) {
                Ok(tree) => {
                    out.push_str("why the engine still derives it:\n");
                    out.push_str(&tree.render_text());
                }
                Err(e) => out.push_str(&format!("(not resolvable through the engine: {e})\n")),
            }
            return Some(out);
        }
    }
    for (group, ports) in &spec_groups {
        let installed = inc_groups.get(group);
        if let Some(port) = ports
            .iter()
            .find(|p| !installed.is_some_and(|i| i.contains(p)))
        {
            let mut out = format!(
                "first diverging tuple: missing mcast member (group {group}, port {port})\n"
            );
            let row = vec![
                ddlog::Value::bit(16, *group as u128),
                ddlog::Value::bit(16, *port as u128),
            ];
            match harness.controller.engine().why_not("MulticastGroup", row) {
                Ok(report) => {
                    out.push_str("why the engine does not derive it:\n");
                    out.push_str(&report.render_text());
                }
                Err(e) => out.push_str(&format!("(why_not unavailable: {e})\n")),
            }
            return Some(out);
        }
    }
    None
}

fn run_workload_inner(
    ops: &[WorkloadOp],
    cfg: &OracleConfig,
) -> Result<(OracleReport, Harness), StepFailure> {
    let setup_err = |reason: String| StepFailure {
        step: 0,
        op: None,
        reason,
        work_profile: None,
        why_dump: None,
    };
    let plan = match cfg.chaos {
        Some(chaos_seed) if cfg.crashes => {
            FaultPlan::from_chaos_seed_with_crashes(chaos_seed, ops.len())
        }
        Some(chaos_seed) => FaultPlan::from_chaos_seed(chaos_seed, ops.len()),
        None => FaultPlan::default(),
    };
    let mut harness = Harness::new(cfg.bug, plan.has_crashes()).map_err(setup_err)?;
    let mut report = OracleReport::default();
    let mut next_fault = 0usize;

    for (step, op) in ops.iter().enumerate() {
        while next_fault < plan.events.len() && plan.events[next_fault].at_step == step {
            let kind = plan.events[next_fault].kind;
            next_fault += 1;
            if let Err(reason) = harness.inject_fault(kind, &mut report) {
                return Err(StepFailure {
                    step,
                    op: None,
                    reason,
                    work_profile: profile_snapshot(&harness),
                    why_dump: None,
                });
            }
        }
        if let Err(reason) = harness.apply(op) {
            return Err(StepFailure {
                step,
                op: Some(op.clone()),
                reason,
                work_profile: profile_snapshot(&harness),
                why_dump: None,
            });
        }
        if !harness.connected {
            harness.outage_remaining -= 1;
            if harness.outage_remaining == 0 {
                if let Err(reason) = harness.reconnect() {
                    return Err(StepFailure {
                        step,
                        op: Some(op.clone()),
                        reason: format!("resync failed: {reason}"),
                        work_profile: profile_snapshot(&harness),
                        why_dump: None,
                    });
                }
            }
        }
        if harness.connected {
            if let Err(reason) = harness.check_invariants() {
                return Err(StepFailure {
                    step,
                    op: Some(op.clone()),
                    reason,
                    work_profile: profile_snapshot(&harness),
                    why_dump: why_snapshot(&harness),
                });
            }
        }
        report.steps += 1;
    }

    // A run may end mid-outage; converge before the final verdict.
    if !harness.connected {
        if let Err(reason) = harness.reconnect() {
            return Err(StepFailure {
                step: ops.len(),
                op: None,
                reason: format!("final resync failed: {reason}"),
                work_profile: profile_snapshot(&harness),
                why_dump: None,
            });
        }
        if let Err(reason) = harness.check_invariants() {
            return Err(StepFailure {
                step: ops.len(),
                op: None,
                reason,
                work_profile: profile_snapshot(&harness),
                why_dump: why_snapshot(&harness),
            });
        }
    }

    report.final_entries = Harness::installed(&harness.device).len();
    report.final_groups = harness.device.mcast_snapshot().len();
    report.transactions = harness.controller.metrics.transactions.get();
    Ok((report, harness))
}

/// The converged data-plane state: installed table entries plus
/// multicast group membership.
pub type FinalState = (BTreeSet<TableEntry>, BTreeMap<u16, BTreeSet<u16>>);

/// The converged data-plane state after a full run (tables + groups) —
/// used to assert that a faulty run ends exactly where the fault-free
/// run with the same workload seed ends.
pub fn final_state(cfg: &OracleConfig) -> Result<FinalState, StepFailure> {
    let ops = crate::workload::generate_workload(cfg.seed, cfg.steps);
    let (_, harness) = run_workload_inner(&ops, cfg)?;
    Ok((
        Harness::installed(&harness.device),
        harness.device.mcast_snapshot(),
    ))
}

/// Snapshot the flight recorder to a `.nfr` dump: into the armed
/// directory if one exists (an explicit arm or `NERPA_FLIGHT_DIR`),
/// otherwise into a temp fallback — an oracle counterexample always
/// ships its black box.
pub(crate) fn dump_flight_recorder(reason: &str) -> Option<std::path::PathBuf> {
    let recorder = &telemetry::global().recorder;
    let dir = recorder
        .armed_dir()
        .unwrap_or_else(|| std::env::temp_dir().join("nerpa-flight"));
    recorder.dump_into(&dir, "oracle-failure", reason).ok()
}

/// Generate the workload for `cfg`, run it, and on failure shrink it to
/// a minimal reproducing sequence. The failure is boxed: it carries the
/// shrunk workload, a metrics snapshot, and the failing trace.
pub fn run_oracle(cfg: &OracleConfig) -> Result<OracleReport, Box<OracleFailure>> {
    let ops = crate::workload::generate_workload(cfg.seed, cfg.steps);
    match run_workload(&ops, cfg) {
        Ok(report) => Ok(report),
        Err(failure) => {
            // Snapshot observability state now: the ddmin re-runs below
            // replay the workload many times and overwrite both the
            // published series, the trace ring, and the flight rings.
            let metrics_snapshot = telemetry::global().registry.render_text();
            let failing_trace = telemetry::global().tracer.last().map(|t| t.render_text());
            let dump_path = dump_flight_recorder(&failure.reason);
            let shrunk =
                crate::shrink::ddmin(&ops, |candidate| run_workload(candidate, cfg).is_err());
            Err(Box::new(OracleFailure {
                failure,
                original_len: ops.len(),
                shrunk,
                metrics_snapshot,
                failing_trace,
                dump_path,
            }))
        }
    }
}
