//! The differential oracle: deterministic full-stack workload fuzzing.
//!
//! The oracle drives **two** controller implementations in lockstep from
//! the same seeded workload — the incremental Nerpa pipeline (OVSDB →
//! DDlog engine → P4Runtime writes) and the non-incremental
//! [`baselines::FullRecompute`] specification — each writing to its own
//! simulated switch, and asserts after every step that the installed
//! data-plane state is identical and that a battery of cross-plane
//! invariants holds.
//!
//! Workloads interleave typed management-plane transactions (port
//! add/remove, access/trunk mode flips, VLAN and mirror changes) with
//! data-plane digest traffic (MAC learn/age) and, optionally, faults
//! derived from a [`chaos::FaultSchedule`] seed: management-link outages
//! (missed monitor updates, recovered by delta resync) and switch
//! restarts (recovered by table reconciliation).
//!
//! When a step fails, [`shrink::ddmin`] reduces the workload to a
//! minimal reproducing transaction sequence and the CLI prints a
//! replayable `oracle --seed N --steps M` command.

#![warn(missing_docs)]

pub mod harness;
pub mod overload;
pub mod sharded;
pub mod shrink;
pub mod workload;

pub use harness::{
    run_oracle, run_workload, InjectedBug, OracleConfig, OracleFailure, OracleReport, StepFailure,
};
pub use overload::{run_overload_oracle, OverloadReport};
pub use sharded::{run_sharded_oracle, run_sharded_workload};
pub use workload::{generate_workload, FaultEvent, FaultKind, FaultPlan, WorkloadOp};
