//! The sharded differential harness: cross-shard equivalence checking.
//!
//! Three implementations consume the same workload in lockstep:
//!
//! * a [`ShardSet`] of N DDlog engines, each owning one of N switches,
//!   fed through the deterministic row partitioner;
//! * one **unsharded** [`Controller`] holding all N switches in a
//!   single engine;
//! * the [`FullRecompute`] specification, evaluated per switch.
//!
//! After every step (while the management link is up) the harness
//! asserts that sharding is unobservable: the union of the shard
//! engines' relations equals the unsharded engine's relations, every
//! switch's installed tables and multicast groups are identical across
//! all three implementations, and no shard engine holds a non-positive
//! Z-set weight. Chaos faults are targeted at a *single* shard's switch
//! so divergence caused by cross-shard interference (a fault on shard A
//! corrupting shard B) cannot hide.

use std::collections::{BTreeMap, BTreeSet};

use baselines::{FullRecompute, LearnedMac, Mode, PortConfig};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use p4sim::runtime::{Digest, FieldMatch, TableEntry, Update, WriteOp};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;
use shard::{PartitionSpec, Router, ShardSet};

use crate::harness::{OracleConfig, OracleReport, StepFailure};
use crate::workload::{FaultKind, FaultPlan, WorkloadOp};

const MONITORED: [&str; 2] = ["Port", "Switch"];

struct ShardedHarness {
    db: ovsdb::Database,
    /// The sharded side: N engines behind the router.
    shards: ShardSet,
    shard_devices: Vec<SwitchDevice>,
    /// The unsharded reference: one engine owning every switch.
    unsharded: Controller,
    flat_devices: Vec<SwitchDevice>,
    program: p4sim::ast::Program,
    ports: Vec<PortConfig>,
    macs_by_switch: BTreeMap<usize, Vec<LearnedMac>>,
    live_macs: BTreeSet<(usize, u16, u64, u16)>,
    connected: bool,
    outage_remaining: usize,
    /// Rotates which switch (and therefore which single shard) each
    /// switch-restart fault targets.
    restarts: usize,
}

impl ShardedHarness {
    fn new(shards: usize) -> Result<ShardedHarness, String> {
        let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA)?;
        let program = p4sim::parse_p4(snvs::assets::SNVS_P4).map_err(|e| e.to_string())?;
        let nerpa_program = NerpaProgram {
            schema: schema.clone(),
            p4info: p4sim::P4Info::from_program(&program),
            rules: snvs::assets::SNVS_RULES.to_string(),
            options: CodegenOptions { per_switch: true },
        };
        let router = Router::new(PartitionSpec::snvs(), shards);
        let mut set = ShardSet::new(&nerpa_program, router)?;
        let mut unsharded = Controller::new(&nerpa_program)?;
        let mut shard_devices = Vec::new();
        let mut flat_devices = Vec::new();
        for sw in 0..shards {
            let sdev = SwitchDevice::new(Switch::new(program.clone()));
            let owner = set.add_switch(sw, Box::new(sdev.clone()));
            debug_assert_eq!(owner, sw % shards);
            shard_devices.push(sdev);
            let fdev = SwitchDevice::new(Switch::new(program.clone()));
            unsharded.add_switch_with_id(sw, Box::new(fdev.clone()));
            flat_devices.push(fdev);
        }
        let mut harness = ShardedHarness {
            db: ovsdb::Database::new(schema),
            shards: set,
            shard_devices,
            unsharded,
            flat_devices,
            program,
            ports: Vec::new(),
            macs_by_switch: BTreeMap::new(),
            live_macs: BTreeSet::new(),
            connected: true,
            outage_remaining: 0,
            restarts: 0,
        };
        let sw_rows: Vec<serde_json::Value> = (0..shards)
            .map(|i| json!({"op": "insert", "table": "Switch", "row": {"idx": i}}))
            .collect();
        harness.commit_and_deliver(json!(sw_rows))?;
        Ok(harness)
    }

    fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    fn commit_and_deliver(&mut self, ops: serde_json::Value) -> Result<(), String> {
        let before = self.db.commit_index();
        let (results, changes) = self.db.transact(&ops);
        if self.db.commit_index() == before {
            return Err(format!("sharded oracle transaction aborted: {results}"));
        }
        if self.connected {
            self.unsharded.handle_row_changes(&changes)?;
            self.shards.handle_row_changes(&changes)?;
        }
        Ok(())
    }

    fn digest(port: u16, mac: u64, vlan: u16) -> Digest {
        Digest {
            name: "mac_learn_t".into(),
            fields: vec![
                ("port".into(), port as u128),
                ("mac".into(), mac as u128),
                ("vlan".into(), vlan as u128),
            ],
        }
    }

    fn port_row_json(cfg: &PortConfig) -> serde_json::Value {
        let mirror: Vec<u16> = cfg.mirror.into_iter().collect();
        match &cfg.mode {
            Mode::Access(v) => json!({
                "id": cfg.id,
                "vlan_mode": "access",
                "tag": v,
                "trunks": ["set", []],
                "mirror_dst": ["set", mirror],
            }),
            Mode::Trunk(vs) => json!({
                "id": cfg.id,
                "vlan_mode": "trunk",
                "trunks": ["set", vs],
                "mirror_dst": ["set", mirror],
            }),
        }
    }

    fn upsert_port(&mut self, cfg: PortConfig) -> Result<(), String> {
        let row = Self::port_row_json(&cfg);
        self.commit_and_deliver(json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", cfg.id]]},
            {"op": "insert", "table": "Port", "row": row},
        ]))?;
        self.ports.retain(|p| p.id != cfg.id);
        self.ports.push(cfg);
        Ok(())
    }

    fn apply(&mut self, op: &WorkloadOp) -> Result<(), String> {
        match op {
            WorkloadOp::AddAccess { port, vlan } => {
                self.upsert_port(PortConfig::access(*port, *vlan))?;
            }
            WorkloadOp::AddTrunk { port, vlans } => {
                self.upsert_port(PortConfig::trunk(*port, vlans.clone()))?;
            }
            WorkloadOp::FlipMode { port } => {
                let Some(cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                let mut next = match &cur.mode {
                    Mode::Access(v) => PortConfig::trunk(cur.id, vec![*v]),
                    Mode::Trunk(vs) => {
                        PortConfig::access(cur.id, vs.first().copied().unwrap_or(10))
                    }
                };
                next.mirror = cur.mirror;
                self.upsert_port(next)?;
            }
            WorkloadOp::SetMirror { port, dst } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = Some(*dst);
                self.upsert_port(cur)?;
            }
            WorkloadOp::ClearMirror { port } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = None;
                self.upsert_port(cur)?;
            }
            WorkloadOp::RemovePort { port } => {
                self.commit_and_deliver(json!([
                    {"op": "delete", "table": "Port", "where": [["id", "==", port]]},
                ]))?;
                self.ports.retain(|p| p.id != *port);
            }
            WorkloadOp::Learn { port, mac, vlan } => {
                // Spread digest traffic across switches: each MAC is
                // reported by a deterministic switch, so every shard's
                // learn path is exercised.
                let sw = (*mac as usize) % self.shard_count();
                if !self.live_macs.insert((sw, *port, *mac, *vlan)) {
                    return Ok(());
                }
                let d = Self::digest(*port, *mac, *vlan);
                self.unsharded
                    .handle_digests(sw, std::slice::from_ref(&d))?;
                self.shards.handle_digests(sw, &[d])?;
                self.macs_by_switch.entry(sw).or_default().push(LearnedMac {
                    port: *port,
                    mac: *mac,
                    vlan: *vlan,
                });
            }
            WorkloadOp::Age { pick } => {
                if self.live_macs.is_empty() {
                    return Ok(());
                }
                let idx = (*pick as usize) % self.live_macs.len();
                let (sw, port, mac, vlan) = *self.live_macs.iter().nth(idx).expect("non-empty");
                self.live_macs.remove(&(sw, port, mac, vlan));
                let d = Self::digest(port, mac, vlan);
                self.unsharded
                    .retract_digests(sw, std::slice::from_ref(&d))?;
                self.shards.retract_digests(sw, &[d])?;
                if let Some(macs) = self.macs_by_switch.get_mut(&sw) {
                    macs.retain(|m| (m.port, m.mac, m.vlan) != (port, mac, vlan));
                }
            }
        }
        Ok(())
    }

    fn inject_fault(&mut self, kind: FaultKind, report: &mut OracleReport) -> Result<(), String> {
        match kind {
            FaultKind::OvsdbOutage { outage_steps } => {
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[("outage_steps", outage_steps.max(1) as u64)],
                    "ovsdb-outage",
                );
                self.connected = false;
                self.outage_remaining = outage_steps.max(1);
                report.outages += 1;
            }
            FaultKind::SwitchRestart => {
                // Target exactly one switch — and therefore exactly one
                // shard. Every other shard's engine and device must be
                // untouched, which the step's equivalence check
                // enforces (their state still has to match the
                // unsharded reference).
                let sw = self.restarts % self.shard_count();
                self.restarts += 1;
                telemetry::record_event_note(
                    telemetry::Plane::Chaos,
                    "chaos.fault",
                    0,
                    &[("switch", sw as u64)],
                    "switch-restart",
                );
                let stale = Update {
                    op: WriteOp::Insert,
                    entry: TableEntry {
                        table: "InVlan".into(),
                        matches: vec![
                            FieldMatch::Exact { value: 999 },
                            FieldMatch::Exact { value: 0 },
                        ],
                        priority: 0,
                        action: "set_port_vlan".into(),
                        params: vec![77],
                    },
                };
                let fresh_shard = SwitchDevice::new(Switch::new(self.program.clone()));
                fresh_shard.write(std::slice::from_ref(&stale))?;
                let owner = self.shards.shard_of_switch(sw);
                let shard_ctl = self.shards.controller_mut(owner);
                shard_ctl.replace_switch(sw, Box::new(fresh_shard.clone()))?;
                shard_ctl.reconcile_switch(sw)?;
                self.shard_devices[sw] = fresh_shard;

                let fresh_flat = SwitchDevice::new(Switch::new(self.program.clone()));
                fresh_flat.write(&[stale])?;
                self.unsharded
                    .replace_switch(sw, Box::new(fresh_flat.clone()))?;
                self.unsharded.reconcile_switch(sw)?;
                self.flat_devices[sw] = fresh_flat;
                report.switch_restarts += 1;
            }
            FaultKind::CrashServer { .. } => {
                return Err("sharded oracle runs without server-crash faults".into());
            }
        }
        Ok(())
    }

    fn reconnect(&mut self) -> Result<(), String> {
        let initial = self.db.monitor_snapshot(&MONITORED)?;
        let tables: Vec<String> = MONITORED.iter().map(|t| t.to_string()).collect();
        self.unsharded.resync_from_snapshot(&initial, &tables)?;
        self.shards.resync_from_snapshot(&initial, &tables)?;
        self.connected = true;
        Ok(())
    }

    fn installed(device: &SwitchDevice) -> BTreeSet<TableEntry> {
        device
            .read_all_tables()
            .into_iter()
            .flat_map(|(_, entries)| entries)
            .collect()
    }

    /// The cross-shard equivalence battery.
    fn check_equivalence(&self) -> Result<(), String> {
        let empty = Vec::new();
        for sw in 0..self.shard_count() {
            // (1) Per-switch installed state: sharded device ==
            // unsharded device == full-recompute spec.
            let sharded = Self::installed(&self.shard_devices[sw]);
            let flat = Self::installed(&self.flat_devices[sw]);
            if sharded != flat {
                return Err(diff(
                    &format!("switch {sw}: sharded device != unsharded device"),
                    &sharded,
                    &flat,
                ));
            }
            let macs = self.macs_by_switch.get(&sw).unwrap_or(&empty);
            let (spec_entries, spec_groups) = FullRecompute::desired_state(&self.ports, macs);
            let spec: BTreeSet<TableEntry> = spec_entries.into_iter().collect();
            if sharded != spec {
                return Err(diff(
                    &format!("switch {sw}: installed state differs from spec"),
                    &sharded,
                    &spec,
                ));
            }
            // (2) Both controllers' desired sets agree with the device.
            let shard_ctl = &self.shards.controllers()[self.shards.shard_of_switch(sw)];
            let shard_desired = shard_ctl.desired_entries(sw)?;
            if sharded != shard_desired {
                return Err(diff(
                    &format!("switch {sw}: shard engine's desired set differs from device"),
                    &sharded,
                    &shard_desired,
                ));
            }
            let flat_desired = self.unsharded.desired_entries(sw)?;
            if flat != flat_desired {
                return Err(diff(
                    &format!("switch {sw}: unsharded engine's desired set differs from device"),
                    &flat,
                    &flat_desired,
                ));
            }
            // (3) Multicast groups agree everywhere.
            let spec_groups: BTreeMap<u16, BTreeSet<u16>> = spec_groups
                .into_iter()
                .filter(|(_, m)| !m.is_empty())
                .collect();
            let dev_groups = self.shard_devices[sw].mcast_snapshot();
            let shard_groups = self.shards.mcast_snapshot(sw);
            let flat_groups = self.unsharded.mcast_snapshot(sw);
            for (label, got) in [
                ("shard replication state", &shard_groups),
                ("unsharded replication state", &flat_groups),
                ("spec groups", &spec_groups),
            ] {
                if &dev_groups != got {
                    return Err(format!(
                        "switch {sw}: multicast groups: device {dev_groups:?} != {label} {got:?}"
                    ));
                }
            }
        }
        // (4) Union of shard engines == unsharded engine, relation by
        // relation — inputs (partitioned and broadcast alike) and every
        // derived table.
        let names: Vec<String> = self
            .unsharded
            .engine()
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for rel in &names {
            let union = self.shards.union_dump(rel)?;
            let flat: BTreeSet<Vec<ddlog::Value>> = self
                .unsharded
                .engine()
                .dump(rel)
                .map_err(|e| e.to_string())?
                .into_iter()
                .collect();
            if union != flat {
                let extra: Vec<_> = union.difference(&flat).collect();
                let missing: Vec<_> = flat.difference(&union).collect();
                return Err(format!(
                    "relation {rel}: shard union diverges from unsharded engine: \
                     extra {extra:?}, missing {missing:?}"
                ));
            }
        }
        // (5) No shard engine holds a non-positive Z-set weight.
        for (i, ctl) in self.shards.controllers().iter().enumerate() {
            for rel in &names {
                for (row, w) in ctl.engine().dump_weights(rel).map_err(|e| e.to_string())? {
                    if w <= 0 {
                        return Err(format!(
                            "shard {i}: relation {rel}: row {row:?} has non-positive weight {w}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

fn diff(label: &str, a: &BTreeSet<TableEntry>, b: &BTreeSet<TableEntry>) -> String {
    let only_a: Vec<&TableEntry> = a.difference(b).collect();
    let only_b: Vec<&TableEntry> = b.difference(a).collect();
    format!("{label}: extra {only_a:?}, missing {only_b:?}")
}

/// Run an explicit op sequence through the sharded harness. Faults come
/// from `cfg.chaos`; `cfg.shards` picks the shard count (and the switch
/// count). Crash faults are not scheduled — the sharded harness runs on
/// an in-memory database.
pub fn run_sharded_workload(
    ops: &[WorkloadOp],
    cfg: &OracleConfig,
) -> Result<OracleReport, StepFailure> {
    let setup_err = |reason: String| StepFailure {
        step: 0,
        op: None,
        reason,
        work_profile: None,
        why_dump: None,
    };
    let plan = match cfg.chaos {
        Some(chaos_seed) => FaultPlan::from_chaos_seed(chaos_seed, ops.len()),
        None => FaultPlan::default(),
    };
    let mut harness = ShardedHarness::new(cfg.shards.max(1)).map_err(setup_err)?;
    let mut report = OracleReport::default();
    let mut next_fault = 0usize;

    for (step, op) in ops.iter().enumerate() {
        while next_fault < plan.events.len() && plan.events[next_fault].at_step == step {
            let kind = plan.events[next_fault].kind;
            next_fault += 1;
            if let Err(reason) = harness.inject_fault(kind, &mut report) {
                return Err(StepFailure {
                    step,
                    op: None,
                    reason,
                    work_profile: None,
                    why_dump: None,
                });
            }
        }
        if let Err(reason) = harness.apply(op) {
            return Err(StepFailure {
                step,
                op: Some(op.clone()),
                reason,
                work_profile: None,
                why_dump: None,
            });
        }
        if !harness.connected {
            harness.outage_remaining -= 1;
            if harness.outage_remaining == 0 {
                if let Err(reason) = harness.reconnect() {
                    return Err(StepFailure {
                        step,
                        op: Some(op.clone()),
                        reason: format!("sharded resync failed: {reason}"),
                        work_profile: None,
                        why_dump: None,
                    });
                }
            }
        }
        if harness.connected {
            if let Err(reason) = harness.check_equivalence() {
                return Err(StepFailure {
                    step,
                    op: Some(op.clone()),
                    reason,
                    work_profile: None,
                    why_dump: None,
                });
            }
        }
        report.steps += 1;
    }

    if !harness.connected {
        if let Err(reason) = harness.reconnect() {
            return Err(StepFailure {
                step: ops.len(),
                op: None,
                reason: format!("final sharded resync failed: {reason}"),
                work_profile: None,
                why_dump: None,
            });
        }
        if let Err(reason) = harness.check_equivalence() {
            return Err(StepFailure {
                step: ops.len(),
                op: None,
                reason,
                work_profile: None,
                why_dump: None,
            });
        }
    }

    report.final_entries = harness
        .shard_devices
        .iter()
        .map(|d| ShardedHarness::installed(d).len())
        .sum();
    report.final_groups = harness
        .shard_devices
        .iter()
        .map(|d| d.mcast_snapshot().len())
        .sum();
    report.transactions = harness.shards.transactions();
    Ok(report)
}

/// Generate the workload for `cfg`, run it through the sharded harness,
/// and on failure shrink to a minimal reproducing sequence.
pub fn run_sharded_oracle(
    cfg: &OracleConfig,
) -> Result<OracleReport, Box<crate::harness::OracleFailure>> {
    let ops = crate::workload::generate_workload(cfg.seed, cfg.steps);
    match run_sharded_workload(&ops, cfg) {
        Ok(report) => Ok(report),
        Err(failure) => {
            let metrics_snapshot = telemetry::global().registry.render_text();
            let failing_trace = telemetry::global().tracer.last().map(|t| t.render_text());
            let dump_path = crate::harness::dump_flight_recorder(&failure.reason);
            let shrunk = crate::shrink::ddmin(&ops, |candidate| {
                run_sharded_workload(candidate, cfg).is_err()
            });
            Err(Box::new(crate::harness::OracleFailure {
                failure,
                original_len: ops.len(),
                shrunk,
                metrics_snapshot,
                failing_trace,
                dump_path,
            }))
        }
    }
}
